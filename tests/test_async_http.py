"""End-to-end tests for the asyncio HTTP transport.

Covers the ISSUE 9 acceptance surface: /v1 round-trips and legacy
aliases through the shared dispatch core, byte-identical
``/v1/openapi.json`` across both transports, transport pathologies
(slow-loris 408, header-first 413, admission-control 429 with
``Retry-After``, idle-timeout keep-alive close, mid-stream client
disconnect), NDJSON and SSE streaming exercised through the SDK with
buffered/polling fallbacks against the threaded transport, capability
advertisement, and graceful drain on both transports.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.api import ERROR_CODES, TaxonomyApiError, TaxonomyClient
from repro.serving import (
    ArtifactBundle, AsyncServerThread, ServiceConfig, TaxonomyService,
    make_server,
)


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("async_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


def _make_service(bundle_dir, **config_kwargs) -> TaxonomyService:
    config_kwargs.setdefault("max_wait_ms", 1.0)
    service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                              ServiceConfig(**config_kwargs))
    service.start()
    return service


@pytest.fixture(scope="module")
def async_served(bundle_dir):
    """Module async server: generous budget, small stream chunks."""
    service = _make_service(bundle_dir)
    harness = AsyncServerThread(service, port=0, read_timeout=1.0,
                                idle_timeout=30.0, max_inflight=16,
                                stream_chunk_size=4)
    host, port = harness.start()
    yield f"http://{host}:{port}", service, harness.server
    harness.stop()
    service.stop()


@pytest.fixture(scope="module")
def threaded_served(bundle_dir):
    """Module threaded server, for cross-transport comparisons."""
    service = _make_service(bundle_dir)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", service
    httpd.shutdown()
    httpd.server_close()
    service.stop()
    thread.join(timeout=5)


def _request(base_url, method, path, payload=None, headers=None):
    """One raw round-trip; returns (status, headers dict, parsed body)."""
    host, port = base_url.split("//", 1)[1].split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=30)
    body = None if payload is None else json.dumps(payload)
    send_headers = {"Content-Type": "application/json"} if body else {}
    send_headers.update(headers or {})
    connection.request(method, path, body=body, headers=send_headers)
    response = connection.getresponse()
    raw = response.read()
    status, resp_headers = response.status, dict(response.getheaders())
    connection.close()
    content_type = resp_headers.get("Content-Type", "")
    parsed = json.loads(raw) if content_type.startswith(
        "application/json") else raw
    return status, resp_headers, parsed


def _assert_envelope(status, headers, body, code):
    assert status == ERROR_CODES[code], body
    error = body["error"]
    assert error["code"] == code
    assert error["request_id"] == headers["X-Request-Id"]


class TestAsyncRoundTrips:
    def test_health_advertises_capabilities(self, async_served):
        url, _service, _server = async_served
        status, _h, body = _request(url, "GET", "/v1/healthz")
        assert status == 200
        capabilities = body["capabilities"]
        assert capabilities["job_wait"] is True
        assert capabilities["sse"] is True
        assert capabilities["ndjson"] is True
        assert capabilities["transport"] == "async"

    def test_threaded_health_has_no_capabilities(self, threaded_served):
        url, _service = threaded_served
        status, _h, body = _request(url, "GET", "/v1/healthz")
        assert status == 200
        assert body.get("capabilities") is None

    def test_score_parity_with_service(self, async_served, small_world):
        url, service, _server = async_served
        edges = sorted(small_world.existing_taxonomy.edges())[:4]
        pairs = [list(edge) for edge in edges]
        status, headers, body = _request(url, "POST", "/v1/score",
                                         {"pairs": pairs})
        assert status == 200
        assert headers["X-Request-Id"].startswith("req-")
        assert body["probabilities"] == \
            service.score(pairs)["probabilities"]

    def test_legacy_alias_keeps_deprecation_headers(self, async_served,
                                                    small_world):
        url, _service, _server = async_served
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        status, headers, body = _request(
            url, "POST", "/score", {"pairs": [list(e) for e in edges]})
        assert status == 200
        assert headers["Deprecation"] == "true"
        assert "/v1/score" in headers["Link"]
        assert len(body["probabilities"]) == 2

    def test_openapi_identical_across_transports(self, async_served,
                                                 threaded_served):
        async_url, _s, _server = async_served
        threaded_url, _service = threaded_served
        _st, _h, from_async = _request(async_url, "GET",
                                       "/v1/openapi.json")
        _st, _h, from_threaded = _request(threaded_url, "GET",
                                          "/v1/openapi.json")
        assert from_async == from_threaded

    def test_unknown_route_404(self, async_served):
        url, _service, _server = async_served
        status, headers, body = _request(url, "GET", "/v1/nope")
        _assert_envelope(status, headers, body, "not_found")

    def test_malformed_json_body_400(self, async_served):
        url, _service, _server = async_served
        host, port = url.split("//", 1)[1].split(":")
        connection = http.client.HTTPConnection(host, int(port),
                                                timeout=10)
        connection.request("POST", "/v1/score", body="{not json",
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert body["error"]["code"] == "invalid_request"
        connection.close()

    def test_non_object_body_400(self, async_served):
        url, _service, _server = async_served
        status, headers, body = _request(url, "POST", "/v1/score",
                                         payload=[1, 2, 3])
        _assert_envelope(status, headers, body, "invalid_request")

    def test_metrics_include_transport_counters(self, async_served):
        url, _service, _server = async_served
        status, _h, text = _request(url, "GET", "/v1/metrics")
        assert status == 200
        exposition = text.decode("utf-8")
        assert "repro_http_requests_total" in exposition
        assert "repro_http_connections_open" in exposition
        assert "repro_scorer_requests_total" in exposition

    def test_keep_alive_serves_multiple_requests(self, async_served):
        url, _service, _server = async_served
        host, port = url.split("//", 1)[1].split(":")
        connection = http.client.HTTPConnection(host, int(port),
                                                timeout=10)
        for _ in range(3):
            connection.request("GET", "/v1/healthz")
            response = connection.getresponse()
            assert response.status == 200
            response.read()
            assert response.getheader("Connection") == "keep-alive"
        connection.close()


class TestTransportPathologies:
    @pytest.fixture()
    def strict_server(self, bundle_dir):
        """Function-scoped server with tiny timeouts and budget=1."""
        service = _make_service(bundle_dir)
        harness = AsyncServerThread(
            service, port=0, read_timeout=0.3, idle_timeout=0.4,
            max_inflight=1, heavy_workers=1)
        host, port = harness.start()
        yield host, port, service, harness.server
        harness.stop()
        service.stop()

    def test_slow_loris_header_hits_408(self, strict_server):
        host, port, _service, server = strict_server
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.1\r\nHos")  # ...stall
            raw = sock.recv(65536)
        status_line, _, rest = raw.partition(b"\r\n")
        assert b"408" in status_line
        body = json.loads(raw.split(b"\r\n\r\n", 1)[1])
        assert body["error"]["code"] == "request_timeout"
        assert server.stats["request_timeouts_total"] >= 1

    def test_slow_loris_body_hits_408(self, strict_server):
        host, port, _service, _server = strict_server
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /v1/score HTTP/1.1\r\n"
                         b"Host: x\r\nContent-Type: application/json\r\n"
                         b"Content-Length: 1000\r\n\r\n{\"pairs")
            raw = sock.recv(65536)
        assert b"408" in raw.partition(b"\r\n")[0]
        assert json.loads(raw.split(b"\r\n\r\n", 1)[1])["error"][
            "code"] == "request_timeout"

    def test_idle_keep_alive_closed_silently(self, strict_server):
        host, port, _service, _server = strict_server
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"GET /v1/healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            first = sock.recv(65536)
            assert b"200" in first.partition(b"\r\n")[0]
            # no follow-up request: the idle timeout closes the
            # connection with no bytes (not a 408 — nothing started)
            assert sock.recv(65536) == b""

    def test_oversized_body_rejected_header_first(self, strict_server):
        host, port, _service, _server = strict_server
        from repro.serving.http import MAX_BODY_BYTES
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(
                b"POST /v1/score HTTP/1.1\r\nHost: x\r\n"
                b"Content-Type: application/json\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode())
            # the rejection must arrive *without* the body being sent
            raw = sock.recv(65536)
        assert b"413" in raw.partition(b"\r\n")[0]
        assert json.loads(raw.split(b"\r\n\r\n", 1)[1])["error"][
            "code"] == "payload_too_large"

    def test_invalid_content_length_400(self, strict_server):
        host, port, _service, _server = strict_server
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.sendall(b"POST /v1/score HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: banana\r\n\r\n")
            raw = sock.recv(65536)
        assert b"400" in raw.partition(b"\r\n")[0]

    def test_admission_control_sheds_with_retry_after(self,
                                                      strict_server,
                                                      small_world):
        host, port, service, server = strict_server
        url = f"http://{host}:{port}"
        parents = sorted(small_world.existing_taxonomy.roots())
        payload = {"candidates": {
            parents[0]: sorted(small_world.new_concepts)[:1]}}
        shed_before = server.stats["shed_total"]
        outcomes: list = []

        def blocked_expand():
            outcomes.append(_request(url, "POST", "/v1/expand", payload))

        # Hold the taxonomy lock so the admitted expand parks inside
        # the (budget=1) heavy executor, then show the next heavy
        # request is shed instead of queued.
        with service._taxonomy_lock:
            occupant = threading.Thread(target=blocked_expand)
            occupant.start()
            deadline = time.monotonic() + 5.0
            while server._inflight_heavy < 1:
                assert time.monotonic() < deadline, "expand never started"
                time.sleep(0.01)
            status, headers, body = _request(url, "POST", "/v1/expand",
                                             payload)
            _assert_envelope(status, headers, body, "backpressure")
            assert int(headers["Retry-After"]) >= 1
            # light routes bypass the budget: still observable
            health_status, _h, _b = _request(url, "GET", "/v1/healthz")
            assert health_status == 200
        occupant.join(timeout=10)
        assert outcomes and outcomes[0][0] == 200  # admitted one finished
        assert server.stats["shed_total"] == shed_before + 1

    def test_ndjson_stream_holds_admission_slot(self, strict_server,
                                                small_world):
        host, port, service, server = strict_server
        url = f"http://{host}:{port}"
        parents = sorted(small_world.existing_taxonomy.roots())
        payload = {"candidates": {
            parents[0]: sorted(small_world.new_concepts)[:2]}}
        body = json.dumps(payload)
        shed_before = server.stats["shed_total"]
        # Hold the taxonomy lock so the stream's first pull parks in
        # the heavy executor with its admission slot (budget=1) held.
        with socket.create_connection((host, port), timeout=10) as sock:
            with service._taxonomy_lock:
                sock.sendall(
                    (f"POST /v1/expand HTTP/1.1\r\nHost: x\r\n"
                     f"Content-Type: application/json\r\n"
                     f"Accept: application/x-ndjson\r\n"
                     f"Content-Length: {len(body)}\r\n\r\n").encode()
                    + body.encode())
                deadline = time.monotonic() + 5.0
                while server._inflight_heavy < 1:
                    assert time.monotonic() < deadline, \
                        "stream never took an admission slot"
                    time.sleep(0.01)
                # the live stream owns the whole budget: a plain heavy
                # request is shed...
                status, headers, resp = _request(url, "POST",
                                                 "/v1/score",
                                                 {"pairs": [["a", "b"]]})
                _assert_envelope(status, headers, resp, "backpressure")
                assert int(headers["Retry-After"]) >= 1
                # ...and so is a second stream, as an ordinary JSON
                # envelope (shed before any stream bytes go out)
                status, headers, resp = _request(
                    url, "POST", "/v1/expand", payload,
                    headers={"Accept": "application/x-ndjson"})
                _assert_envelope(status, headers, resp, "backpressure")
            # lock released: the admitted stream runs to completion
            sock.settimeout(10)
            raw = b""
            while b"0\r\n\r\n" not in raw:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
            assert b"200" in raw.partition(b"\r\n")[0]
        assert server.stats["shed_total"] == shed_before + 2
        # the stream's slot is released: heavy requests admit again
        deadline = time.monotonic() + 5.0
        while server._inflight_heavy > 0:
            assert time.monotonic() < deadline, "slot never released"
            time.sleep(0.01)
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        status, _h, _b = _request(url, "POST", "/v1/score",
                                  {"pairs": [list(e) for e in edges]})
        assert status == 200

    def test_client_disconnect_mid_stream_keeps_serving(
            self, async_served, small_world):
        url, _service, server = async_served
        host, port = url.split("//", 1)[1].split(":")
        edges = sorted(small_world.existing_taxonomy.edges())
        pairs = [list(edge) for edge in edges][:40]  # 10 chunks of 4
        body = json.dumps({"pairs": pairs})
        with socket.create_connection((host, int(port)),
                                      timeout=5) as sock:
            sock.sendall(
                (f"POST /v1/score HTTP/1.1\r\nHost: x\r\n"
                 f"Content-Type: application/json\r\n"
                 f"Accept: application/x-ndjson\r\n"
                 f"Content-Length: {len(body)}\r\n\r\n").encode()
                + body.encode())
            first = sock.recv(256)  # headers + maybe the first chunk
            assert b"200" in first.partition(b"\r\n")[0]
            # hang up mid-stream; the server must treat this as a
            # normal goodbye, not an error
        for _ in range(20):  # server keeps serving afterwards
            status, _h, _b = _request(url, "GET", "/v1/healthz")
            assert status == 200


class TestStreaming:
    def test_ndjson_score_chunks_through_sdk(self, async_served,
                                             small_world):
        url, service, _server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        edges = sorted(small_world.existing_taxonomy.edges())[:10]
        pairs = [list(edge) for edge in edges]
        chunks = list(client.score_stream(pairs))
        assert len(chunks) == 3  # 10 pairs at stream_chunk_size=4
        streamed_pairs = [p for c in chunks for p in c["pairs"]]
        streamed_probs = [p for c in chunks for p in c["probabilities"]]
        assert streamed_pairs == pairs
        assert streamed_probs == client.score(pairs)["probabilities"]

    def test_ndjson_fallback_against_threaded(self, threaded_served,
                                              small_world):
        url, _service = threaded_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        edges = sorted(small_world.existing_taxonomy.edges())[:10]
        pairs = [list(edge) for edge in edges]
        chunks = list(client.score_stream(pairs))
        assert len(chunks) == 1  # buffered whole: one chunk, same data
        assert chunks[0]["pairs"] == pairs

    def test_ndjson_expand_stream(self, async_served, small_world):
        url, service, _server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        queries = sorted(small_world.existing_taxonomy.nodes)[:3]
        fresh = sorted(small_world.new_concepts)[:4]
        candidates = {query: fresh for query in queries}
        chunks = list(client.expand_stream(candidates))
        # stream_chunk_size=4 -> expand chunk size max(1, 4 // 8) = 1,
        # so three query concepts stream as three journaled chunks
        assert len(chunks) == 3
        assert chunks[-1]["taxonomy_edges"] == \
            service.taxonomy_state()["stats"]["edges"]

    def test_stream_validation_error_is_envelope(self, async_served):
        url, _service, _server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        with pytest.raises(TaxonomyApiError) as exc:
            list(client.score_stream([["only-one-element"]]))
        assert exc.value.code == "invalid_request"

    def test_sse_job_events_until_terminal(self, async_served,
                                           small_world):
        url, _service, _server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        parents = sorted(small_world.existing_taxonomy.roots())
        job = client.submit_expand_job(
            {parents[0]: sorted(small_world.new_concepts)[:2]})
        events = list(client.job_events(job["id"]))
        assert events, "SSE stream yielded no snapshots"
        assert events[-1]["status"] in ("succeeded", "failed")
        assert all(event["id"] == job["id"] for event in events)

    def test_sse_fallback_against_threaded(self, threaded_served,
                                           small_world):
        url, _service = threaded_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        parents = sorted(small_world.existing_taxonomy.roots())
        job = client.submit_expand_job(
            {parents[0]: sorted(small_world.new_concepts)[:2]})
        events = list(client.job_events(job["id"]))
        assert len(events) == 1  # one buffered snapshot, then done

    def test_sse_unknown_job_is_404(self, async_served):
        url, _service, _server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        with pytest.raises(TaxonomyApiError) as exc:
            list(client.job_events("job-does-not-exist"))
        assert exc.value.code == "job_not_found"


class TestJobWait:
    def test_long_poll_wait_few_round_trips(self, async_served):
        url, service, server = async_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        assert client.capabilities().get("job_wait") is True
        release = threading.Event()
        job = service.jobs.submit(
            "test-wait", lambda: (release.wait(5.0), {"done": True})[1])
        threading.Timer(0.3, release.set).start()
        before = server.stats["requests_total"]
        snapshot = client.wait_for_job(job["id"], timeout=10.0)
        assert snapshot["status"] == "succeeded"
        # long-poll parks server-side: a couple of held GETs, not a
        # poll every 50ms for 300ms+
        assert server.stats["requests_total"] - before <= 3

    def test_long_poll_returns_running_on_wait_expiry(self,
                                                      async_served):
        url, service, _server = async_served
        release = threading.Event()
        job = service.jobs.submit(
            "test-expiry", lambda: (release.wait(5.0), {})[1] or {})
        try:
            status, _h, body = _request(
                url, "GET", f"/v1/jobs/{job['id']}?wait=0.2")
            assert status == 200
            assert body["status"] in ("pending", "running")
        finally:
            release.set()

    def test_invalid_wait_param_400(self, async_served):
        url, service, _server = async_served
        job = service.jobs.submit("test-bad-wait", lambda: {})
        status, headers, body = _request(
            url, "GET", f"/v1/jobs/{job['id']}?wait=soon")
        _assert_envelope(status, headers, body, "invalid_request")

    def test_polling_fallback_against_threaded(self, threaded_served,
                                               small_world):
        url, _service = threaded_served
        client = TaxonomyClient(url, timeout=30.0, retries=0)
        assert client.capabilities() == {}
        parents = sorted(small_world.existing_taxonomy.roots())
        job = client.submit_expand_job(
            {parents[0]: sorted(small_world.new_concepts)[:2]})
        snapshot = client.wait_for_job(job["id"], timeout=30.0)
        assert snapshot["status"] == "succeeded"


class TestGracefulDrain:
    @staticmethod
    def _slow_scoring(service, delay: float):
        """Wrap service.score so in-flight requests take ``delay``."""
        original = service.score

        def slow(pairs):
            time.sleep(delay)
            return original(pairs)

        service.score = slow
        return original

    def test_async_drain_finishes_inflight(self, bundle_dir,
                                           small_world):
        service = _make_service(bundle_dir)
        self._slow_scoring(service, 0.4)
        harness = AsyncServerThread(service, port=0)
        host, port = harness.start()
        url = f"http://{host}:{port}"
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        payload = {"pairs": [list(e) for e in edges]}
        outcomes: list = []
        worker = threading.Thread(target=lambda: outcomes.append(
            _request(url, "POST", "/v1/score", payload)))
        try:
            worker.start()
            time.sleep(0.15)  # let the slow request get admitted
            assert harness.stop(drain_timeout=5.0) is True
            worker.join(timeout=10)
            assert outcomes and outcomes[0][0] == 200
            # post-drain the listener is gone
            with pytest.raises(OSError):
                socket.create_connection((host, port), timeout=0.5)
        finally:
            service.stop()

    def test_async_drain_timeout_reports_false(self, bundle_dir,
                                               small_world):
        service = _make_service(bundle_dir)
        self._slow_scoring(service, 1.5)
        harness = AsyncServerThread(service, port=0)
        host, port = harness.start()
        url = f"http://{host}:{port}"
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        payload = {"pairs": [list(e) for e in edges]}

        def doomed_request():
            try:  # the force-close below is the expected outcome
                _request(url, "POST", "/v1/score", payload)
            except OSError:
                pass

        worker = threading.Thread(target=doomed_request)
        try:
            worker.start()
            time.sleep(0.15)
            assert harness.stop(drain_timeout=0.2) is False
            worker.join(timeout=10)
        finally:
            service.stop()

    def test_threaded_drain_finishes_inflight(self, bundle_dir,
                                              small_world):
        service = _make_service(bundle_dir)
        self._slow_scoring(service, 0.4)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        url = f"http://{host}:{port}"
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        payload = {"pairs": [list(e) for e in edges]}
        outcomes: list = []
        worker = threading.Thread(target=lambda: outcomes.append(
            _request(url, "POST", "/v1/score", payload)))
        try:
            worker.start()
            deadline = time.monotonic() + 5.0
            while httpd.inflight < 1:
                assert time.monotonic() < deadline, "request never began"
                time.sleep(0.01)
            assert httpd.drain(timeout=5.0) is True
            worker.join(timeout=10)
            assert outcomes and outcomes[0][0] == 200
            # a draining handler closes its connection after responding
            assert outcomes[0][1].get("Connection") == "close"
        finally:
            httpd.server_close()
            service.stop()
            thread.join(timeout=5)

    def test_threaded_drain_timeout_reports_false(self, bundle_dir,
                                                  small_world):
        service = _make_service(bundle_dir)
        self._slow_scoring(service, 1.5)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        url = f"http://{host}:{port}"
        edges = sorted(small_world.existing_taxonomy.edges())[:2]
        payload = {"pairs": [list(e) for e in edges]}
        worker = threading.Thread(target=lambda: _request(
            url, "POST", "/v1/score", payload), daemon=True)
        try:
            worker.start()
            deadline = time.monotonic() + 5.0
            while httpd.inflight < 1:
                assert time.monotonic() < deadline, "request never began"
                time.sleep(0.01)
            assert httpd.drain(timeout=0.2) is False
            worker.join(timeout=10)
        finally:
            httpd.server_close()
            service.stop()
            thread.join(timeout=5)
