"""Unit tests for the async JobManager (`repro.api.jobs`)."""

import threading
import time

import pytest

from repro.api import ApiError, JobManager, reload_failed


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return False


@pytest.fixture()
def manager():
    manager = JobManager(max_pending=4, max_retained=8).start()
    yield manager
    manager.stop()


class TestLifecycle:
    def test_submit_returns_pending_snapshot(self, manager):
        gate = threading.Event()
        snapshot = manager.submit("expand", lambda: gate.wait(5) or {})
        assert snapshot["status"] in ("pending", "running")
        assert snapshot["id"].startswith("job-")
        assert snapshot["result"] is None
        gate.set()

    def test_success_stores_result(self, manager):
        snapshot = manager.submit("expand", lambda: {"num_attached": 2})
        assert wait_until(
            lambda: manager.get(snapshot["id"])["status"] == "succeeded")
        done = manager.get(snapshot["id"])
        assert done["result"] == {"num_attached": 2}
        assert done["error"] is None
        assert done["started_at"] >= done["submitted_at"]
        assert done["finished_at"] >= done["started_at"]

    def test_jobs_run_in_submission_order(self, manager):
        order = []
        first = manager.submit("expand", lambda: order.append(1) or {})
        second = manager.submit("expand", lambda: order.append(2) or {})
        assert wait_until(
            lambda: manager.get(second["id"])["status"] == "succeeded")
        assert order == [1, 2]
        assert manager.get(first["id"])["status"] == "succeeded"

    def test_worker_survives_job_crash(self, manager):
        crashed = manager.submit("expand", lambda: 1 / 0)
        healthy = manager.submit("expand", lambda: {"ok": True})
        assert wait_until(
            lambda: manager.get(healthy["id"])["status"] == "succeeded")
        failed = manager.get(crashed["id"])
        assert failed["status"] == "failed"
        assert failed["error"]["code"] == "internal_error"
        assert "ZeroDivisionError" in failed["error"]["message"]

    def test_api_error_keeps_stable_code(self, manager):
        def run():
            raise reload_failed("smoke test failed")
        snapshot = manager.submit("reload", run)
        assert wait_until(
            lambda: manager.get(snapshot["id"])["status"] == "failed")
        assert manager.get(snapshot["id"])["error"]["code"] == \
            "reload_failed"


class TestBoundsAndErrors:
    def test_unknown_job_raises_job_not_found(self, manager):
        with pytest.raises(ApiError) as exc:
            manager.get("job-nope")
        assert exc.value.code == "job_not_found"
        assert exc.value.status == 404

    def test_backpressure_beyond_max_pending(self):
        manager = JobManager(max_pending=2, max_retained=8).start()
        gate = threading.Event()
        try:
            for _ in range(2):
                manager.submit("expand", lambda: gate.wait(10) or {})
            with pytest.raises(ApiError) as exc:
                manager.submit("expand", lambda: {})
            assert exc.value.code == "backpressure"
            assert exc.value.status == 429
            assert manager.counts()["rejected"] == 1
        finally:
            gate.set()
            manager.stop()

    def test_retention_evicts_oldest_finished(self):
        manager = JobManager(max_pending=64, max_retained=8).start()
        try:
            ids = [manager.submit("expand", lambda: {})["id"]
                   for _ in range(12)]
            assert wait_until(
                lambda: manager.get(ids[-1])["status"] == "succeeded")
            assert wait_until(
                lambda: manager.counts()["retained"] <= 8)
            with pytest.raises(ApiError):
                manager.get(ids[0])  # oldest evicted
            assert manager.get(ids[-1])["status"] == "succeeded"
        finally:
            manager.stop()

    def test_list_is_newest_first_and_bounded(self, manager):
        ids = [manager.submit("expand", lambda: {})["id"]
               for _ in range(3)]
        assert wait_until(
            lambda: manager.get(ids[-1])["status"] == "succeeded")
        listed = manager.list(limit=2)
        assert len(listed) == 2
        assert listed[0]["id"] == ids[-1]

    def test_counts_track_outcomes(self, manager):
        manager.submit("expand", lambda: {})
        manager.submit("expand", lambda: 1 / 0)
        assert wait_until(
            lambda: manager.counts()["succeeded"]
            + manager.counts()["failed"] == 2)
        counts = manager.counts()
        assert counts["submitted"] == 2
        assert counts["succeeded"] == 1
        assert counts["failed"] == 1

    def test_stop_is_idempotent(self):
        manager = JobManager().start()
        manager.stop()
        manager.stop()
        assert not manager.running

    def test_submit_after_stop_is_not_ready(self):
        manager = JobManager().start()
        manager.stop()
        with pytest.raises(ApiError) as exc:
            manager.submit("expand", lambda: {})
        assert exc.value.code == "not_ready"
