"""Artifact-bundle tests: a fitted pipeline survives export/load exactly."""

import os

import numpy as np
import pytest

from repro.core import TaxonomyExpansionPipeline
from repro.serving import (
    ArtifactBundle, pipeline_config_from_dict, pipeline_config_to_dict,
)
from repro.serving.artifacts import (
    BERT_WEIGHTS, CLASSIFIER_WEIGHTS, MANIFEST, STRUCTURAL_ARRAYS,
    STRUCTURAL_WEIGHTS, TAXONOMY_FILE, VOCABULARY_FILE,
)


@pytest.fixture(scope="module")
def exported(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("bundle"))
    bundle = ArtifactBundle.export(
        tiny_fitted_pipeline, directory,
        taxonomy=small_world.existing_taxonomy,
        vocabulary=small_world.vocabulary)
    return bundle, directory


@pytest.fixture(scope="module")
def scoring_pairs(tiny_fitted_pipeline, small_world):
    """A mix of known and unknown concepts, enough to exercise batching."""
    pairs = [s.pair for s in tiny_fitted_pipeline.dataset.all_pairs][:64]
    pairs += [("definitely unknown", "also unknown"), ("a", "b")]
    return pairs


class TestExport:
    def test_writes_every_artifact(self, exported):
        _bundle, directory = exported
        for name in (MANIFEST, BERT_WEIGHTS, STRUCTURAL_WEIGHTS,
                     STRUCTURAL_ARRAYS, CLASSIFIER_WEIGHTS, TAXONOMY_FILE,
                     VOCABULARY_FILE):
            assert os.path.exists(os.path.join(directory, name)), name

    def test_unfitted_pipeline_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            ArtifactBundle.export(TaxonomyExpansionPipeline(),
                                  str(tmp_path / "nope"))

    def test_vocabulary_defaults_to_segmenter_lexicon(
            self, tiny_fitted_pipeline, small_world, tmp_path):
        bundle = ArtifactBundle.export(tiny_fitted_pipeline,
                                       str(tmp_path / "auto"))
        assert set(bundle.vocabulary) == set(small_world.vocabulary)


class TestLoad:
    def test_score_parity(self, exported, tiny_fitted_pipeline,
                          scoring_pairs):
        _bundle, directory = exported
        loaded = ArtifactBundle.load(directory)
        original = tiny_fitted_pipeline.score_pairs(scoring_pairs)
        restored = loaded.score_pairs(scoring_pairs)
        np.testing.assert_allclose(restored, original, atol=1e-8, rtol=0)

    def test_taxonomy_and_vocabulary_roundtrip(self, exported, small_world):
        _bundle, directory = exported
        loaded = ArtifactBundle.load(directory)
        assert loaded.taxonomy.edge_set() == \
            small_world.existing_taxonomy.edge_set()
        assert set(loaded.vocabulary) == set(small_world.vocabulary)

    def test_loaded_pipeline_components_populated(self, exported):
        _bundle, directory = exported
        pipeline = ArtifactBundle.load(directory).pipeline
        assert pipeline.tokenizer is not None
        assert pipeline.segmenter is not None
        assert pipeline.bert is not None
        assert pipeline.relational is not None
        assert pipeline.structural is not None
        assert pipeline.detector is not None

    def test_loaded_pipeline_can_expand(self, exported, small_world,
                                        small_click_log):
        _bundle, directory = exported
        loaded = ArtifactBundle.load(directory)
        result = loaded.pipeline.expand(
            small_world.existing_taxonomy, small_click_log,
            small_world.vocabulary)
        assert result.taxonomy.num_edges >= \
            small_world.existing_taxonomy.num_edges

    def test_format_version_checked(self, exported, tmp_path):
        import json
        import shutil
        _bundle, directory = exported
        broken = str(tmp_path / "broken")
        shutil.copytree(directory, broken)
        manifest = os.path.join(broken, MANIFEST)
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["format_version"] = 99
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError):
            ArtifactBundle.load(broken)


class TestConfigRoundtrip:
    def test_exact_config_reconstruction(self, tiny_fitted_pipeline):
        import json
        config = tiny_fitted_pipeline.config
        payload = json.loads(json.dumps(pipeline_config_to_dict(config)))
        assert pipeline_config_from_dict(payload) == config

    def test_tuple_fields_restored(self):
        from repro.core import PipelineConfig, SelfSupConfig
        import json
        config = PipelineConfig(
            selfsup=SelfSupConfig(head_other_ratio=(2, 5),
                                  split=(0.5, 0.25, 0.25)))
        payload = json.loads(json.dumps(pipeline_config_to_dict(config)))
        rebuilt = pipeline_config_from_dict(payload)
        assert rebuilt.selfsup.head_other_ratio == (2, 5)
        assert rebuilt.selfsup.split == (0.5, 0.25, 0.25)
