"""GNN substrate tests: layers, contrastive pretraining, structural encoder."""

import numpy as np
import pytest

from repro.gnn import (
    ContrastiveConfig, FeatureProjector, GATLayer, GCNLayer, SAGELayer,
    StructuralConfig, StructuralEncoder, contrastive_pretrain,
    normalize_adjacency,
)
from repro.graph import HeteroGraph
from repro.nn import Tensor


@pytest.fixture()
def graph():
    g = HeteroGraph()
    g.add_edge("a", "b", HeteroGraph.TAXONOMY, 1.0)
    g.add_edge("b", "c", HeteroGraph.CLICK, 0.8)
    g.add_edge("a", "d", HeteroGraph.CLICK, 0.2)
    g.add_node("isolated")
    return g


class TestNormalization:
    def test_row_normalisation(self):
        adj = np.array([[1.0, 1.0], [0.0, 2.0]])
        normed = normalize_adjacency(adj, "row")
        assert np.allclose(normed.sum(axis=1), 1.0)

    def test_sym_normalisation(self):
        adj = np.array([[1.0, 1.0], [1.0, 1.0]])
        normed = normalize_adjacency(adj, "sym")
        assert np.allclose(normed, 0.5)

    def test_zero_row_safe(self):
        adj = np.zeros((2, 2))
        assert np.allclose(normalize_adjacency(adj), 0.0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.eye(2), "weird")


class TestLayers:
    @pytest.mark.parametrize("factory", [
        lambda rng: GCNLayer(8, 4, rng=rng),
        lambda rng: GATLayer(8, 4, rng=rng),
        lambda rng: SAGELayer(8, 4, rng=rng),
    ])
    def test_shapes_and_gradients(self, factory, rng):
        layer = factory(rng)
        hidden = Tensor(rng.normal(size=(5, 8)), requires_grad=True)
        adjacency = np.eye(5) + np.diag(np.ones(4), 1)
        if isinstance(layer, GCNLayer):
            out = layer(hidden, normalize_adjacency(adjacency))
        else:
            out = layer(hidden, adjacency)
        assert out.shape == (5, 4)
        out.sum().backward()
        assert all(p.grad is not None for p in layer.parameters())

    def test_activation_validation(self):
        for cls in (GCNLayer, GATLayer, SAGELayer):
            with pytest.raises(ValueError):
                cls(4, 4, activation="softplus")

    def test_gcn_propagates_neighbors(self, rng):
        layer = GCNLayer(2, 2, activation="none", rng=rng)
        layer.linear.weight.data = np.eye(2)
        layer.linear.bias.data = np.zeros(2)
        hidden = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        adjacency = normalize_adjacency(np.array([[1.0, 1.0], [1.0, 1.0]]))
        out = layer(hidden, adjacency).data
        assert np.allclose(out, 0.5)

    def test_gat_attention_masks_non_edges(self, rng):
        layer = GATLayer(4, 4, rng=rng)
        hidden = Tensor(rng.normal(size=(3, 4)))
        adjacency = np.zeros((3, 3))  # only self-loops via mask diagonal
        out1 = layer(hidden, adjacency).data
        hidden2 = hidden.data.copy()
        hidden2[2] += 50.0
        out2 = layer(Tensor(hidden2), adjacency).data
        # node 0 attends only to itself; unchanged by node 2's shift
        assert np.allclose(out1[0], out2[0])


class TestContrastive:
    def test_loss_decreases(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        refined, history = contrastive_pretrain(
            graph, features, ContrastiveConfig(steps=40, lr=1e-2, seed=0))
        assert refined.shape == features.shape
        assert np.mean(history[-5:]) < np.mean(history[:5])

    def test_pulls_neighbors_together(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        refined, _ = contrastive_pretrain(
            graph, features, ContrastiveConfig(steps=120, lr=1e-2, seed=0))

        def cos(m, i, j):
            a, b = m[i], m[j]
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)

        index = graph.node_index()
        # strongly-connected a-b should end up closer than a-isolated
        assert cos(refined, index["a"], index["b"]) > \
            cos(refined, index["a"], index["isolated"])

    def test_validation(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 4))
        with pytest.raises(ValueError):
            ContrastiveConfig(negative_rate=0.0)
        with pytest.raises(ValueError):
            contrastive_pretrain(graph, features[:2])
        empty = HeteroGraph()
        with pytest.raises(ValueError):
            contrastive_pretrain(empty, np.zeros((0, 4)))

    def test_projector_shapes(self, rng):
        projector = FeatureProjector(8, 8, rng=rng)
        out = projector(Tensor(rng.normal(size=(3, 8))))
        assert out.shape == (3, 8)


class TestStructuralEncoder:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            StructuralConfig(aggregator="mlp")
        with pytest.raises(ValueError):
            StructuralConfig(num_hops=0)

    def test_out_dim(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        enc = StructuralEncoder(graph, features, StructuralConfig(
            hidden_dim=8, position_dim=4))
        assert enc.out_dim == 2 * 8 + 2 * 4
        enc2 = StructuralEncoder(graph, features, StructuralConfig(
            hidden_dim=8, use_position=False))
        assert enc2.out_dim == 16

    def test_node_embeddings_shape(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        for agg in ("gcn", "gat", "sage"):
            enc = StructuralEncoder(graph, features, StructuralConfig(
                hidden_dim=6, aggregator=agg))
            assert enc.node_embeddings().shape == (graph.num_nodes, 6)

    def test_two_hop_differs_from_one_hop(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        one = StructuralEncoder(graph, features, StructuralConfig(
            hidden_dim=8, num_hops=1))
        two = StructuralEncoder(graph, features, StructuralConfig(
            hidden_dim=8, num_hops=2))
        assert len(one.layers) == 1
        assert len(two.layers) == 2

    def test_pair_representation_and_fallback(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        enc = StructuralEncoder(graph, features, StructuralConfig(
            hidden_dim=8, position_dim=4))
        reps = enc.pair_representation([("a", "b"), ("a", "unknown")])
        assert reps.shape == (2, enc.out_dim)
        # unknown node -> zero block for the item half (before position)
        assert np.allclose(reps.data[1, 12:20], 0.0)

    def test_edge_weight_toggle_changes_adjacency(self, graph, rng):
        features = rng.normal(size=(graph.num_nodes, 8))
        weighted = StructuralEncoder(graph, features, StructuralConfig())
        binary = StructuralEncoder(graph, features, StructuralConfig(
            use_edge_weights=False))
        assert not np.allclose(weighted._adjacency, binary._adjacency)

    def test_feature_size_mismatch(self, graph, rng):
        with pytest.raises(ValueError):
            StructuralEncoder(graph, rng.normal(size=(2, 8)))

    def test_has_node(self, graph, rng):
        enc = StructuralEncoder(graph, rng.normal(
            size=(graph.num_nodes, 4)))
        assert enc.has_node("a")
        assert not enc.has_node("zzz")
