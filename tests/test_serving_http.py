"""End-to-end HTTP smoke tests on an ephemeral port.

Exercises the full serving path the way ``repro serve`` wires it: export a
fitted pipeline to a bundle directory, load it back, wrap it in a
:class:`TaxonomyService`, and talk JSON over a real socket.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serving import ArtifactBundle, ServiceConfig, TaxonomyService, \
    make_server


@pytest.fixture(scope="module")
def server(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("http_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    service = TaxonomyService(ArtifactBundle.load(directory),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    httpd = make_server(service, port=0)  # ephemeral port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    service.stop()
    thread.join(timeout=5)


def request(server, path, payload=None):
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}{path}"
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def request_text(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=30) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


class TestMetrics:
    def test_prometheus_exposition(self, server):
        # Generate some traffic first so counters are non-trivial.
        request(server, "/score", {"pairs": [["fruit", "apple"]]})
        status, content_type, text = request_text(server, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        for name in ("repro_scorer_requests_total",
                     "repro_scorer_cache_hits_total",
                     "repro_scorer_pairs_scored_total",
                     "repro_ingest_queue_depth",
                     "repro_ingest_processed_batches_total",
                     "repro_taxonomy_edges",
                     "repro_uptime_seconds"):
            assert f"# TYPE {name}" in text, name
            assert f"\n{name}" in text or text.startswith(name), name

    def test_engine_counters_exported(self, server):
        request(server, "/score", {"pairs": [["fruit", "banana"]]})
        _status, _ct, text = request_text(server, "/metrics")
        # The bundle compiles the fast engine at load time, so its
        # dtype-labelled counters must be present.
        assert 'repro_engine_info{dtype="float32"} 1' in text
        assert 'repro_engine_pairs_scored_total{dtype="float32"}' in text

    def test_counters_move_with_traffic(self, server):
        def scored_total():
            _s, _c, text = request_text(server, "/metrics")
            line = [l for l in text.splitlines()
                    if l.startswith("repro_scorer_pairs_requested_total ")]
            return float(line[0].split()[-1])

        before = scored_total()
        request(server, "/score", {"pairs": [["fruit", "cherry"]]})
        assert scored_total() == before + 1


class TestHealthz:
    def test_reports_ok(self, server):
        status, body = request(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["workers"] == {"scorer": True, "ingestor": True}
        assert body["taxonomy_edges"] > 0


class TestScore:
    def test_scores_pairs(self, server, small_world):
        edges = sorted(small_world.existing_taxonomy.edges())[:3]
        status, body = request(server, "/score",
                               {"pairs": [list(edge) for edge in edges]})
        assert status == 200
        assert len(body["probabilities"]) == 3
        assert all(0.0 <= p <= 1.0 for p in body["probabilities"])

    def test_matches_bundle_scoring(self, server, tiny_fitted_pipeline,
                                    small_world):
        import numpy as np
        from repro.nn import SCORE_TOLERANCE
        edges = sorted(small_world.existing_taxonomy.edges())[:5]
        _status, body = request(server, "/score",
                                {"pairs": [list(edge) for edge in edges]})
        direct = tiny_fitted_pipeline.score_pairs(
            [tuple(edge) for edge in edges])
        # The served path may score a pair inside a different float32
        # batch composition than the direct call (BLAS blocking varies
        # with shape), so parity holds to the engine tolerance, not
        # bit-for-bit.
        np.testing.assert_allclose(body["probabilities"], direct,
                                   atol=SCORE_TOLERANCE, rtol=0)

    def test_bad_pair_shape_is_400(self, server):
        status, body = request(server, "/score",
                               {"pairs": [["lonely"]]})
        assert status == 400
        assert "error" in body


class TestIngestAndTaxonomy:
    def test_sync_ingest_reports(self, server, small_world,
                                 small_click_log):
        records = [[query, item, count] for (query, item), count
                   in sorted(small_click_log.counts.items())[:40]]
        status, body = request(server, "/ingest",
                               {"records": records, "sync": True})
        assert status == 202
        assert body["accepted"] is True
        assert body["report"]["batch_index"] >= 1
        assert body["report"]["taxonomy_edges_after"] >= \
            small_world.existing_taxonomy.num_edges

    def test_async_ingest_accepted(self, server):
        status, body = request(
            server, "/ingest",
            {"records": [["apple", "a fresh apple", 2]]})
        assert status == 202
        assert body["accepted"] is True

    def test_taxonomy_reflects_ingestion(self, server):
        # A sync roundtrip guarantees prior async batches are processed too.
        request(server, "/ingest", {"records": [["pear", "a ripe pear"]],
                                    "sync": True})
        status, body = request(server, "/taxonomy")
        assert status == 200
        stats = body["stats"]
        assert stats["ingested_batches"] >= 2
        assert stats["accumulated_click_records"] >= 3
        # reports is a bounded recent-history window
        assert 1 <= len(body["reports"]) <= stats["ingested_batches"]
        assert stats["edges"] == len(body["edges"])

    def test_malformed_records_are_400(self, server):
        status, body = request(server, "/ingest",
                               {"records": [["missing-item"]]})
        assert status == 400
        assert "error" in body


class TestExpand:
    def test_expand_commits_accepted_edges(self, server, small_world):
        # Oracle-free: candidates drawn from real held-out concepts; the
        # tiny detector may accept or reject, but the route must answer
        # and keep state consistent.
        parents = sorted(small_world.existing_taxonomy.roots())
        candidates = {parents[0]: sorted(small_world.new_concepts)[:3]}
        status, body = request(server, "/expand",
                               {"candidates": candidates})
        assert status == 200
        assert body["scored_candidates"] >= 1
        _status, tax = request(server, "/taxonomy")
        assert tax["stats"]["edges"] == body["taxonomy_edges"]


class TestRouting:
    def test_unknown_route_404(self, server):
        status, body = request(server, "/nope")
        assert status == 404
        assert "error" in body

    def test_unknown_post_route_404(self, server):
        status, _body = request(server, "/nope", {"x": 1})
        assert status == 404

    def test_invalid_json_400(self, server):
        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}/score", data=b"{not json",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=30) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400
