"""StreamingIngestor tests: worker draining, backpressure, wire parsing."""

import threading
import time

import numpy as np
import pytest

from repro.core import ExpansionConfig, IncrementalExpander
from repro.serving import StreamingIngestor, click_log_from_records
from repro.synthetic import ClickLogConfig, generate_click_logs
from repro.synthetic.clicklogs import ClickLog


class OracleScorer:
    def __init__(self, truth, delay: float = 0.0):
        self.truth = truth
        self.delay = delay

    def __call__(self, pairs):
        if self.delay:
            time.sleep(self.delay)
        return np.array([1.0 if self.truth.is_ancestor(q, i) else 0.0
                         for q, i in pairs])


def split_log(log: ClickLog, parts: int) -> list[ClickLog]:
    batches = [ClickLog() for _ in range(parts)]
    for index, (key, count) in enumerate(sorted(log.counts.items())):
        batch = batches[index % parts]
        batch.counts[key] = count
        batch.provenance[key[1]] = log.provenance.get(key[1])
    return batches


@pytest.fixture()
def expander(small_world):
    return IncrementalExpander(
        OracleScorer(small_world.full_taxonomy),
        small_world.existing_taxonomy, small_world.vocabulary,
        ExpansionConfig(prune_transitive=False))


@pytest.fixture()
def log(small_world):
    return generate_click_logs(small_world, ClickLogConfig(
        seed=3, clicks_per_query=30))


class TestWireFormat:
    def test_two_and_three_element_records(self):
        log = click_log_from_records(
            [["apple", "fresh gala apple"],
             ["apple", "fresh gala apple", 4],
             ("pear", "ripe pear", 2)])
        assert log.counts[("apple", "fresh gala apple")] == 5
        assert log.counts[("pear", "ripe pear")] == 2
        assert log.num_records == 7

    def test_provenance_attached(self):
        log = click_log_from_records(
            [["apple", "fresh gala apple"]],
            provenance={"fresh gala apple": "gala apple"})
        assert log.provenance["fresh gala apple"] == "gala apple"

    def test_malformed_records_rejected(self):
        with pytest.raises(ValueError):
            click_log_from_records([["only-query"]])
        with pytest.raises(ValueError):
            click_log_from_records([["q", "i", 0]])


class TestWorker:
    def test_batches_processed_in_order(self, expander, log):
        batches = split_log(log, 3)
        with StreamingIngestor(expander) as ingestor:
            for batch in batches:
                assert ingestor.submit(batch)
            assert ingestor.flush(timeout=30.0)
        assert ingestor.processed == 3
        assert [r.batch_index for r in ingestor.reports] == [1, 2, 3]
        assert expander.num_batches == 3

    def test_matches_direct_ingestion(self, small_world, log):
        batches = split_log(log, 2)
        direct = IncrementalExpander(
            OracleScorer(small_world.full_taxonomy),
            small_world.existing_taxonomy, small_world.vocabulary,
            ExpansionConfig(prune_transitive=False))
        for batch in batches:
            direct.ingest(batch)

        streamed = IncrementalExpander(
            OracleScorer(small_world.full_taxonomy),
            small_world.existing_taxonomy, small_world.vocabulary,
            ExpansionConfig(prune_transitive=False))
        with StreamingIngestor(streamed) as ingestor:
            for batch in batches:
                ingestor.submit(batch)
            assert ingestor.flush(timeout=30.0)
        assert streamed.taxonomy.edge_set() == direct.taxonomy.edge_set()

    def test_stop_drains_queue(self, expander, log):
        ingestor = StreamingIngestor(expander)
        ingestor.start()
        for batch in split_log(log, 4):
            ingestor.submit(batch)
        ingestor.stop()
        assert not ingestor.running
        assert ingestor.processed == 4

    def test_inline_mode_without_worker(self, expander, log):
        ingestor = StreamingIngestor(expander)
        assert ingestor.submit(log)
        assert ingestor.processed == 1
        assert expander.num_batches == 1

    def test_submit_type_checked(self, expander):
        ingestor = StreamingIngestor(expander)
        with pytest.raises(TypeError):
            ingestor.submit([["q", "i"]])

    def test_errors_recorded_not_raised(self, small_world, log):
        def explode(pairs):
            raise RuntimeError("scorer crashed")

        expander = IncrementalExpander(
            explode, small_world.existing_taxonomy, small_world.vocabulary)
        with StreamingIngestor(expander) as ingestor:
            ingestor.submit(log)
            assert ingestor.flush(timeout=30.0)
        assert len(ingestor.errors) == 1
        assert ingestor.failed == 1
        assert ingestor.processed == 0


class TestTickets:
    def test_ticket_resolves_to_own_report(self, expander, log):
        batches = split_log(log, 3)
        with StreamingIngestor(expander) as ingestor:
            tickets = [ingestor.submit(batch) for batch in batches]
            reports = [ticket.wait(timeout=30.0) for ticket in tickets]
        assert [r.batch_index for r in reports] == [1, 2, 3]
        assert all(ticket.done for ticket in tickets)

    def test_failed_batch_raises_only_on_its_own_ticket(self, small_world):
        """Regression: one poisoned batch must not break later syncs."""
        calls = {"n": 0}

        def flaky(pairs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient model failure")
            return np.ones(len(pairs))

        expander = IncrementalExpander(
            flaky, small_world.existing_taxonomy, small_world.vocabulary,
            ExpansionConfig(prune_transitive=False))
        # Item titles are real held-out concepts, so candidate extraction
        # succeeds and the scorer is actually invoked for both batches.
        root = sorted(small_world.existing_taxonomy.roots())[0]
        new_a, new_b = sorted(small_world.new_concepts)[:2]
        first = click_log_from_records([[root, new_a]])
        second = click_log_from_records([[root, new_b]])
        with StreamingIngestor(expander) as ingestor:
            bad = ingestor.submit(first)
            with pytest.raises(RuntimeError, match="transient"):
                bad.wait(timeout=30.0)
            good = ingestor.submit(second)
            # must not re-raise the earlier batch's failure
            report = good.wait(timeout=30.0)
        assert report.batch_index == 2
        assert ingestor.failed == 1

    def test_history_is_bounded(self):
        stub = SlowStubExpander(delay=0.0)
        ingestor = StreamingIngestor(stub, max_history=3)
        for i in range(10):
            ingestor.submit(click_log_from_records([[f"q{i}", f"i{i}"]]))
        assert ingestor.processed == 10  # exact totals survive
        assert len(ingestor.reports) == 3  # history stays bounded
        assert [r.batch_index for r in ingestor.reports] == [8, 9, 10]


class SlowStubExpander:
    """Duck-typed expander whose ingest just sleeps — isolates queueing."""

    def __init__(self, delay: float):
        self.delay = delay
        self.batches = 0

    def ingest(self, batch):
        from repro.core import IngestReport
        time.sleep(self.delay)
        self.batches += 1
        return IngestReport(batch_index=self.batches,
                            new_candidate_queries=0)


class TestBackpressure:
    def test_nonblocking_submit_rejected_when_full(self):
        slow = SlowStubExpander(delay=0.15)
        batches = [click_log_from_records([[f"q{i}", f"item {i}"]])
                   for i in range(6)]
        with StreamingIngestor(slow, max_queue=1) as ingestor:
            tickets = [ingestor.submit(batch, block=False)
                       for batch in batches]
            assert any(t is None for t in tickets)  # at least one rejection
            assert ingestor.flush(timeout=30.0)
        # rejected batches are not silently counted
        assert ingestor.processed == sum(t is not None for t in tickets)

    def test_blocking_submit_waits_for_room(self):
        slow = SlowStubExpander(delay=0.02)
        batches = [click_log_from_records([[f"q{i}", f"item {i}"]])
                   for i in range(4)]
        with StreamingIngestor(slow, max_queue=1) as ingestor:
            for batch in batches:
                assert ingestor.submit(batch, block=True, timeout=30.0)
            assert ingestor.flush(timeout=30.0)
        assert ingestor.processed == 4


class TestAccumulatedLogIntegration:
    def test_accumulated_visible_through_worker(self, expander, log):
        with StreamingIngestor(expander) as ingestor:
            ingestor.submit(log)
            assert ingestor.flush(timeout=30.0)
        assert expander.accumulated_log.num_records == log.num_records
