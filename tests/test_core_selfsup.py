"""Adaptively self-supervised dataset generation tests (paper §III-C-1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    PATTERN_HEAD, PATTERN_OTHER, PATTERN_REPLACE, PATTERN_SHUFFLE,
    SelfSupConfig, generate_dataset,
)
from repro.taxonomy import Taxonomy, is_headword_detectable


def make_taxonomy(num_heads=30, num_others=10):
    """A category with controllable headword/other children mixes."""
    t = Taxonomy()
    t.add_edge("food", "bread")
    t.add_edge("food", "soup")
    for i in range(num_heads):
        t.add_edge("bread", f"style{i} bread")
    atomic = ["toast", "bagel", "brioche", "pita", "naan", "ciabatta",
              "focaccia", "sourdough", "baguette", "croissant"]
    for name in atomic[:num_others]:
        t.add_edge("bread", name)
    return t


class TestConfigValidation:
    def test_split_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SelfSupConfig(split=(0.5, 0.2, 0.2))

    def test_negatives_positive(self):
        with pytest.raises(ValueError):
            SelfSupConfig(negatives_per_positive=0)


class TestAdaptiveGeneration:
    def test_positive_negative_balance(self):
        ds = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=0))
        stats = ds.statistics()
        assert stats["E_Positive"] >= stats["E_Negative"] > 0
        # near 1:1 (duplicate negatives may be skipped)
        assert stats["E_Negative"] >= 0.8 * stats["E_Positive"]

    def test_head_other_rebalanced(self):
        ds = generate_dataset(make_taxonomy(num_heads=50, num_others=10),
                              config=SelfSupConfig(seed=0))
        stats = ds.statistics()
        # target 3:7 -> heads ~ (3/7)*others
        assert stats["E_Head"] <= stats["E_Others"]
        assert stats["E_Head"] == pytest.approx(
            stats["E_Others"] * 3 / 7, abs=2)

    def test_previous_setting_keeps_all(self):
        taxonomy = make_taxonomy(num_heads=50, num_others=10)
        ds = generate_dataset(taxonomy,
                              config=SelfSupConfig(seed=0, adaptive=False))
        stats = ds.statistics()
        assert stats["E_Head"] == 50
        assert stats["E_Positive"] == taxonomy.num_edges

    def test_patterns_labelled_correctly(self):
        ds = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=0))
        for sample in ds.all_pairs:
            if sample.pattern in (PATTERN_HEAD, PATTERN_OTHER):
                assert sample.label == 1
                assert (sample.pattern == PATTERN_HEAD) == \
                    is_headword_detectable(sample.query, sample.item)
            else:
                assert sample.label == 0

    def test_shuffle_negatives_are_reversed_edges(self):
        taxonomy = make_taxonomy()
        ds = generate_dataset(taxonomy, config=SelfSupConfig(seed=0))
        for sample in ds.all_pairs:
            if sample.pattern == PATTERN_SHUFFLE:
                assert taxonomy.has_edge(sample.item, sample.query)

    def test_replace_negatives_unrelated(self):
        taxonomy = make_taxonomy()
        ds = generate_dataset(taxonomy, config=SelfSupConfig(seed=0))
        for sample in ds.all_pairs:
            if sample.pattern == PATTERN_REPLACE:
                assert not taxonomy.is_ancestor(sample.query, sample.item)
                assert not taxonomy.is_ancestor(sample.item, sample.query)

    def test_split_proportions(self):
        ds = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=0))
        total = len(ds.all_pairs)
        assert len(ds.train) == int(total * 0.6)
        assert abs(len(ds.val) - total * 0.2) <= 1
        assert len(ds.train) + len(ds.val) + len(ds.test) == total

    def test_click_pairs_steer_head_selection(self):
        taxonomy = make_taxonomy(num_heads=50, num_others=10)
        clicked = {("bread", f"style{i} bread") for i in range(5)}
        ds = generate_dataset(taxonomy, click_pairs=clicked,
                              config=SelfSupConfig(seed=0))
        kept_heads = {s.pair for s in ds.all_pairs
                      if s.pattern == PATTERN_HEAD}
        # all clicked headword edges make the cut (quota is 10*3/7 ~ 4...)
        # at minimum, clicked edges are preferred over unclicked ones
        assert len(kept_heads & clicked) >= min(len(kept_heads),
                                                len(clicked)) - 1

    def test_replacements_prefer_click_pool(self):
        taxonomy = make_taxonomy()
        clicked = {("bread", "soup")}  # soup is unrelated to bread
        ds = generate_dataset(taxonomy, click_pairs=clicked,
                              config=SelfSupConfig(seed=0))
        replace_items = {s.item for s in ds.all_pairs
                         if s.pattern == PATTERN_REPLACE}
        assert replace_items <= {"soup"}

    def test_no_duplicate_samples(self):
        ds = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=0))
        keys = [(s.query, s.item, s.label) for s in ds.all_pairs]
        assert len(keys) == len(set(keys))

    def test_deterministic(self):
        a = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=5))
        b = generate_dataset(make_taxonomy(), config=SelfSupConfig(seed=5))
        assert [s.pair for s in a.all_pairs] == [s.pair for s in b.all_pairs]

    def test_multiple_negatives_per_positive(self):
        ds = generate_dataset(make_taxonomy(),
                              config=SelfSupConfig(seed=0,
                                                   negatives_per_positive=3))
        stats = ds.statistics()
        assert stats["E_Negative"] > stats["E_Positive"]


@settings(max_examples=15, deadline=None)
@given(st.integers(5, 40), st.integers(2, 10), st.integers(0, 100))
def test_generation_invariants_property(heads, others, seed):
    """For any taxonomy shape, labels match ground truth edges."""
    taxonomy = make_taxonomy(num_heads=heads, num_others=others)
    ds = generate_dataset(taxonomy, config=SelfSupConfig(seed=seed))
    for sample in ds.all_pairs:
        if sample.label == 1:
            assert taxonomy.has_edge(sample.query, sample.item)
        else:
            assert not taxonomy.has_edge(sample.query, sample.item)
