"""The static half of ``repro.devtools``: rule fixtures + engine plumbing.

Every rule RL001–RL006 gets a *fixture pair*: a trigger file the rule
must flag and a near-miss file exercising the documented exemptions
that must stay clean (the near-misses are what keep the rules from
rotting into noise).  Engine plumbing — inline suppressions, the
baseline round-trip, output formats, exit codes, rule selection — is
covered against the same tiny fixture trees.
"""

import json
import subprocess
import sys
import textwrap

import pytest

from repro.devtools import (
    ALL_RULES, AsyncBlockingRule, Baseline, ErrorEnvelopeRule,
    EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, ForkShmHygieneRule,
    LockDisciplineRule, MetricsDriftRule, SwallowedExceptionRule,
    collect_guarded_declarations, default_rules, format_findings,
    run_lint,
)
from repro.devtools.__main__ import main as lint_main


def lint(tmp_path, rule, files, baseline=None):
    """Write ``files`` under ``tmp_path`` and lint ``src/`` with ``rule``."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_lint(str(tmp_path), ["src"], [rule], baseline)


def rules_of(result):
    return [finding.rule for finding in result.new_findings]


# ----------------------------------------------------------------------
# RL001 async-blocking
# ----------------------------------------------------------------------
class TestAsyncBlocking:
    def test_trigger_blocking_primitives(self, tmp_path):
        result = lint(tmp_path, AsyncBlockingRule(), {"src/app/mod.py": """\
            import time

            class Handler:
                async def handle(self, loop):
                    time.sleep(0.5)
                    item = self._queue.get()
                    await loop.run_in_executor(None, self._queue.get())
            """})
        assert rules_of(result) == ["RL001"] * 3
        messages = " ".join(f.message for f in result.new_findings)
        assert "time.sleep" in messages
        assert "executor" in messages

    def test_near_miss_await_asyncio_and_executor_closure(self, tmp_path):
        result = lint(tmp_path, AsyncBlockingRule(), {"src/app/mod.py": """\
            import asyncio
            import time

            class Handler:
                async def handle(self, loop, event):
                    await asyncio.sleep(0.5)
                    await asyncio.wait_for(event.wait(), 1.0)
                    item = self._queue.get(timeout=0.1)

                    def offloaded():
                        time.sleep(0.5)
                        return self._queue.get()

                    return await loop.run_in_executor(None, offloaded)

                def sync_path(self):
                    time.sleep(0.5)
            """})
        assert result.new_findings == []


# ----------------------------------------------------------------------
# RL002 lock-discipline
# ----------------------------------------------------------------------
class TestLockDiscipline:
    def test_trigger_unguarded_mutation(self, tmp_path):
        result = lint(tmp_path, LockDisciplineRule(),
                      {"src/app/mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: self._lock

                def add(self, item):
                    self._items.append(item)
            """})
        assert rules_of(result) == ["RL002"]
        assert "self._items" in result.new_findings[0].message

    def test_near_miss_with_lock_holds_and_condition_alias(self, tmp_path):
        result = lint(tmp_path, LockDisciplineRule(),
                      {"src/app/mod.py": """\
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._wakeup = threading.Condition(self._lock)
                    self._items = []  # guarded-by: self._lock

                def add(self, item):
                    with self._lock:
                        self._items.append(item)

                def add_notifying(self, item):
                    with self._wakeup:
                        self._items.append(item)

                def _add_locked(self, item):
                    # holds: self._lock
                    self._items.append(item)
            """})
        assert result.new_findings == []

    def test_collect_guarded_declarations_shared_with_lockwatch(self):
        declarations = collect_guarded_declarations(textwrap.dedent("""\
            class Store:
                def __init__(self):
                    self._items = []  # guarded-by: self._lock
                    self._epoch = 0  # guarded-by: self._lock
                    self._free = 0
            """))
        assert declarations == {
            "Store": {"_items": "_lock", "_epoch": "_lock"}}


# ----------------------------------------------------------------------
# RL003 fork/shm hygiene
# ----------------------------------------------------------------------
class TestForkShmHygiene:
    def test_trigger_import_time_thread_fork_and_rogue_shm(self, tmp_path):
        result = lint(tmp_path, ForkShmHygieneRule(),
                      {"src/app/mod.py": """\
            import os
            import threading
            from multiprocessing import shared_memory

            worker = threading.Thread(target=print)

            def spawn():
                return os.fork()

            def segment():
                return shared_memory.SharedMemory(name="x")
            """})
        assert sorted(rules_of(result)) == ["RL003"] * 3
        messages = " ".join(f.message for f in result.new_findings)
        assert "import time" in messages
        assert "os.fork" in messages
        assert "serving/shm.py" in messages

    def test_near_miss_lazy_thread_and_shm_owner_module(self, tmp_path):
        result = lint(tmp_path, ForkShmHygieneRule(), {
            "src/app/mod.py": """\
                import threading

                def start():
                    return threading.Thread(target=print)
                """,
            "src/app/serving/shm.py": """\
                from multiprocessing import shared_memory

                def create(size):
                    return shared_memory.SharedMemory(create=True,
                                                      size=size)
                """})
        assert result.new_findings == []


# ----------------------------------------------------------------------
# RL004 error-envelope
# ----------------------------------------------------------------------
_REGISTRY = """\
    ERROR_CODES = {
        "invalid_request": 400,
        "not_found": 404,
    }
    """


class TestErrorEnvelope:
    def test_trigger_unregistered_code(self, tmp_path):
        result = lint(tmp_path, ErrorEnvelopeRule(), {
            "src/app/api/errors.py": _REGISTRY,
            "src/app/handlers.py": """\
                def handle():
                    raise ApiError("bogus_code", "nope")
                """})
        assert rules_of(result) == ["RL004"]
        assert "bogus_code" in result.new_findings[0].message

    def test_trigger_registered_but_undocumented(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "http_api.md").write_text(
            "| `invalid_request` | 400 | bad payload |\n")
        result = lint(tmp_path, ErrorEnvelopeRule(),
                      {"src/app/api/errors.py": _REGISTRY})
        assert rules_of(result) == ["RL004"]
        assert "not_found" in result.new_findings[0].message

    def test_near_miss_registered_and_documented(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "http_api.md").write_text(
            "| `invalid_request` | 400 | bad payload |\n"
            "| `not_found` | 404 | unknown concept |\n")
        result = lint(tmp_path, ErrorEnvelopeRule(), {
            "src/app/api/errors.py": _REGISTRY,
            "src/app/handlers.py": """\
                def handle():
                    raise ApiError("invalid_request", "nope")
                """})
        assert result.new_findings == []


# ----------------------------------------------------------------------
# RL005 metrics drift
# ----------------------------------------------------------------------
_METRICS_DOCS = ("| `repro_good_total` | counter |\n"
                 "| `repro_http_*` | per-route family |\n")


class TestMetricsDrift:
    def test_trigger_emitted_but_undocumented(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "http_api.md").write_text(_METRICS_DOCS)
        result = lint(tmp_path, MetricsDriftRule(),
                      {"src/app/metrics.py": '''\
            def render(name):
                """Prometheus text."""
                return "\\n".join(["repro_good_total 1",
                                   f"repro_http_{name} 2",
                                   "repro_rogue_total 3"])
            '''})
        assert rules_of(result) == ["RL005"]
        assert "repro_rogue_total" in result.new_findings[0].message

    def test_trigger_documented_but_never_emitted(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "http_api.md").write_text(_METRICS_DOCS)
        result = lint(tmp_path, MetricsDriftRule(),
                      {"src/app/metrics.py": """\
            def render():
                return "repro_good_total 1"
            """})
        assert rules_of(result) == ["RL005"]
        finding = result.new_findings[0]
        assert finding.path == "docs/http_api.md"
        assert "repro_http_" in finding.message

    def test_near_miss_exact_and_wildcard_family(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "http_api.md").write_text(_METRICS_DOCS)
        result = lint(tmp_path, MetricsDriftRule(),
                      {"src/app/metrics.py": '''\
            def render(name):
                """Docstrings mentioning repro_prose_total do not count."""
                return "\\n".join(["repro_good_total 1",
                                   f"repro_http_{name} 2"])
            '''})
        assert result.new_findings == []


# ----------------------------------------------------------------------
# RL006 swallowed exceptions
# ----------------------------------------------------------------------
class TestSwallowedExceptions:
    def test_trigger_silent_broad_except(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:
                    pass
                try:
                    task()
                except:
                    return None
            """})
        assert rules_of(result) == ["RL006"] * 2

    def test_near_miss_logged_counted_reraised_or_used(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            import warnings

            def run(self, task):
                try:
                    task()
                except Exception as error:
                    warnings.warn(f"task failed: {error!r}")
                try:
                    task()
                except Exception:
                    self.failures += 1
                try:
                    task()
                except Exception:
                    raise
                try:
                    task()
                except ValueError:
                    pass  # narrow excepts are out of scope
            """})
        assert result.new_findings == []


# ----------------------------------------------------------------------
# Engine plumbing: suppressions, baseline, formats, exit codes
# ----------------------------------------------------------------------
_SILENT_EXCEPT = """\
    def run(task):
        try:
            task()
        except Exception:
            pass
    """


class TestSuppressions:
    def test_trailing_comment_suppresses(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:  # repro-lint: disable=RL006 - fine
                    pass
            """})
        assert result.new_findings == []
        assert rules_of(result) == []
        assert [f.rule for f in result.suppressed] == ["RL006"]
        assert result.exit_code == EXIT_CLEAN

    def test_standalone_comment_above_suppresses(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            def run(task):
                try:
                    task()
                # repro-lint: disable=RL006 - cleanup must never raise
                except Exception:
                    pass
            """})
        assert result.new_findings == []
        assert [f.rule for f in result.suppressed] == ["RL006"]

    def test_comment_below_does_not_suppress(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:
                    # repro-lint: disable=RL006 - too late down here
                    pass
            """})
        assert rules_of(result) == ["RL006"]

    def test_suppression_is_rule_specific(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": """\
            def run(task):
                try:
                    task()
                except Exception:  # repro-lint: disable=RL001 - wrong id
                    pass
            """})
        assert rules_of(result) == ["RL006"]


class TestBaseline:
    def test_round_trip(self, tmp_path):
        first = lint(tmp_path, SwallowedExceptionRule(),
                     {"src/app/mod.py": _SILENT_EXCEPT})
        [finding] = first.new_findings
        baseline = Baseline([{
            "fingerprint": finding.fingerprint, "rule": finding.rule,
            "path": finding.path,
            "justification": "grandfathered during rollout"}])
        path = tmp_path / "baseline.json"
        baseline.save(str(path))
        reloaded = Baseline.load(str(path))
        assert reloaded.covers(finding)
        second = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/mod.py": _SILENT_EXCEPT},
                      baseline=reloaded)
        assert second.new_findings == []
        assert [f.rule for f in second.baselined] == ["RL006"]
        assert second.exit_code == EXIT_CLEAN

    def test_fingerprint_survives_line_moves(self, tmp_path):
        first = lint(tmp_path, SwallowedExceptionRule(),
                     {"src/app/mod.py": _SILENT_EXCEPT})
        shifted = lint(tmp_path, SwallowedExceptionRule(),
                       {"src/app/mod.py": "import os\n\n\n"
                        + textwrap.dedent(_SILENT_EXCEPT)})
        assert first.new_findings[0].line != shifted.new_findings[0].line
        assert first.new_findings[0].fingerprint == \
            shifted.new_findings[0].fingerprint

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(str(tmp_path / "absent.json")).entries == []

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{"fingerprint": "abc123", "rule": "RL006",
                         "path": "src/x.py", "justification": "  "}]}))
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(str(path))


class TestOutputAndExitCodes:
    def _result(self, tmp_path):
        return lint(tmp_path, SwallowedExceptionRule(),
                    {"src/app/mod.py": _SILENT_EXCEPT})

    def test_text_format(self, tmp_path):
        text = format_findings(self._result(tmp_path), "text")
        assert "src/app/mod.py" in text
        assert "RL006" in text
        assert "1 new finding(s)" in text

    def test_json_format(self, tmp_path):
        payload = json.loads(format_findings(self._result(tmp_path),
                                             "json"))
        assert payload["summary"]["new"] == 1
        [finding] = payload["findings"]
        assert finding["rule"] == "RL006"
        assert finding["fingerprint"]

    def test_github_format(self, tmp_path):
        text = format_findings(self._result(tmp_path), "github")
        assert text.startswith("::error file=src/app/mod.py,line=")
        assert "title=reprolint RL006::" in text

    def test_exit_codes(self, tmp_path):
        assert self._result(tmp_path).exit_code == EXIT_FINDINGS
        clean = lint(tmp_path, SwallowedExceptionRule(),
                     {"src/app/clean.py": "def ok():\n    return 1\n",
                      "src/app/mod.py": "def ok():\n    return 2\n"})
        assert clean.exit_code == EXIT_CLEAN

    def test_parse_error_is_exit_error_not_fatal(self, tmp_path):
        result = lint(tmp_path, SwallowedExceptionRule(),
                      {"src/app/broken.py": "def broken(:\n",
                       "src/app/mod.py": _SILENT_EXCEPT})
        assert result.exit_code == EXIT_ERROR
        assert [path for path, _ in result.errors] == \
            ["src/app/broken.py"]
        # the unparseable file must not hide findings elsewhere
        assert rules_of(result) == ["RL006"]


class TestRuleSelection:
    def test_default_is_all_rules_in_id_order(self):
        rules = default_rules()
        assert [rule.id for rule in rules] == \
            [f"RL{i:03d}" for i in range(1, 9)]
        assert len(ALL_RULES) == 8

    def test_select_by_id_and_name(self):
        rules = default_rules(["RL006", "async-blocking"])
        assert [rule.id for rule in rules] == ["RL006", "RL001"]

    def test_unknown_selector_raises(self):
        with pytest.raises(ValueError, match="RL999"):
            default_rules(["RL999"])


class TestCommandLine:
    def _write_fixture(self, tmp_path):
        path = tmp_path / "src" / "app" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(textwrap.dedent(_SILENT_EXCEPT))
        return tmp_path

    def test_findings_exit_code_and_output(self, tmp_path, capsys):
        root = self._write_fixture(tmp_path)
        code = lint_main(["src", "--root", str(root)])
        assert code == EXIT_FINDINGS
        assert "RL006" in capsys.readouterr().out

    def test_rule_filter_makes_it_clean(self, tmp_path, capsys):
        root = self._write_fixture(tmp_path)
        code = lint_main(["src", "--root", str(root), "--rules", "RL001"])
        assert code == EXIT_CLEAN
        capsys.readouterr()

    def test_unknown_rule_is_linter_error(self, tmp_path, capsys):
        code = lint_main(["src", "--root", str(tmp_path),
                          "--rules", "RL999"])
        assert code == EXIT_ERROR
        assert "unknown rule" in capsys.readouterr().err

    def test_bad_baseline_is_linter_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"entries": [
            {"fingerprint": "abc", "justification": ""}]}))
        code = lint_main(["src", "--root", str(tmp_path),
                          "--baseline", str(baseline)])
        assert code == EXIT_ERROR
        assert "bad baseline" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_cls in ALL_RULES:
            assert rule_cls.id in out

    def test_module_entry_point(self, tmp_path):
        root = self._write_fixture(tmp_path)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools", "src",
             "--root", str(root), "--format", "json"],
            capture_output=True, text=True)
        assert proc.returncode == EXIT_FINDINGS
        assert json.loads(proc.stdout)["summary"]["new"] == 1


def test_repository_lints_clean_against_checked_in_baseline():
    """The acceptance gate: ``repro lint`` on src/ must stay clean."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    baseline = Baseline.load(os.path.join(repo_root, "devtools",
                                          "baseline.json"))
    result = run_lint(repo_root, ["src"], default_rules(), baseline)
    assert result.exit_code == EXIT_CLEAN, \
        "\n" + format_findings(result, "text")
