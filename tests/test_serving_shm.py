"""Shared-memory worker-pool tests: lifecycle, parity, fallback, cleanup.

The zero-copy contract (ISSUE 7): one weight copy in shared-memory
segments, attached read-only by every worker, with **bit-identical**
scores to the private-copy path; segments are unlinked exactly once on
every exit path (stop, SIGTERM, atexit) so ``/dev/shm`` never leaks and
the stdlib ``resource_tracker`` never warns.
"""

import os
import signal
import subprocess
import sys
import time
import warnings

import numpy as np
import pytest

from repro.infer import InferenceEngine
from repro.infer.graph import DynamicGraph
from repro.retrieval import CandidateIndex
from repro.serving import (
    ArtifactBundle, ShardedScorerPool, SharedArtifactStore,
    SharedBundleView, TaxonomyService, attach_manifest,
    shared_memory_default,
)
from repro.serving.cluster import _load_worker_bundle


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("shm_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


@pytest.fixture(scope="module")
def scoring_pairs(tiny_fitted_pipeline):
    pairs = [s.pair for s in tiny_fitted_pipeline.dataset.all_pairs][:40]
    pairs += [("unseen concept", "another unseen"), ("a", "b")]
    return pairs


def _dev_shm_entries(prefix: str) -> list[str]:
    root = "/dev/shm"
    if not os.path.isdir(root):
        return []
    return [name for name in os.listdir(root) if name.startswith(prefix)]


# ---------------------------------------------------------------------------
# store lifecycle


class TestStoreLifecycle:
    def test_publish_attach_round_trip(self):
        store = SharedArtifactStore()
        arrays = {"a": np.arange(12, dtype=np.float32).reshape(3, 4),
                  "b": np.array([1.5, -2.5]),
                  "empty": np.zeros((0, 4), dtype=np.int64)}
        manifest = store.publish(arrays, meta={"tag": "t"})
        try:
            assert manifest["generation"] == 1
            assert manifest["owner_pid"] == os.getpid()
            view = attach_manifest(manifest)
            assert view.meta == {"tag": "t"}
            for name, source in arrays.items():
                got = view.array(name)
                np.testing.assert_array_equal(got, source)
                assert got.dtype == source.dtype
                assert not got.flags.writeable
            view.close()
        finally:
            store.unlink()

    def test_views_are_read_only_owner_side(self):
        store = SharedArtifactStore()
        store.publish({"w": np.ones(4)})
        try:
            view = store.views()["w"]
            with pytest.raises(ValueError):
                view[0] = 2.0
        finally:
            store.unlink()

    def test_generations_and_retirement(self):
        store = SharedArtifactStore()
        try:
            first = store.publish({"w": np.ones(4)})
            second = store.publish({"w": np.full(4, 2.0)})
            assert second["generation"] == 2
            assert store.segment_stats()["segments"] == 2
            # old generation still attachable until retired
            old = attach_manifest(first)
            np.testing.assert_array_equal(old.array("w"), np.ones(4))
            old.close()
            removed = store.retire_before(second["generation"])
            assert removed == 1
            assert store.live_segment_names() == \
                [second["arrays"]["w"]["segment"]]
            with pytest.raises(FileNotFoundError):
                attach_manifest(first)
        finally:
            store.unlink()

    def test_labels_are_independent_families(self):
        store = SharedArtifactStore()
        try:
            store.publish({"w": np.ones(2)}, label="engine")
            retrieval = store.publish({"m": np.ones(3)}, label="retrieval")
            assert retrieval["generation"] == 1
            assert store.generation("engine") == 1
            assert store.generation("retrieval") == 1
            store.retire_before(2, label="retrieval")
            assert store.generation("engine") == 1
            assert store.segment_stats()["segments"] == 1
        finally:
            store.unlink()

    def test_unlink_is_idempotent_and_removes_dev_shm(self):
        store = SharedArtifactStore()
        store.publish({"w": np.ones(8)})
        assert _dev_shm_entries(store.prefix)
        store.unlink()
        assert store.closed
        assert not _dev_shm_entries(store.prefix)
        store.unlink()  # second call is a no-op
        with pytest.raises(RuntimeError):
            store.publish({"w": np.ones(2)})

    def test_attach_rejects_size_mismatch(self):
        store = SharedArtifactStore()
        manifest = store.publish({"w": np.ones(4)})
        try:
            doctored = dict(manifest)
            doctored["arrays"] = {"w": dict(manifest["arrays"]["w"],
                                            nbytes=10 ** 9)}
            with pytest.raises(ValueError):
                attach_manifest(doctored)
        finally:
            store.unlink()


# ---------------------------------------------------------------------------
# engine attach parity (in-process)


class TestEngineAttach:
    def _attach_round_trip(self, engine):
        store = SharedArtifactStore()
        meta, arrays = engine.shared_state()
        manifest = store.publish(arrays, meta=meta)
        view = attach_manifest(manifest)
        attached = InferenceEngine.attach_shared(view.meta, view.arrays)
        return store, view, attached

    def test_attached_scores_bit_identical(self, tiny_fitted_pipeline,
                                           scoring_pairs):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        store, view, attached = self._attach_round_trip(engine)
        try:
            expected = engine.score_pairs(scoring_pairs)
            got = attached.score_pairs(scoring_pairs)
            assert np.array_equal(got, expected)
        finally:
            view.close()
            store.unlink()

    def test_attached_engine_grows_copy_on_write(self, tiny_fitted_pipeline,
                                                 small_world, scoring_pairs):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        store, view, attached = self._attach_round_trip(engine)
        try:
            shared_matrix = view.array("structural.node_matrix").copy()
            nodes = sorted(small_world.existing_taxonomy.nodes)
            edges = [(nodes[0], "cow new concept"),
                     (nodes[1], nodes[-1])]
            oracle = InferenceEngine(tiny_fitted_pipeline.detector)
            first = attached.apply_attachments(edges)
            second = oracle.apply_attachments(edges)
            assert first["applied_edges"] == second["applied_edges"]
            assert first["new_nodes"] == second["new_nodes"]
            assert np.array_equal(attached.score_pairs(scoring_pairs),
                                  oracle.score_pairs(scoring_pairs))
            # growth went into private buffers, never the shared segment
            np.testing.assert_array_equal(
                view.array("structural.node_matrix"), shared_matrix)
        finally:
            view.close()
            store.unlink()

    def test_float16_node_matrix_round_trips(self, tiny_fitted_pipeline,
                                             scoring_pairs):
        engine = InferenceEngine(tiny_fitted_pipeline.detector,
                                 node_dtype="float16")
        store, view, attached = self._attach_round_trip(engine)
        try:
            assert view.array("structural.node_matrix").dtype == np.float16
            assert attached.stats_snapshot().node_dtype == "float16"
            assert np.array_equal(attached.score_pairs(scoring_pairs),
                                  engine.score_pairs(scoring_pairs))
        finally:
            view.close()
            store.unlink()

    def test_shared_bundle_view_matches_disk_load(self, bundle_dir,
                                                  scoring_pairs):
        bundle = ArtifactBundle.load(bundle_dir)
        engine = bundle.pipeline.detector.compile_inference()
        store = SharedArtifactStore()
        meta, arrays = engine.shared_state()
        manifest = store.publish(arrays, meta=meta)
        try:
            shared = SharedBundleView.attach(manifest, bundle_dir)
            assert shared.mode == "shared"
            assert np.array_equal(shared.score_pairs(scoring_pairs),
                                  bundle.score_pairs(scoring_pairs))
            shared.close()
        finally:
            store.unlink()

    def test_worker_loader_falls_back_private(self, bundle_dir):
        garbage = {"store": "nope", "owner_pid": -1, "label": "engine",
                   "generation": 1, "meta": {},
                   "arrays": {"w": {"segment": "rp-does-not-exist",
                                    "dtype": "<f8", "shape": [2],
                                    "nbytes": 16}}}
        bundle, info = _load_worker_bundle(bundle_dir, garbage)
        assert isinstance(bundle, ArtifactBundle)
        assert info["mode"] == "private"
        assert "FileNotFoundError" in info["attach_error"]


# ---------------------------------------------------------------------------
# graph CSR slabs


class TestGraphCsr:
    def test_round_trip_and_copy_on_write(self):
        nodes = ["a", "b", "c", "d"]
        adjacency = np.zeros((4, 4))
        adjacency[0, 1] = adjacency[1, 0] = 2.0
        adjacency[1, 2] = adjacency[2, 1] = 0.5
        graph = DynamicGraph(nodes, adjacency)
        csr = graph.export_csr()
        for slab in csr.values():
            slab.flags.writeable = False  # simulate shared segments
        clone = DynamicGraph.from_csr(nodes, csr)
        np.testing.assert_array_equal(clone.dense_adjacency(),
                                      graph.dense_adjacency())
        clone.add_node("e")
        clone.add_edge("a", "e", weight=3.0)
        assert clone.has_edge("a", "e")
        # original CSR slabs were never written through
        np.testing.assert_array_equal(csr["cols"],
                                      graph.export_csr()["cols"])

    def test_duplicate_nodes_rejected(self):
        graph = DynamicGraph(["a", "b"], np.zeros((2, 2)))
        with pytest.raises(ValueError):
            DynamicGraph.from_csr(["a", "a"], graph.export_csr())


# ---------------------------------------------------------------------------
# retrieval slab


class TestRetrievalSlab:
    def test_slab_round_trip_preserves_search(self, rng):
        concepts = [f"concept {i}" for i in range(40)]
        vectors = rng.normal(size=(40, 8))
        index = CandidateIndex(concepts, vectors)
        meta, arrays = index.export_slab()
        store = SharedArtifactStore()
        manifest = store.publish(arrays, meta=meta, label="retrieval")
        try:
            view = attach_manifest(manifest)
            attached = CandidateIndex.from_slab(view.meta, view.arrays)
            queries = rng.normal(size=(3, 8))
            assert attached.search(queries, k=5) == index.search(
                queries, k=5)
            # growth after attach allocates private buffers
            added = attached.add(["fresh concept"],
                                 rng.normal(size=(1, 8)))
            assert added == 1
            assert "fresh concept" in attached
            view.close()
        finally:
            store.unlink()


# ---------------------------------------------------------------------------
# pool integration


class TestSharedPool:
    def test_shared_pool_bit_identical_to_private(self, bundle_dir,
                                                  scoring_pairs):
        with ShardedScorerPool(bundle_dir, num_workers=2,
                               share_memory=True,
                               watchdog_interval=None) as shared_pool:
            assert [w.mode for w in shared_pool._workers] == \
                ["shared", "shared"]
            stats = shared_pool.shared_memory_stats()
            assert stats["enabled"] and stats["attached_workers"] == 2
            assert stats["segments"] > 0 and stats["bytes"] > 0
            shared = shared_pool.score_pairs(scoring_pairs)
            prefix = shared_pool._store.prefix
            with ShardedScorerPool(bundle_dir, num_workers=2,
                                   share_memory=False,
                                   watchdog_interval=None) as private_pool:
                assert private_pool.shared_memory_stats()["enabled"] \
                    is False
                private = private_pool.score_pairs(scoring_pairs)
            assert np.array_equal(shared, private)
        assert not _dev_shm_entries(prefix)

    def test_reload_flips_generation_without_leaks(self, bundle_dir,
                                                   scoring_pairs):
        with ShardedScorerPool(bundle_dir, num_workers=2,
                               share_memory=True,
                               watchdog_interval=None) as pool:
            before = pool.score_pairs(scoring_pairs)
            segments_before = pool._store.segment_stats()["segments"]
            results = pool.reload(bundle_dir)
            assert all(r["ok"] and r.get("mode") == "shared"
                       for r in results)
            stats = pool.shared_memory_stats()
            assert stats["generation"] == 2
            # generation 1 was retired: segment count did not grow
            assert pool._store.segment_stats()["segments"] == \
                segments_before
            assert np.array_equal(pool.score_pairs(scoring_pairs), before)
            prefix = pool._store.prefix
        assert not _dev_shm_entries(prefix)

    def test_attach_failure_falls_back_to_private(self, bundle_dir,
                                                  scoring_pairs):
        with ShardedScorerPool(bundle_dir, num_workers=1,
                               share_memory=True,
                               watchdog_interval=None) as pool:
            worker = pool._workers[0]
            assert worker.mode == "shared"
            reference = pool.score_pairs(scoring_pairs)
            # tear the segments down under the live manifest, then kill
            # the worker: the respawn's attach must fail and fall back
            pool._store.unlink()
            worker.process.terminate()
            worker.process.join(10.0)
            deadline = time.monotonic() + 10.0
            while worker.alive and time.monotonic() < deadline:
                time.sleep(0.02)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                fallback = pool.score_pairs(scoring_pairs)
            assert worker.mode == "private"
            assert pool.stats_snapshot().attach_failures >= 1
            assert np.array_equal(fallback, reference)

    def test_seed_bundle_is_reused_for_publish(self, bundle_dir,
                                               scoring_pairs):
        bundle = ArtifactBundle.load(bundle_dir)
        with ShardedScorerPool(bundle_dir, num_workers=1,
                               share_memory=True, bundle=bundle,
                               watchdog_interval=None) as pool:
            assert pool._workers[0].mode == "shared"
            assert np.array_equal(pool.score_pairs(scoring_pairs),
                                  bundle.score_pairs(scoring_pairs))

    def test_env_default_parsing(self, monkeypatch):
        for raw, expected in (("", True), ("1", True), ("typo", True),
                              ("0", False), ("off", False),
                              ("FALSE", False), ("no", False)):
            monkeypatch.setenv("REPRO_SHM", raw)
            assert shared_memory_default() is expected

    def test_metrics_expose_shm_state(self, bundle_dir, scoring_pairs):
        bundle = ArtifactBundle.load(bundle_dir)
        with ShardedScorerPool(bundle_dir, num_workers=2,
                               share_memory=True, bundle=bundle,
                               watchdog_interval=None) as pool:
            service = TaxonomyService(bundle, pool=pool)
            text = service.metrics_text()
            assert "repro_shm_segment_bytes" in text
            assert "repro_pool_shared_workers 2" in text
            assert "repro_pool_attach_failures_total 0" in text
            assert "repro_pool_respawn_seconds_count 2" in text
            assert 'repro_pool_respawn_seconds_bucket{le="+Inf"} 2' in text


# ---------------------------------------------------------------------------
# exit-path hygiene (subprocess)

_TRACKER_SCRIPT = r"""
import multiprocessing as mp
import sys

import numpy as np

from repro.serving import SharedArtifactStore, attach_manifest


def child(manifest):
    view = attach_manifest(manifest)
    assert float(view.array("w").sum()) == 10.0
    view.close()


if __name__ == "__main__":
    store = SharedArtifactStore()
    manifest = store.publish({"w": np.full(4, 2.5)})
    for method in sys.argv[1:]:
        ctx = mp.get_context(method)
        process = ctx.Process(target=child, args=(manifest,))
        process.start()
        process.join(30)
        assert process.exitcode == 0, (method, process.exitcode)
    store.unlink()
    print("PREFIX", store.prefix)
"""

_SIGTERM_SCRIPT = r"""
import os
import signal

import numpy as np

from repro.serving import SharedArtifactStore

store = SharedArtifactStore()
store.publish({"w": np.ones(16)})
print("PREFIX", store.prefix, flush=True)
os.kill(os.getpid(), signal.SIGTERM)
"""


def _run_script(script: str, tmp_path, *argv: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src"),
         env.get("PYTHONPATH", "")])
    # a real file (not ``-c``) so the spawn start method can re-import it
    path = tmp_path / "shm_script.py"
    path.write_text(script)
    return subprocess.run([sys.executable, str(path), *argv],
                          capture_output=True, text=True, timeout=120,
                          env=env)


class TestExitHygiene:
    def test_no_resource_tracker_noise_across_start_methods(self, tmp_path):
        methods = [m for m in ("fork", "spawn")
                   if m in __import__("multiprocessing")
                   .get_all_start_methods()]
        result = _run_script(_TRACKER_SCRIPT, tmp_path, *methods)
        assert result.returncode == 0, result.stderr
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
        assert "KeyError" not in result.stderr
        prefix = result.stdout.split("PREFIX", 1)[1].strip()
        assert not _dev_shm_entries(prefix)

    def test_sigterm_unlinks_segments(self, tmp_path):
        result = _run_script(_SIGTERM_SCRIPT, tmp_path)
        # killed by SIGTERM after the chained handler ran
        assert result.returncode == -signal.SIGTERM, (result.returncode,
                                                      result.stderr)
        assert "leaked shared_memory" not in result.stderr
        prefix = result.stdout.split("PREFIX", 1)[1].strip()
        assert not _dev_shm_entries(prefix)


# ---------------------------------------------------------------------------
# respawn after snapshot-driven delta compaction


def _start_methods():
    import multiprocessing
    return [m for m in ("fork", "spawn")
            if m in multiprocessing.get_all_start_methods()]


@pytest.mark.parametrize("mp_context", _start_methods())
class TestRespawnAfterCompaction:
    def test_killed_worker_replays_only_post_snapshot_tail(
            self, bundle_dir, scoring_pairs, mp_context):
        bundle = ArtifactBundle.load(bundle_dir)
        engine = bundle.pipeline.detector.inference_engine
        parent = scoring_pairs[0][0]
        pre = [[(parent, "pre snapshot node a"),
                (parent, "pre snapshot node b")],
               [(parent, "pre snapshot node c")]]
        tail = [(parent, "post snapshot node d"),
                (parent, "post snapshot node e")]
        probes = scoring_pairs[:10] + [
            (parent, "pre snapshot node a"),
            (parent, "post snapshot node d")]

        with ShardedScorerPool(bundle_dir, num_workers=2,
                               share_memory=True, mp_context=mp_context,
                               watchdog_interval=None) as pool:
            assert [w.mode for w in pool._workers] == ["shared", "shared"]
            # Pre-snapshot history: broadcast to workers and mirror on
            # the parent engine (the service keeps both in step).
            for batch in pre:
                engine.apply_attachments(list(batch))
                assert all(r["ok"]
                           for r in pool.broadcast_attachments(batch))
            # The snapshot moment: fold the delta log and republish the
            # parent engine's post-snapshot state as a new generation.
            outcome = pool.compact_deltas(engine)
            assert outcome["covered"] is True
            assert outcome["baseline_edges"] == 3
            backlog = pool.delta_backlog_stats()
            assert backlog["covered_generation"] == outcome["generation"]
            assert backlog["tail_edges"] == 0
            # Post-snapshot tail, delivered live to current workers.
            engine.apply_attachments(list(tail))
            assert all(r["ok"] for r in pool.broadcast_attachments(tail))
            assert pool.delta_backlog_stats()["tail_edges"] == len(tail)

            before = pool.score_pairs(probes)
            stats0 = pool.stats_snapshot()

            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join()
            try:
                after = pool.score_pairs(probes)
            except RuntimeError:
                after = pool.score_pairs(probes)

            # Bitwise parity: the respawned worker attached the
            # republished (baseline-inclusive) generation and converged
            # on the same structural state via the tail alone.
            assert np.array_equal(after, before)
            stats = pool.stats_snapshot()
            assert stats.worker_restarts == stats0.worker_restarts + 1
            assert stats.delta_replays == stats0.delta_replays + 1
            # Only the post-snapshot tail was replayed — not the three
            # baseline edges folded into the republished generation.
            assert stats.delta_replayed_edges == \
                stats0.delta_replayed_edges + len(tail)

    def test_respawn_without_compaction_replays_everything(
            self, bundle_dir, scoring_pairs, mp_context):
        parent = scoring_pairs[0][0]
        batches = [[(parent, "delta node a"), (parent, "delta node b")],
                   [(parent, "delta node c")]]
        with ShardedScorerPool(bundle_dir, num_workers=1,
                               share_memory=True, mp_context=mp_context,
                               watchdog_interval=None) as pool:
            for batch in batches:
                assert all(r["ok"]
                           for r in pool.broadcast_attachments(batch))
            stats0 = pool.stats_snapshot()
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join()
            try:
                pool.score_pairs(scoring_pairs[:4])
            except RuntimeError:
                pool.score_pairs(scoring_pairs[:4])
            stats = pool.stats_snapshot()
            # No covering generation: the full cumulative log replays.
            assert stats.delta_replayed_edges == \
                stats0.delta_replayed_edges + 3
