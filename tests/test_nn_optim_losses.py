"""Optimizer and loss-function tests."""

import numpy as np
import pytest

from repro.nn import (
    Adam, Parameter, SGD, Tensor, bce_with_logits, binary_cross_entropy,
    clip_grad_norm, cross_entropy, info_nce,
)


def quadratic_loss(param):
    return ((param - 3.0) * (param - 3.0)).sum()


class TestOptimizers:
    @pytest.mark.parametrize("factory", [
        lambda p: SGD(p, lr=0.1),
        lambda p: SGD(p, lr=0.05, momentum=0.9),
        lambda p: Adam(p, lr=0.3),
    ])
    def test_converges_on_quadratic(self, factory):
        param = Parameter(np.zeros(4))
        optimizer = factory([param])
        for _ in range(100):
            optimizer.zero_grad()
            loss = quadratic_loss(param)
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, 3.0, atol=0.1)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.full(3, 10.0))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert np.all(param.data < 10.0)

    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        optimizer = Adam([a, b], lr=0.1)
        (a * 2).sum().backward()
        before = b.data.copy()
        optimizer.step()
        assert np.allclose(b.data, before)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_clip_grad_norm(self):
        param = Parameter(np.ones(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_noop_below_max(self):
        param = Parameter(np.ones(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], max_norm=10.0)
        assert np.allclose(param.grad, 0.1)


class TestLosses:
    def test_bce_with_logits_matches_reference(self, rng):
        logits = rng.normal(size=10)
        targets = (rng.random(10) > 0.5).astype(float)
        loss = bce_with_logits(Tensor(logits), targets).item()
        probs = 1 / (1 + np.exp(-logits))
        expected = -np.mean(targets * np.log(probs)
                            + (1 - targets) * np.log(1 - probs))
        assert loss == pytest.approx(expected, rel=1e-6)

    def test_bce_with_logits_extreme_values_stable(self):
        logits = Tensor(np.array([1000.0, -1000.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_binary_cross_entropy_on_probs(self):
        probs = Tensor(np.array([0.9, 0.1]))
        loss = binary_cross_entropy(probs, np.array([1.0, 0.0])).item()
        assert loss == pytest.approx(-np.log(0.9), rel=1e-2)

    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = cross_entropy(logits, np.array([0, 3])).item()
        assert loss == pytest.approx(np.log(4), rel=1e-9)

    def test_cross_entropy_mask_excludes_positions(self, rng):
        logits = Tensor(rng.normal(size=(1, 3, 5)))
        targets = np.array([[0, 1, 2]])
        full = cross_entropy(logits, targets).item()
        only_first = cross_entropy(logits, targets,
                                   mask=np.array([[1, 0, 0]])).item()
        lp = logits.data - logits.data.max(-1, keepdims=True)
        lp = lp - np.log(np.exp(lp).sum(-1, keepdims=True))
        assert only_first == pytest.approx(-lp[0, 0, 0], rel=1e-9)
        assert full != pytest.approx(only_first)

    def test_info_nce_prefers_similar_positives(self):
        # Positive much more similar than negatives -> small loss.
        sims_good = Tensor(np.array([[5.0, -5.0, -5.0]]))
        sims_bad = Tensor(np.array([[-5.0, 5.0, 5.0]]))
        mask = np.array([[1.0, 0.0, 0.0]])
        good = info_nce(sims_good, mask).item()
        bad = info_nce(sims_bad, mask).item()
        assert good < 0.01
        assert bad > 5.0

    def test_info_nce_anchor_without_positives_ignored(self):
        sims = Tensor(np.array([[1.0, 2.0], [0.5, 0.1]]))
        mask = np.array([[1.0, 0.0], [0.0, 0.0]])
        loss_two = info_nce(sims, mask).item()
        loss_one = info_nce(sims[0:1], mask[0:1]).item()
        assert loss_two == pytest.approx(loss_one, rel=1e-9)

    def test_info_nce_shape_mismatch(self):
        with pytest.raises(ValueError):
            info_nce(Tensor(np.zeros((2, 3))), np.zeros((3, 2)))

    def test_info_nce_fractional_positive_weights(self):
        """Graded positives (edge weights) are legal mask values."""
        sims = Tensor(np.array([[2.0, 1.0, 0.0]]))
        strong = info_nce(sims, np.array([[1.0, 0.0, 0.0]])).item()
        weak = info_nce(sims, np.array([[0.1, 0.0, 0.0]])).item()
        assert weak > strong
