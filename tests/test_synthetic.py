"""Synthetic world, click-log, and UGC generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synthetic import (
    ClickLogConfig, Lexicon, UgcConfig, WorldConfig, build_world,
    decorate_item, generate_click_logs, generate_ugc, junk_item,
    DOMAIN_PRESETS,
)
from repro.taxonomy import split_edges_by_headword


class TestLexicon:
    def test_unique_names(self):
        lex = Lexicon(np.random.default_rng(0))
        names = {lex.pseudo_word() for _ in range(200)}
        assert len(names) == 200

    def test_reserve_conflict(self):
        lex = Lexicon(np.random.default_rng(0))
        lex.reserve("bread")
        with pytest.raises(ValueError):
            lex.reserve("bread")
        assert lex.is_used("bread")

    def test_headword_child_ends_with_parent(self):
        lex = Lexicon(np.random.default_rng(0))
        child = lex.headword_child("bread")
        assert child.endswith(" bread")

    def test_atomic_hyponym_avoids_parent_token(self):
        lex = Lexicon(np.random.default_rng(0))
        for _ in range(20):
            name = lex.atomic_hyponym("bread")
            assert "bread" not in name.split()

    def test_category_head_curated_then_pseudo(self):
        lex = Lexicon(np.random.default_rng(0))
        first = lex.category_head("snack", 0)
        assert first == "bread"
        far = lex.category_head("snack", 500)
        assert far not in ("bread", "cake")


class TestWorldConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(headword_fraction=1.5)
        with pytest.raises(ValueError):
            WorldConfig(holdout_fraction=1.0)
        with pytest.raises(ValueError):
            WorldConfig(max_depth=1)

    def test_build_rejects_config_plus_overrides(self):
        with pytest.raises(ValueError):
            build_world(WorldConfig(), seed=3)


class TestWorldInvariants:
    def test_partition_of_nodes(self, small_world):
        w = small_world
        assert w.existing_taxonomy.nodes | set(w.new_concepts) \
            == w.full_taxonomy.nodes
        assert not (w.existing_taxonomy.nodes & set(w.new_concepts))

    def test_no_orphans_in_existing(self, small_world):
        w = small_world
        orphans = [n for n in w.existing_taxonomy.nodes
                   if not w.existing_taxonomy.parents(n) and n != w.root]
        assert orphans == []

    def test_new_concept_parents_are_true(self, small_world):
        w = small_world
        for concept, parents in w.new_concepts.items():
            assert parents == w.full_taxonomy.parents(concept)

    def test_existing_edges_subset_of_full(self, small_world):
        w = small_world
        assert w.existing_taxonomy.edge_set() <= w.full_taxonomy.edge_set()

    def test_headword_fraction_respected(self):
        w = build_world(WorldConfig(domain="snack", seed=3,
                                    num_categories=10,
                                    children_per_category=(8, 12),
                                    headword_fraction=0.9, max_depth=4))
        head, others = split_edges_by_headword(w.full_taxonomy)
        share = len(head) / (len(head) + len(others))
        assert 0.75 < share < 0.98

    def test_deterministic(self):
        a = build_world(WorldConfig(seed=11, num_categories=4))
        b = build_world(WorldConfig(seed=11, num_categories=4))
        assert a.full_taxonomy.edge_set() == b.full_taxonomy.edge_set()
        assert set(a.new_concepts) == set(b.new_concepts)

    def test_common_concepts_under_root(self, small_world):
        w = small_world
        for name in w.common_concepts:
            assert w.full_taxonomy.has_edge(w.root, name)

    def test_oracles(self, small_world):
        w = small_world
        parent, child = next(iter(w.full_taxonomy.edges()))
        assert w.is_true_edge(parent, child)
        assert w.is_true_hyponym(parent, child)
        assert not w.is_true_hyponym(child, parent)
        assert w.true_parents(child) == w.full_taxonomy.parents(child)
        assert w.true_parents("not a concept") == set()

    def test_presets_exist(self):
        assert set(DOMAIN_PRESETS) == {"snack", "fruits", "prepared"}


class TestItems:
    def test_decorated_item_contains_concept(self, rng):
        for _ in range(30):
            title = decorate_item("cheese bun", rng)
            assert "cheese bun" in title

    def test_junk_item_mentions_no_concept(self, small_world, rng):
        from repro.graph import identify_concept
        for _ in range(20):
            title = junk_item(rng)
            assert identify_concept(title, small_world.vocabulary) is None


class TestClickLogs:
    def test_noise_rates_validation(self):
        with pytest.raises(ValueError):
            ClickLogConfig(drift_rate=0.5, common_rate=0.4, junk_rate=0.2)

    def test_log_structure(self, small_world, small_click_log):
        log = small_click_log
        assert log.num_records >= log.num_pairs > 0
        assert log.queries() <= small_world.full_taxonomy.nodes

    def test_items_for_query(self, small_click_log):
        query = next(iter(small_click_log.queries()))
        items = small_click_log.items_for(query)
        assert items
        assert all(count >= 1 for count in items.values())

    def test_pairs_matches_counts(self, small_click_log):
        triples = small_click_log.pairs()
        assert len(triples) == small_click_log.num_pairs
        assert sum(c for _, _, c in triples) == small_click_log.num_records

    def test_provenance_covers_items(self, small_click_log):
        for (_q, item) in list(small_click_log.counts)[:50]:
            assert item in small_click_log.provenance

    def test_majority_of_clicks_are_true_hyponyms(self, small_world,
                                                  small_click_log):
        """Noise channels are the minority (paper: noise ~ 10-15%)."""
        hits = noise = 0
        for (query, item), count in small_click_log.counts.items():
            concept = small_click_log.provenance[item]
            if concept is not None and (
                    concept == query  # specific-product self-click
                    or small_world.is_true_hyponym(query, concept)):
                hits += count
            else:
                noise += count
        assert hits / (hits + noise) > 0.75

    def test_unqueried_rate(self, small_world):
        full = generate_click_logs(small_world, ClickLogConfig(
            seed=1, unqueried_rate=0.0))
        partial = generate_click_logs(small_world, ClickLogConfig(
            seed=1, unqueried_rate=0.5))
        assert len(partial.queries()) < len(full.queries())

    def test_deterministic(self, small_world):
        a = generate_click_logs(small_world, ClickLogConfig(seed=9))
        b = generate_click_logs(small_world, ClickLogConfig(seed=9))
        assert a.counts == b.counts


class TestUgc:
    def test_corpus_nonempty(self, small_ugc):
        assert len(small_ugc) > 50
        assert all(isinstance(s, str) and s for s in small_ugc)

    def test_relational_cooccurrence_present(self, small_world, small_ugc):
        """Some sentence must mention a true (parent, child) pair together."""
        found = 0
        for parent, child in list(small_world.full_taxonomy.edges())[:40]:
            if parent == small_world.root:
                continue
            for sentence in small_ugc:
                if parent in sentence and child in sentence:
                    found += 1
                    break
        assert found > 0

    def test_noise_fraction(self, small_world):
        quiet = generate_ugc(small_world, UgcConfig(seed=2,
                                                    noise_fraction=0.0))
        noisy = generate_ugc(small_world, UgcConfig(seed=2,
                                                    noise_fraction=0.5))
        assert len(noisy) > len(quiet)

    def test_deterministic(self, small_world):
        a = generate_ugc(small_world, UgcConfig(seed=4))
        b = generate_ugc(small_world, UgcConfig(seed=4))
        assert a == b


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_world_seeds_never_crash_property(seed):
    """World generation is total over seeds."""
    w = build_world(WorldConfig(seed=seed, num_categories=3,
                                children_per_category=(2, 4), max_depth=3))
    assert w.full_taxonomy.num_nodes >= 4
