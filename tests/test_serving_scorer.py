"""BatchingScorer tests: equivalence, caching, coalescing, backoff paths."""

import threading
import time

import numpy as np
import pytest

from repro.serving import BatchingScorer


class CountingScorer:
    """Deterministic fake scorer that records every underlying call."""

    def __init__(self, delay: float = 0.0):
        self.calls: list[list] = []
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, pairs):
        with self._lock:
            self.calls.append(list(pairs))
        if self.delay:
            time.sleep(self.delay)
        return np.array([self.score(p) for p in pairs])

    @staticmethod
    def score(pair):
        return (hash(pair) % 997) / 997.0

    @property
    def num_pairs_scored(self):
        with self._lock:
            return sum(len(c) for c in self.calls)


def expected(pairs):
    return np.array([CountingScorer.score((str(a), str(b)))
                     for a, b in pairs])


PAIRS = [(f"parent {i}", f"child {i}") for i in range(20)]


class TestStatsSnapshot:
    def test_snapshot_is_an_independent_copy(self):
        scorer = BatchingScorer(CountingScorer())
        scorer.score_pairs(PAIRS[:4])
        snapshot = scorer.stats_snapshot()
        assert snapshot is not scorer.stats
        assert snapshot.pairs_requested == 4
        scorer.score_pairs(PAIRS[4:8])
        # The snapshot must not move with subsequent traffic.
        assert snapshot.pairs_requested == 4
        assert scorer.stats_snapshot().pairs_requested == 8

    def test_snapshot_is_internally_consistent_under_load(self):
        """Concurrent readers must never see a torn snapshot where
        cache_hits + pairs_scored exceeds pairs_requested."""
        import threading

        scorer = BatchingScorer(CountingScorer(), cache_size=0)
        stop = threading.Event()
        torn: list[tuple] = []

        def reader():
            while not stop.is_set():
                s = scorer.stats_snapshot()
                if s.cache_hits + s.pairs_scored > s.pairs_requested:
                    torn.append((s.cache_hits, s.pairs_scored,
                                 s.pairs_requested))

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            for _ in range(50):
                scorer.score_pairs(PAIRS)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not torn


class TestSynchronousMode:
    def test_matches_direct_scoring(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw)
        np.testing.assert_allclose(scorer.score_pairs(PAIRS),
                                   expected(PAIRS))

    def test_empty_request(self):
        scorer = BatchingScorer(CountingScorer())
        assert scorer.score_pairs([]).shape == (0,)

    def test_repeat_requests_hit_cache(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw)
        scorer.score_pairs(PAIRS)
        scorer.score_pairs(PAIRS)
        assert raw.num_pairs_scored == len(PAIRS)
        assert scorer.stats.cache_hits == len(PAIRS)

    def test_duplicates_within_request_scored_once(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw)
        result = scorer.score_pairs([PAIRS[0]] * 5 + [PAIRS[1]])
        assert raw.num_pairs_scored == 2
        np.testing.assert_allclose(
            result, expected([PAIRS[0]] * 5 + [PAIRS[1]]))

    def test_lru_eviction(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw, cache_size=2)
        scorer.score_pairs([PAIRS[0], PAIRS[1], PAIRS[2]])
        assert scorer.cache_len() == 2
        scorer.score_pairs([PAIRS[0]])  # evicted -> re-scored
        assert raw.num_pairs_scored == 4

    def test_cache_disabled(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw, cache_size=0)
        scorer.score_pairs(PAIRS[:3])
        scorer.score_pairs(PAIRS[:3])
        assert raw.num_pairs_scored == 6
        assert scorer.cache_len() == 0

    def test_clear_cache(self):
        scorer = BatchingScorer(CountingScorer())
        scorer.score_pairs(PAIRS[:3])
        assert scorer.cache_len() == 3
        scorer.clear_cache()
        assert scorer.cache_len() == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchingScorer(CountingScorer(), max_batch=0)
        with pytest.raises(ValueError):
            BatchingScorer(CountingScorer(), cache_size=-1)


class TestWorkerMode:
    def test_threaded_results_match_direct(self):
        raw = CountingScorer(delay=0.005)
        with BatchingScorer(raw, max_wait_ms=20.0) as scorer:
            results = {}

            def request(i):
                mine = [(f"q{i}", f"c{j}") for j in range(4)]
                results[i] = (mine, scorer.score_pairs(mine))

            threads = [threading.Thread(target=request, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(results) == 8
        for mine, got in results.values():
            np.testing.assert_allclose(got, expected(mine))

    def test_concurrent_requests_coalesce(self):
        raw = CountingScorer(delay=0.01)
        with BatchingScorer(raw, max_batch=256,
                            max_wait_ms=30.0) as scorer:
            threads = [
                threading.Thread(
                    target=scorer.score_pairs,
                    args=([(f"q{i}", f"c{j}") for j in range(3)],))
                for i in range(10)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(raw.calls) < 10  # fewer model calls than requests
        assert scorer.stats.coalesced_requests >= scorer.stats.batches

    def test_max_batch_respected(self):
        raw = CountingScorer()
        with BatchingScorer(raw, max_batch=4, max_wait_ms=5.0) as scorer:
            scorer.score_pairs(PAIRS)
        assert all(len(call) <= 4 for call in raw.calls)

    def test_errors_propagate_to_caller(self):
        def explode(pairs):
            raise RuntimeError("model died")

        with BatchingScorer(explode) as scorer:
            with pytest.raises(RuntimeError, match="model died"):
                scorer.score_pairs(PAIRS[:2])
        # the worker survives an error and keeps serving
        assert scorer.stats.requests == 1

    def test_start_stop_idempotent(self):
        scorer = BatchingScorer(CountingScorer())
        scorer.start()
        scorer.start()
        assert scorer.running
        scorer.stop()
        scorer.stop()
        assert not scorer.running

    def test_synchronous_fallback_after_stop(self):
        raw = CountingScorer()
        scorer = BatchingScorer(raw)
        scorer.start()
        scorer.stop()
        np.testing.assert_allclose(scorer.score_pairs(PAIRS[:2]),
                                   expected(PAIRS[:2]))


class TestAsScorerProtocol:
    def test_usable_by_expand_taxonomy(self):
        from repro.core import expand_taxonomy
        from repro.taxonomy import Taxonomy

        def oracle(pairs):
            return np.array([1.0 if parent == "food" else 0.0
                             for parent, child in pairs])

        scorer = BatchingScorer(oracle)
        taxonomy = Taxonomy(edges=[("food", "bread")])
        result = expand_taxonomy(scorer, taxonomy,
                                 {"food": ["cake"], "bread": ["toast"]})
        assert ("food", "cake") in result.taxonomy.edge_set()
        assert ("bread", "toast") not in result.taxonomy.edge_set()
