"""Documentation hygiene, enforced in CI by the ``docs-check`` and
``contract-check`` jobs.

Three contracts:

* **docstring coverage** (pydocstyle-lite): every module under
  ``repro.serving``, ``repro.infer``, ``repro.api`` and
  ``repro.retrieval``, every exported name, and every public method on
  exported classes carries a non-empty docstring.
* **markdown link integrity**: every intra-repo link in the README and
  the ``docs/`` site resolves to a real file.
* **API contract**: the ``/v1`` routes documented in
  ``docs/http_api.md`` match ``GET /v1/openapi.json`` as served by a
  live server — the docs cannot drift from the deployed surface.
"""

import importlib
import inspect
import os
import pkgutil
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: packages whose public surface must be fully documented
DOCUMENTED_PACKAGES = ["repro.serving", "repro.infer", "repro.api",
                       "repro.retrieval"]

#: markdown files whose intra-repo links must resolve
MARKDOWN_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/http_api.md",
    "docs/operations.md",
]

LINK_PATTERN = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _iter_modules(package_name):
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(package.__path__):
        yield importlib.import_module(f"{package_name}.{info.name}")


def _public_methods(cls):
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(member) or inspect.ismethod(member)
                or isinstance(inspect.getattr_static(cls, name, None),
                              property)):
            continue
        # Only hold this class's own surface to account, not inherited
        # stdlib machinery (e.g. dataclass or Thread internals).
        qualname = getattr(member, "__qualname__", "")
        if isinstance(inspect.getattr_static(cls, name, None), property):
            member = inspect.getattr_static(cls, name).fget
            qualname = getattr(member, "__qualname__", "")
        if not qualname.startswith(cls.__name__ + "."):
            continue
        yield name, member


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_module_has_a_docstring(package_name):
    missing = [module.__name__ for module in _iter_modules(package_name)
               if not (module.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_export_has_a_docstring(package_name):
    package = importlib.import_module(package_name)
    missing = []
    for symbol in package.__all__:
        obj = getattr(package, symbol)
        if callable(obj) or inspect.isclass(obj):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(symbol)
    assert not missing, \
        f"{package_name} exports without docstrings: {missing}"


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_public_method_has_a_docstring(package_name):
    package = importlib.import_module(package_name)
    missing = []
    for symbol in package.__all__:
        obj = getattr(package, symbol)
        if not inspect.isclass(obj):
            continue
        for name, member in _public_methods(obj):
            if not (inspect.getdoc(member) or "").strip():
                missing.append(f"{symbol}.{name}")
    assert not missing, \
        f"{package_name} public methods without docstrings: {missing}"


@pytest.mark.parametrize("markdown", MARKDOWN_FILES)
def test_intra_repo_markdown_links_resolve(markdown):
    path = os.path.join(REPO_ROOT, markdown)
    assert os.path.exists(path), f"{markdown} is missing"
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    broken = []
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), relative))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"{markdown}: broken links {broken}"


def test_docs_pages_exist_and_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as handle:
        readme = handle.read()
    for page in ("docs/architecture.md", "docs/http_api.md",
                 "docs/operations.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, page)), page
        assert page in readme, f"README does not link {page}"


# ----------------------------------------------------------------------
# API contract: docs/http_api.md vs the served /v1/openapi.json
# ----------------------------------------------------------------------
#: route-table rows in docs/http_api.md, e.g. ``| GET | [`/v1/healthz`](...)``
DOCS_ROUTE_PATTERN = re.compile(
    r"^\|\s*(GET|POST)\s*\|\s*\[`(/v1/[^`]*)`\]", re.MULTILINE)


def documented_v1_routes() -> set:
    """(method, path) pairs from the docs/http_api.md route table."""
    path = os.path.join(REPO_ROOT, "docs", "http_api.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return {(method, route)
            for method, route in DOCS_ROUTE_PATTERN.findall(text)}


@pytest.fixture(scope="module")
def live_openapi(tiny_fitted_pipeline, small_world, tmp_path_factory):
    """Start a real server and fetch its generated OpenAPI document."""
    import threading

    from repro.api import TaxonomyClient
    from repro.serving import (
        ArtifactBundle, ServiceConfig, TaxonomyService, make_server,
    )

    directory = str(tmp_path_factory.mktemp("contract_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    service = TaxonomyService(ArtifactBundle.load(directory),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield TaxonomyClient(f"http://{host}:{port}").openapi()
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.stop()
        thread.join(timeout=5)


class TestApiContract:
    """The documented /v1 surface must equal the served one."""

    def test_docs_table_parses(self):
        routes = documented_v1_routes()
        assert len(routes) >= 10, routes

    def test_every_documented_route_is_served(self, live_openapi):
        missing = [
            (method, path) for method, path in documented_v1_routes()
            if method.lower() not in live_openapi["paths"].get(path, {})]
        assert not missing, \
            f"documented in http_api.md but not served: {missing}"

    def test_every_served_v1_route_is_documented(self, live_openapi):
        documented = documented_v1_routes()
        undocumented = [
            (method.upper(), path)
            for path, operations in live_openapi["paths"].items()
            if path.startswith("/v1/")
            for method in operations
            if (method.upper(), path) not in documented]
        assert not undocumented, \
            f"served but not documented in http_api.md: {undocumented}"

    def test_documented_error_codes_match_registry(self):
        from repro.api import ERROR_CODES
        path = os.path.join(REPO_ROOT, "docs", "http_api.md")
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for code, status in ERROR_CODES.items():
            assert f"`{code}`" in text, \
                f"error code {code!r} missing from http_api.md"
            assert re.search(rf"`{code}`\s*\|\s*{status}\b", text), \
                f"{code} documented with wrong status (expect {status})"
