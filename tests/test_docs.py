"""Documentation hygiene, enforced in CI by the ``docs-check`` job.

Two contracts:

* **docstring coverage** (pydocstyle-lite): every module under
  ``repro.serving`` and ``repro.infer``, every exported name, and every
  public method on exported classes carries a non-empty docstring.
* **markdown link integrity**: every intra-repo link in the README and
  the ``docs/`` site resolves to a real file.
"""

import importlib
import inspect
import os
import pkgutil
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: packages whose public surface must be fully documented
DOCUMENTED_PACKAGES = ["repro.serving", "repro.infer"]

#: markdown files whose intra-repo links must resolve
MARKDOWN_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/http_api.md",
    "docs/operations.md",
]

LINK_PATTERN = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _iter_modules(package_name):
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(package.__path__):
        yield importlib.import_module(f"{package_name}.{info.name}")


def _public_methods(cls):
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(member) or inspect.ismethod(member)
                or isinstance(inspect.getattr_static(cls, name, None),
                              property)):
            continue
        # Only hold this class's own surface to account, not inherited
        # stdlib machinery (e.g. dataclass or Thread internals).
        qualname = getattr(member, "__qualname__", "")
        if isinstance(inspect.getattr_static(cls, name, None), property):
            member = inspect.getattr_static(cls, name).fget
            qualname = getattr(member, "__qualname__", "")
        if not qualname.startswith(cls.__name__ + "."):
            continue
        yield name, member


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_module_has_a_docstring(package_name):
    missing = [module.__name__ for module in _iter_modules(package_name)
               if not (module.__doc__ or "").strip()]
    assert not missing, f"modules without docstrings: {missing}"


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_export_has_a_docstring(package_name):
    package = importlib.import_module(package_name)
    missing = []
    for symbol in package.__all__:
        obj = getattr(package, symbol)
        if callable(obj) or inspect.isclass(obj):
            if not (inspect.getdoc(obj) or "").strip():
                missing.append(symbol)
    assert not missing, \
        f"{package_name} exports without docstrings: {missing}"


@pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
def test_every_public_method_has_a_docstring(package_name):
    package = importlib.import_module(package_name)
    missing = []
    for symbol in package.__all__:
        obj = getattr(package, symbol)
        if not inspect.isclass(obj):
            continue
        for name, member in _public_methods(obj):
            if not (inspect.getdoc(member) or "").strip():
                missing.append(f"{symbol}.{name}")
    assert not missing, \
        f"{package_name} public methods without docstrings: {missing}"


@pytest.mark.parametrize("markdown", MARKDOWN_FILES)
def test_intra_repo_markdown_links_resolve(markdown):
    path = os.path.join(REPO_ROOT, markdown)
    assert os.path.exists(path), f"{markdown} is missing"
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    broken = []
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), relative))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, f"{markdown}: broken links {broken}"


def test_docs_pages_exist_and_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as handle:
        readme = handle.read()
    for page in ("docs/architecture.md", "docs/http_api.md",
                 "docs/operations.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, page)), page
        assert page in readme, f"README does not link {page}"
