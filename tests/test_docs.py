"""Documentation hygiene, enforced in CI by the ``docs-check`` and
``contract-check`` jobs.

Three contracts:

* **docstring coverage**: rule ``RL007`` of the built-in analyzer
  (:mod:`repro.devtools`) — every module under ``repro.serving``,
  ``repro.infer``, ``repro.api``, ``repro.retrieval`` and
  ``repro.devtools``, every public top-level definition, and every
  public method on public classes carries a non-empty docstring.
* **markdown link integrity**: rule ``RL008`` — every intra-repo link
  in the README and the ``docs/`` site resolves to a real file.
* **API contract**: the ``/v1`` routes documented in
  ``docs/http_api.md`` match ``GET /v1/openapi.json`` as served by a
  live server — the docs cannot drift from the deployed surface.

The first two are thin wrappers over ``repro lint --rules RL007,RL008``
so the pytest suite and the CI ``static-analysis`` job can never
disagree about what "documented" means.
"""

import os
import re

import pytest

from repro.devtools import (
    DocstringCoverageRule, MarkdownLinkRule, format_findings, run_lint,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _lint(rule):
    return run_lint(REPO_ROOT, ["src"], [rule])


def test_docstring_coverage_rl007():
    """The analyzer's RL007 sweep over src/ must come back clean."""
    result = _lint(DocstringCoverageRule())
    assert not result.new_findings, \
        "\n" + format_findings(result, "text")


def test_markdown_links_rl008():
    """README + docs/*.md intra-repo links must all resolve (RL008)."""
    result = _lint(MarkdownLinkRule())
    assert not result.new_findings, \
        "\n" + format_findings(result, "text")


def test_markdown_link_rule_sees_the_whole_docs_site():
    """Guard the wrapper itself: RL008 must actually scan every page.

    A rule that silently scanned nothing would pass the test above, so
    pin the minimum set of pages it is required to cover.
    """
    from types import SimpleNamespace
    rule = MarkdownLinkRule()
    scanned = {page.replace(os.sep, "/") for page
               in rule.markdown_files(SimpleNamespace(root=REPO_ROOT))}
    for page in ("README.md", "docs/architecture.md", "docs/http_api.md",
                 "docs/operations.md", "docs/devtools.md"):
        assert page in scanned, f"RL008 does not scan {page}"


def test_docs_pages_exist_and_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"),
              encoding="utf-8") as handle:
        readme = handle.read()
    for page in ("docs/architecture.md", "docs/http_api.md",
                 "docs/operations.md", "docs/devtools.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, page)), page
        assert page in readme, f"README does not link {page}"


# ----------------------------------------------------------------------
# API contract: docs/http_api.md vs the served /v1/openapi.json
# ----------------------------------------------------------------------
#: route-table rows in docs/http_api.md, e.g. ``| GET | [`/v1/healthz`](...)``
DOCS_ROUTE_PATTERN = re.compile(
    r"^\|\s*(GET|POST)\s*\|\s*\[`(/v1/[^`]*)`\]", re.MULTILINE)


def documented_v1_routes() -> set:
    """(method, path) pairs from the docs/http_api.md route table."""
    path = os.path.join(REPO_ROOT, "docs", "http_api.md")
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return {(method, route)
            for method, route in DOCS_ROUTE_PATTERN.findall(text)}


@pytest.fixture(scope="module")
def live_openapi(tiny_fitted_pipeline, small_world, tmp_path_factory):
    """Start a real server and fetch its generated OpenAPI document."""
    import threading

    from repro.api import TaxonomyClient
    from repro.serving import (
        ArtifactBundle, ServiceConfig, TaxonomyService, make_server,
    )

    directory = str(tmp_path_factory.mktemp("contract_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    service = TaxonomyService(ArtifactBundle.load(directory),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield TaxonomyClient(f"http://{host}:{port}").openapi()
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.stop()
        thread.join(timeout=5)


class TestApiContract:
    """The documented /v1 surface must equal the served one."""

    def test_docs_table_parses(self):
        routes = documented_v1_routes()
        assert len(routes) >= 10, routes

    def test_every_documented_route_is_served(self, live_openapi):
        missing = [
            (method, path) for method, path in documented_v1_routes()
            if method.lower() not in live_openapi["paths"].get(path, {})]
        assert not missing, \
            f"documented in http_api.md but not served: {missing}"

    def test_every_served_v1_route_is_documented(self, live_openapi):
        documented = documented_v1_routes()
        undocumented = [
            (method.upper(), path)
            for path, operations in live_openapi["paths"].items()
            if path.startswith("/v1/")
            for method in operations
            if (method.upper(), path) not in documented]
        assert not undocumented, \
            f"served but not documented in http_api.md: {undocumented}"

    def test_documented_error_codes_match_registry(self):
        from repro.api import ERROR_CODES
        path = os.path.join(REPO_ROOT, "docs", "http_api.md")
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for code, status in ERROR_CODES.items():
            assert f"`{code}`" in text, \
                f"error code {code!r} missing from http_api.md"
            assert re.search(rf"`{code}`\s*\|\s*{status}\b", text), \
                f"{code} documented with wrong status (expect {status})"
