"""Parity suite: the graph-free inference engine vs the autograd oracle.

Per-layer kernels, the compiled encoder, and the end-to-end scoring path
must agree with the float64 ``Tensor`` implementation within the engine's
documented tolerance, with identical rankings wherever scores are not
float32-tied.  Also covers the vectorized input-assembly satellites
(``pad_batch``, segment ids) against per-row reference loops.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import (
    MODE_AUTOGRAD, MODE_FAST, InferenceEngine, default_inference_mode,
    resolve_inference_mode,
)
from repro.nn import (
    LayerNorm, MultiHeadSelfAttention, SCORE_TOLERANCE, Tensor, no_grad,
)
from repro.nn.inference import (
    Workspace, gelu_, layer_norm_, linear, multi_head_attention, softmax_,
)
from repro.plm import BertConfig, MiniBert, RelationalEncoder, WordTokenizer
from repro.plm.relational import segments_from_boundaries

KERNEL_TOL = 1e-5


@pytest.fixture()
def toy_model():
    tok = WordTokenizer([f"w{i}" for i in range(40)] + ["is", "a"])
    model = MiniBert(BertConfig(vocab_size=tok.vocab_size, dim=24,
                                num_layers=2, num_heads=3, ffn_dim=48,
                                max_len=16, seed=11))
    model.eval()
    return tok, model


class TestKernels:
    def test_linear_matches_tensor(self, rng):
        x = rng.standard_normal((5, 7, 8)).astype(np.float32)
        w = rng.standard_normal((8, 6)).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        ref = Tensor(x.astype(np.float64)) @ Tensor(w.astype(np.float64)) \
            + Tensor(b.astype(np.float64))
        got = linear(x, w, b)
        assert np.abs(got - ref.data).max() < KERNEL_TOL

    def test_linear_out_buffer(self, rng):
        x = rng.standard_normal((4, 8)).astype(np.float32)
        w = rng.standard_normal((8, 3)).astype(np.float32)
        out = np.empty((4, 3), dtype=np.float32)
        result = linear(x, w, None, out=out)
        assert result is out
        assert np.allclose(out, x @ w)

    def test_gelu_matches_tensor(self, rng):
        x = rng.standard_normal((6, 10)).astype(np.float32)
        ref = Tensor(x.astype(np.float64)).gelu().data
        got = gelu_(x.copy())
        assert np.abs(got - ref).max() < KERNEL_TOL

    def test_gelu_workspace_reuse(self, rng):
        ws = Workspace()
        x = rng.standard_normal((6, 10)).astype(np.float32)
        first = gelu_(x.copy(), ws, "g")
        second = gelu_(x.copy(), ws, "g")
        np.testing.assert_array_equal(first, second)

    def test_layer_norm_matches_module(self, rng):
        norm = LayerNorm(12)
        x = rng.standard_normal((5, 9, 12))
        ref = norm(Tensor(x)).data
        got = layer_norm_(x.astype(np.float32).copy(),
                          norm.gamma.data.astype(np.float32),
                          norm.beta.data.astype(np.float32), norm.eps)
        assert np.abs(got - ref).max() < KERNEL_TOL

    def test_layer_norm_non_contiguous_fallback(self, rng):
        norm = LayerNorm(8)
        base = rng.standard_normal((8, 5)).astype(np.float32)
        x = base.T  # non-contiguous view, shape (5, 8)
        assert not x.flags.c_contiguous
        ref = norm(Tensor(np.asarray(x, dtype=np.float64))).data
        got = layer_norm_(x, norm.gamma.data.astype(np.float32),
                          norm.beta.data.astype(np.float32), norm.eps)
        assert np.abs(got - ref).max() < KERNEL_TOL

    def test_softmax_matches_tensor(self, rng):
        x = rng.standard_normal((3, 4, 7)).astype(np.float32) * 5
        ref = Tensor(x.astype(np.float64)).softmax(axis=-1).data
        got = softmax_(x.copy())
        assert np.abs(got - ref).max() < KERNEL_TOL
        assert np.allclose(got.sum(axis=-1), 1.0, atol=1e-5)

    def test_attention_matches_module(self, rng):
        module = MultiHeadSelfAttention(dim=12, num_heads=3, rng=rng)
        module.eval()
        x = rng.standard_normal((4, 6, 12))
        mask = np.ones((4, 6))
        mask[:, 4:] = 0.0
        with no_grad():
            ref = module(Tensor(x), mask).data
        w_qkv = np.concatenate([module.query.weight.data,
                                module.key.weight.data,
                                module.value.weight.data],
                               axis=1).astype(np.float32)
        b_qkv = np.concatenate([module.query.bias.data,
                                module.key.bias.data,
                                module.value.bias.data]).astype(np.float32)
        bias = ((1.0 - mask) * -1e9).astype(np.float32)
        got = multi_head_attention(
            x.astype(np.float32), w_qkv, b_qkv,
            module.out.weight.data.astype(np.float32),
            module.out.bias.data.astype(np.float32),
            num_heads=3, mask_bias=bias, workspace=Workspace(), site="t",
            scale=1.0 / np.sqrt(module.head_dim))
        assert np.abs(got - ref).max() < KERNEL_TOL


class TestCompiledBert:
    def test_encode_parity_with_mask_and_segments(self, toy_model, rng):
        tok, model = toy_model
        compiled = model.compile_inference()
        ids = rng.integers(0, tok.vocab_size, size=(6, 10))
        mask = (rng.random((6, 10)) < 0.7).astype(np.float64)
        mask[:, 0] = 1.0
        segments = (rng.random((6, 10)) < 0.5).astype(np.int64)
        with no_grad():
            ref = model.encode(ids, mask, segments).data
        got = compiled.encode(ids, mask, segments)
        assert got.dtype == np.float32
        assert np.abs(got - ref).max() < KERNEL_TOL

    def test_encode_parity_without_mask(self, toy_model, rng):
        tok, model = toy_model
        compiled = model.compile_inference()
        ids = rng.integers(0, tok.vocab_size, size=(3, 8))
        with no_grad():
            ref = model.encode(ids).data
        got = compiled.encode(ids)
        assert np.abs(got - ref).max() < KERNEL_TOL

    def test_cls_representation_is_detached_copy(self, toy_model, rng):
        tok, model = toy_model
        compiled = model.compile_inference()
        ids = rng.integers(0, tok.vocab_size, size=(2, 6))
        first = compiled.cls_representation(ids)
        snapshot = first.copy()
        other = rng.integers(0, tok.vocab_size, size=(2, 6))
        compiled.encode(other)  # overwrites the shared workspace buffer
        np.testing.assert_array_equal(first, snapshot)

    def test_padding_width_invariance(self, toy_model, rng):
        """Extra padding must not change real-token outputs."""
        tok, model = toy_model
        compiled = model.compile_inference()
        ids = rng.integers(5, tok.vocab_size, size=(3, 6))
        narrow = compiled.cls_representation(
            ids, np.ones((3, 6)), np.zeros((3, 6), dtype=np.int64))
        wide_ids = np.full((3, 12), tok.pad_id, dtype=np.int64)
        wide_ids[:, :6] = ids
        mask = np.zeros((3, 12))
        mask[:, :6] = 1.0
        wide = compiled.cls_representation(
            wide_ids, mask, np.zeros((3, 12), dtype=np.int64))
        assert np.abs(narrow - wide).max() < KERNEL_TOL

    def test_rejects_bad_shapes(self, toy_model):
        _tok, model = toy_model
        compiled = model.compile_inference()
        with pytest.raises(ValueError):
            compiled.encode(np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            compiled.encode(np.zeros((1, model.config.max_len + 1),
                                     dtype=np.int64))


class TestVectorizedAssembly:
    def test_pad_batch_matches_reference_loop(self, rng):
        tok = WordTokenizer([f"w{i}" for i in range(30)])
        sequences = [list(rng.integers(0, 30, size=rng.integers(1, 9)))
                     for _ in range(17)]
        for max_len in (None, 5):
            ids, mask = tok.pad_batch(sequences, max_len=max_len)
            width = max(len(s) for s in sequences)
            if max_len is not None:
                width = min(width, max_len)
            ref_ids = np.full((len(sequences), width), tok.pad_id,
                              dtype=np.int64)
            ref_mask = np.zeros((len(sequences), width))
            for row, seq in enumerate(sequences):
                seq = seq[:width]
                ref_ids[row, :len(seq)] = seq
                ref_mask[row, :len(seq)] = 1.0
            np.testing.assert_array_equal(ids, ref_ids)
            np.testing.assert_array_equal(mask, ref_mask)

    def test_segments_from_boundaries_matches_loop(self, rng):
        lengths = rng.integers(1, 12, size=20)
        boundaries = np.array([rng.integers(0, l + 1) for l in lengths])
        width = int(lengths.max()) + 2
        got = segments_from_boundaries(boundaries, lengths, width)
        ref = np.zeros((20, width), dtype=np.int64)
        for row in range(20):
            seg = [0] * boundaries[row] \
                + [1] * (lengths[row] - boundaries[row])
            ref[row, :len(seg)] = seg
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("use_template", [True, False])
    def test_encode_pairs_segments_match_pair_ids(self, toy_model,
                                                  use_template):
        tok, model = toy_model
        encoder = RelationalEncoder(model, tok, use_template=use_template)
        pairs = [("w1 w2", "w3"), ("w4", "w5 w6 w7 w8 w9 w10 w11 w12 w13"),
                 ("w2", "w2")]
        with no_grad():
            reps = encoder.encode_pairs(pairs)
        assert reps.shape == (3, model.config.dim)
        # The vectorized segment rectangle must equal the per-row fill.
        encoded = [encoder.pair_ids(q, i) for q, i in pairs]
        ids, _mask = tok.pad_batch([ids for ids, _ in encoded])
        ref = np.zeros_like(ids)
        for row, (_, seg) in enumerate(encoded):
            ref[row, :len(seg)] = seg
        got = segments_from_boundaries(
            np.array([len(s) - sum(s) for _, s in encoded]),
            np.array([len(s) for _, s in encoded]), ids.shape[1])
        np.testing.assert_array_equal(got, ref)


def ranking_stable(reference: np.ndarray, fast: np.ndarray,
                   tol: float) -> bool:
    """Orders must match except across float32-tied adjacent scores."""
    order = np.argsort(-reference, kind="stable")
    fast_sorted = fast[order]
    violations = np.diff(fast_sorted) > 2 * tol
    return not violations.any()


class TestEngineEndToEnd:
    @pytest.fixture()
    def scored_pairs(self, tiny_fitted_pipeline, small_world):
        pool = {s.pair for s in tiny_fitted_pipeline.dataset.all_pairs}
        pool.update(sorted(small_world.existing_taxonomy.edges())[:20])
        return sorted(pool)[:80]

    def test_scores_match_autograd_oracle(self, tiny_fitted_pipeline,
                                          scored_pairs):
        detector = tiny_fitted_pipeline.detector
        reference = detector._predict_autograd(scored_pairs)
        engine = detector.compile_inference()
        fast = engine.score_pairs(scored_pairs)
        assert fast.dtype == np.float64
        assert np.abs(reference - fast).max() < SCORE_TOLERANCE
        assert ranking_stable(reference, fast, SCORE_TOLERANCE)

    def test_topk_identical(self, tiny_fitted_pipeline, scored_pairs):
        detector = tiny_fitted_pipeline.detector
        reference = detector._predict_autograd(scored_pairs)
        fast = detector.compile_inference().score_pairs(scored_pairs)
        k = 10
        top_ref = np.argsort(-reference, kind="stable")[:k]
        top_fast = np.argsort(-fast, kind="stable")[:k]
        np.testing.assert_array_equal(top_ref, top_fast)

    def test_deterministic_across_calls(self, tiny_fitted_pipeline,
                                        scored_pairs):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        np.testing.assert_array_equal(engine.score_pairs(scored_pairs),
                                      engine.score_pairs(scored_pairs))

    def test_concurrent_scoring_is_serialised(self, tiny_fitted_pipeline,
                                              scored_pairs):
        """Shared scratch buffers must not corrupt concurrent callers."""
        import threading

        engine = tiny_fitted_pipeline.detector.compile_inference()
        expected = engine.score_pairs(scored_pairs)
        mismatches: list[int] = []

        def worker():
            for _ in range(5):
                got = engine.score_pairs(scored_pairs)
                if not np.array_equal(got, expected):
                    mismatches.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not mismatches

    def test_batch_size_invariance(self, tiny_fitted_pipeline,
                                   scored_pairs):
        """Bucketing/chunking must not shift scores beyond tolerance."""
        detector = tiny_fitted_pipeline.detector
        engine = detector.compile_inference()
        whole = engine.score_pairs(scored_pairs)
        small = InferenceEngine(detector, max_batch=7)
        chunked = small.score_pairs(scored_pairs)
        assert np.abs(whole - chunked).max() < SCORE_TOLERANCE

    def test_unknown_concepts_zero_structural_fallback(
            self, tiny_fitted_pipeline):
        pairs = [("martian fruit", "asteroid jam")]
        engine = tiny_fitted_pipeline.detector.compile_inference()
        reference = tiny_fitted_pipeline.detector._predict_autograd(pairs)
        assert np.abs(engine.score_pairs(pairs)
                      - reference).max() < SCORE_TOLERANCE

    def test_empty_pairs(self, tiny_fitted_pipeline):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        assert engine.score_pairs([]).shape == (0,)

    def test_pair_token_ids_match_relational(self, tiny_fitted_pipeline):
        relational = tiny_fitted_pipeline.relational
        engine = tiny_fitted_pipeline.detector.compile_inference()
        long_concept = " ".join(["fruit"] * 40)  # forces truncation
        pairs = [("fruit", "apple"), (long_concept, "apple"),
                 ("fruit", long_concept)]
        for query, item in pairs:
            ref_ids, ref_segments = relational.pair_ids(query, item)
            ids, boundary = engine.pair_token_ids(query, item)
            assert ids == ref_ids
            assert boundary == len(ref_segments) - sum(ref_segments)

    def test_stats_accumulate(self, tiny_fitted_pipeline, scored_pairs):
        engine = InferenceEngine(tiny_fitted_pipeline.detector)
        engine.score_pairs(scored_pairs[:10])
        engine.score_pairs(scored_pairs[:5])
        assert engine.stats.batches == 2
        assert engine.stats.pairs_scored == 15
        assert engine.stats.sequences_encoded == 15
        assert engine.stats.dtype == "float32"
        assert engine.stats.as_dict()["pairs_scored"] == 15

    def test_concept_embedding_cache(self, tiny_fitted_pipeline):
        relational = tiny_fitted_pipeline.relational
        engine = InferenceEngine(tiny_fitted_pipeline.detector)
        concepts = ["fruit", "apple", "fruit", "banana", "apple"]
        got = engine.encode_concepts(concepts)
        with no_grad():
            ref = relational.encode_concepts(concepts).data
        assert np.abs(got - ref).max() < SCORE_TOLERANCE
        # First call encodes each unique concept exactly once...
        assert engine.stats.concepts_encoded == 3
        # ...and repeat calls are pure cache hits.
        engine.encode_concepts(["fruit", "apple"])
        assert engine.stats.concepts_encoded == 3
        assert engine.stats.concept_cache_hits == 2

    def test_concept_mean_pool_parity(self, tiny_fitted_pipeline):
        relational = tiny_fitted_pipeline.relational
        engine = InferenceEngine(tiny_fitted_pipeline.detector)
        concepts = ["fruit", "green apple"]
        got = engine.encode_concepts(concepts, pool="mean")
        with no_grad():
            ref = relational.encode_concepts(concepts, pool="mean").data
        assert np.abs(got - ref).max() < SCORE_TOLERANCE

    def test_structural_gather_matches_autograd(self, tiny_fitted_pipeline):
        detector = tiny_fitted_pipeline.detector
        structural = detector.structural
        engine = InferenceEngine(detector)
        nodes = structural.export_arrays()["nodes"]
        pairs = [(nodes[0], nodes[1]), (nodes[2], "unknown concept"),
                 ("unknown concept", nodes[0])]
        with no_grad():
            ref = structural.pair_representation(pairs).data
        out = np.empty((len(pairs), structural.out_dim), dtype=np.float32)
        engine._structural_features(pairs, out)
        assert np.abs(out - ref).max() < SCORE_TOLERANCE


class TestModeSelection:
    def test_default_mode_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_INFERENCE", raising=False)
        assert default_inference_mode() == MODE_FAST

    def test_env_selects_autograd(self, monkeypatch):
        monkeypatch.setenv("REPRO_INFERENCE", "autograd")
        assert default_inference_mode() == MODE_AUTOGRAD

    def test_env_aliases_and_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_INFERENCE", "FLOAT64")
        assert default_inference_mode() == MODE_AUTOGRAD
        monkeypatch.setenv("REPRO_INFERENCE", "warp-drive")
        assert default_inference_mode() == MODE_FAST

    def test_resolve_rejects_unknown_explicit_mode(self):
        with pytest.raises(ValueError):
            resolve_inference_mode("warp-drive")

    def test_detector_override_beats_env(self, tiny_fitted_pipeline,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_INFERENCE", "fast")
        detector = tiny_fitted_pipeline.detector
        detector.inference_mode = "autograd"
        try:
            pairs = [("fruit", "apple")]
            probs = detector.predict_proba(pairs)
            reference = detector._predict_autograd(pairs)
            np.testing.assert_array_equal(probs, reference)
        finally:
            detector.inference_mode = None

    def test_pipeline_set_inference_mode_validates(self,
                                                   tiny_fitted_pipeline):
        with pytest.raises(ValueError):
            tiny_fitted_pipeline.set_inference_mode("warp-drive")
        tiny_fitted_pipeline.set_inference_mode("autograd")
        assert tiny_fitted_pipeline.detector.inference_mode == "autograd"
        tiny_fitted_pipeline.set_inference_mode(None)
        assert tiny_fitted_pipeline.detector.inference_mode is None

    def test_predict_proba_dispatches_to_engine(self, tiny_fitted_pipeline,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_INFERENCE", "fast")
        detector = tiny_fitted_pipeline.detector
        probs = detector.predict_proba([("fruit", "apple")])
        assert detector.inference_engine is not None
        engine_probs = detector.inference_engine.score_pairs(
            [("fruit", "apple")])
        np.testing.assert_array_equal(probs, engine_probs)
