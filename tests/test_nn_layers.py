"""Layer and Module-infrastructure tests."""

import numpy as np
import pytest

from repro.nn import (
    Dropout, Embedding, GELU, LayerNorm, Linear, Module, Parameter, ReLU,
    Sequential, Sigmoid, Tanh, Tensor,
)


class TestModuleInfrastructure:
    def test_parameter_collection_recurses(self, rng):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 3, rng=rng)
                self.stack = [Linear(3, 3, rng=rng), Linear(3, 1, rng=rng)]
                self.table = {"x": Linear(1, 1, rng=rng)}

        outer = Outer()
        # 4 Linears, each weight+bias
        assert len(outer.parameters()) == 8

    def test_parameters_deduplicated_when_shared(self, rng):
        shared = Linear(2, 2, rng=rng)

        class Shared(Module):
            def __init__(self):
                super().__init__()
                self.a = shared
                self.b = shared

        assert len(Shared().parameters()) == 2

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))
        seq.eval()
        assert not seq.modules[1].training
        seq.train()
        assert seq.modules[1].training

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng=rng)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        layer = Linear(3, 4, rng=rng)
        state = layer.state_dict()
        clone = Linear(3, 4, rng=np.random.default_rng(99))
        assert not np.allclose(clone.weight.data, layer.weight.data)
        clone.load_state_dict(state)
        assert np.allclose(clone.weight.data, layer.weight.data)

    def test_load_state_dict_shape_mismatch(self, rng):
        layer = Linear(3, 4, rng=rng)
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_load_state_dict_key_mismatch(self, rng):
        layer = Linear(3, 4, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nope": np.zeros(1)})

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng=rng)
        assert layer.num_parameters() == 3 * 4 + 4


class TestLinear:
    def test_forward_shape_and_value(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(5, 3))
        out = layer(Tensor(x))
        assert out.shape == (5, 2)
        assert np.allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestEmbedding:
    def test_lookup(self, rng):
        emb = Embedding(10, 4, rng=rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb(ids)
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(5, 3, rng=rng)
        emb(np.array([1, 1, 2])).sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestLayerNorm:
    def test_output_normalised(self, rng):
        norm = LayerNorm(8)
        out = norm(Tensor(rng.normal(2.0, 3.0, size=(4, 8)))).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self, rng):
        norm = LayerNorm(4)
        norm.gamma.data = np.full(4, 2.0)
        norm.beta.data = np.full(4, 1.0)
        out = norm(Tensor(rng.normal(size=(2, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)


class TestDropout:
    def test_eval_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = rng.normal(size=(3, 3))
        assert np.allclose(drop(Tensor(x)).data, x)

    def test_train_masks_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((100, 100))
        out = drop(Tensor(x)).data
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_rate_identity_in_train(self, rng):
        drop = Dropout(0.0, rng=rng)
        x = rng.normal(size=(3, 3))
        assert np.allclose(drop(Tensor(x)).data, x)


class TestActivationsAndSequential:
    def test_activation_modules(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        assert np.allclose(ReLU()(x).data, np.maximum(x.data, 0))
        assert np.allclose(Tanh()(x).data, np.tanh(x.data))
        assert np.allclose(Sigmoid()(x).data, 1 / (1 + np.exp(-x.data)))
        assert GELU()(x).shape == (2, 3)

    def test_sequential_order(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), ReLU())
        out = seq(Tensor(np.ones((1, 2))))
        assert np.all(out.data >= 0)

    def test_parameter_is_tensor_with_grad(self):
        p = Parameter(np.zeros(3))
        assert isinstance(p, Tensor)
        assert p.requires_grad
