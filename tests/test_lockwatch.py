"""The runtime half of ``repro.devtools``: the lockwatch sanitizer.

These tests drive private :class:`LockWatcher` instances (never the
session-global one a ``REPRO_LOCKWATCH=1`` run installs), so they work
identically with and without the sanitizer enabled for the session —
and the synthetic inversions they provoke cannot trip the conftest
session-teardown assertion.
"""

import threading
import time

import pytest

from repro.devtools import lockwatch
from repro.devtools.lockwatch import (
    LockWatcher, WatchedLock, WatchedRLock, guard_class,
)


@pytest.fixture()
def watcher():
    return LockWatcher(long_hold_seconds=60.0)


def make_locks(watcher, *sites):
    return [WatchedLock(watcher, site) for site in sites]


class TestInversionDetection:
    def test_ab_then_ba_is_reported(self, watcher):
        """The proof the detector fires: a synthetic A→B / B→A pair."""
        lock_a, lock_b = make_locks(watcher, "a.py:1", "b.py:1")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        report = watcher.report()
        assert len(report["inversions"]) == 1
        [inversion] = report["inversions"]
        assert {inversion["holding"], inversion["acquiring"]} == \
            {"a.py:1", "b.py:1"}
        assert "lock-order inversion" in inversion["message"]

    def test_near_miss_consistent_order_is_clean(self, watcher):
        lock_a, lock_b = make_locks(watcher, "a.py:1", "b.py:1")
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert watcher.report()["inversions"] == []

    def test_detected_across_threads(self, watcher):
        """The graph is global: each thread uses one (consistent) order."""
        lock_a, lock_b = make_locks(watcher, "a.py:1", "b.py:1")

        def forward():
            with lock_a:
                with lock_b:
                    pass

        def backward():
            with lock_b:
                with lock_a:
                    pass

        first = threading.Thread(target=forward)
        first.start()
        first.join()
        second = threading.Thread(target=backward)
        second.start()
        second.join()
        assert len(watcher.report()["inversions"]) == 1

    def test_transitive_cycle_is_reported(self, watcher):
        lock_a, lock_b, lock_c = make_locks(watcher, "a.py:1", "b.py:1",
                                            "c.py:1")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_c:
                pass
        with lock_c:
            with lock_a:  # closes the a -> b -> c cycle
                pass
        assert len(watcher.report()["inversions"]) == 1

    def test_deduplicated_per_site_pair(self, watcher):
        lock_a, lock_b = make_locks(watcher, "a.py:1", "b.py:1")
        for _ in range(5):
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with lock_a:
                    pass
        assert len(watcher.report()["inversions"]) == 1

    def test_same_creation_site_pair_is_exempt(self, watcher):
        """Two instances of one lock class are not an ordering."""
        shard_a, shard_b = make_locks(watcher, "pool.py:7", "pool.py:7")
        with shard_a:
            with shard_b:
                pass
        with shard_b:
            with shard_a:
                pass
        assert watcher.report()["inversions"] == []

    def test_reentrant_rlock_adds_no_self_edges(self, watcher):
        outer = WatchedRLock(watcher, "r.py:1")
        with outer:
            with outer:
                pass
        assert watcher.report()["inversions"] == []

    def test_reset_clears_findings(self, watcher):
        lock_a, lock_b = make_locks(watcher, "a.py:1", "b.py:1")
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        watcher.reset()
        assert watcher.report() == {"inversions": [], "long_holds": [],
                                    "guard_violations": []}


class TestLongHolds:
    def test_long_hold_reported(self):
        watcher = LockWatcher(long_hold_seconds=0.02)
        lock = WatchedLock(watcher, "slow.py:1")
        with lock:
            time.sleep(0.05)
        [hold] = watcher.report()["long_holds"]
        assert hold["lock"] == "slow.py:1"
        assert hold["seconds"] >= 0.02

    def test_quick_hold_not_reported(self):
        watcher = LockWatcher(long_hold_seconds=0.5)
        lock = WatchedLock(watcher, "quick.py:1")
        with lock:
            pass
        assert watcher.report()["long_holds"] == []


class TestWatchedLockSemantics:
    def test_lock_is_actually_exclusive(self, watcher):
        lock = WatchedLock(watcher, "x.py:1")
        assert lock.acquire()
        assert lock.locked()
        assert lock.held_by_current_thread()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()
        assert not lock.held_by_current_thread()

    def test_rlock_ownership_tracking(self, watcher):
        lock = WatchedRLock(watcher, "r.py:1")
        with lock:
            with lock:
                assert lock.held_by_current_thread()
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()

    def test_condition_over_watched_rlock(self, watcher):
        """Condition wait/notify releases and restores every level."""
        lock = WatchedRLock(watcher, "r.py:1")
        condition = threading.Condition(lock)
        ready = []

        def producer():
            with condition:
                ready.append(True)
                condition.notify_all()

        with condition:
            threading.Thread(target=producer).start()
            assert condition.wait_for(lambda: ready, timeout=5.0)
            # ownership mirror restored after the wait round-trip
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()


class TestGuardedAttributes:
    def _guarded_store(self, watcher):
        class Store:
            def __init__(self):
                self._lock = WatchedLock(watcher, "store.py:1")
                self._value = 0

        guard_class(Store, {"_value": "_lock"}, watcher=watcher)
        return Store

    def test_violation_recorded_on_unlocked_rebind(self, watcher):
        store = self._guarded_store(watcher)()
        store._value = 1  # rebind without the lock
        [violation] = watcher.report()["guard_violations"]
        assert violation["class"] == "Store"
        assert violation["attr"] == "_value"
        assert violation["lock"] == "_lock"

    def test_near_miss_locked_rebind_and_init_are_clean(self, watcher):
        store = self._guarded_store(watcher)()  # __init__ binding exempt
        with store._lock:
            store._value = 1
        assert watcher.report()["guard_violations"] == []

    def test_guard_class_is_idempotent(self, watcher):
        store_cls = self._guarded_store(watcher)
        setattr_before = store_cls.__setattr__
        guard_class(store_cls, {"_value": "_lock"}, watcher=watcher)
        assert store_cls.__setattr__ is setattr_before

    def test_unguarded_attribute_is_free(self, watcher):
        store = self._guarded_store(watcher)()
        store._free = "anything"
        assert watcher.report()["guard_violations"] == []


class TestInstall:
    def test_install_uninstall_round_trip(self):
        already = lockwatch.installed()
        if already is not None:
            # REPRO_LOCKWATCH session: only assert idempotence — do not
            # uninstall the session's watcher out from under the suite.
            assert lockwatch.install() is already
            return
        original_lock = threading.Lock
        watcher = lockwatch.install()
        try:
            assert lockwatch.install() is watcher  # idempotent
            assert lockwatch.installed() is watcher
            lock = threading.Lock()
            assert isinstance(lock, WatchedLock)
            assert isinstance(threading.RLock(), WatchedRLock)
            with lock:
                assert lock.held_by_current_thread()
        finally:
            lockwatch.uninstall()
        assert lockwatch.installed() is None
        assert threading.Lock is original_lock
        assert not isinstance(threading.Lock(), WatchedLock)

    def test_module_report_without_install_is_empty(self):
        if lockwatch.installed() is not None:
            pytest.skip("session watcher active")
        assert lockwatch.report() == {"inversions": [], "long_holds": [],
                                      "guard_violations": []}
