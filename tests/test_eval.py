"""Evaluation tests: metrics, term statistics, annotation, user study."""

import numpy as np
import pytest

from repro.core import LabeledPair
from repro.eval import (
    LexicalSearchEngine, MajorityVotePanel, OracleAnnotator, PRF,
    QueryRewritingStudy, accuracy, ancestor_f1, ancestor_pairs,
    compute_term_stats, edge_f1, evaluate_on_dataset, extraction_accuracy,
    manual_precision, taxonomy_statistics, uncovered_node_analysis,
)
from repro.taxonomy import Taxonomy


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) \
            == pytest.approx(2 / 3)
        assert accuracy(np.array([]), np.array([])) == 0.0
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))

    def test_prf_f1(self):
        assert PRF(0.5, 0.5).f1 == pytest.approx(0.5)
        assert PRF(0.0, 0.0).f1 == 0.0

    def test_edge_f1_hand_computed(self):
        predicted = {("a", "b"), ("a", "c")}
        gold = {("a", "b"), ("a", "d")}
        prf = edge_f1(predicted, gold)
        assert prf.precision == pytest.approx(0.5)
        assert prf.recall == pytest.approx(0.5)

    def test_edge_f1_empty_predictions(self):
        prf = edge_f1(set(), {("a", "b")})
        assert prf.precision == 0.0 and prf.recall == 0.0

    def test_ancestor_pairs(self):
        t = Taxonomy(edges=[("a", "b"), ("b", "c")])
        closure = ancestor_pairs(t)
        assert closure == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_ancestor_f1_credits_grandparent(self):
        t = Taxonomy(edges=[("a", "b"), ("b", "c")])
        closure = ancestor_pairs(t)
        gold_edges = {("b", "c")}
        prf = ancestor_f1({("a", "c")}, closure, gold_edges)
        assert prf.precision == 1.0
        assert prf.recall == 1.0  # c attached under a true ancestor

    def test_ancestor_f1_without_gold_edges(self):
        t = Taxonomy(edges=[("a", "b"), ("b", "c")])
        closure = ancestor_pairs(t)
        prf = ancestor_f1({("a", "b")}, closure)
        assert prf.precision == 1.0
        assert prf.recall == pytest.approx(1 / 3)

    def test_evaluate_on_dataset(self):
        samples = [LabeledPair("a", "b", 1, "other"),
                   LabeledPair("b", "a", 0, "shuffle"),
                   LabeledPair("a", "c", 1, "other")]
        always_yes = lambda pairs: np.ones(len(pairs), dtype=int)
        metrics = evaluate_on_dataset(always_yes, samples)
        assert metrics["accuracy"] == pytest.approx(2 / 3)
        assert metrics["edge_precision"] == pytest.approx(2 / 3)
        assert metrics["edge_recall"] == 1.0

    def test_evaluate_with_closure_credit(self):
        samples = [LabeledPair("a", "c", 0, "replace")]  # labelled negative
        closure = {("a", "c")}  # but the closure knows it is an ancestor
        always_yes = lambda pairs: np.ones(len(pairs), dtype=int)
        metrics = evaluate_on_dataset(always_yes, samples, closure)
        assert metrics["ancestor_precision"] == 1.0
        assert metrics["edge_precision"] == 0.0


class TestTermStats:
    def test_table1_columns(self, small_world, small_click_log):
        stats = compute_term_stats(small_world.existing_taxonomy,
                                   small_world.vocabulary, small_click_log)
        assert stats.num_items > 0
        assert 0 < stats.num_nodes <= small_world.existing_taxonomy.num_nodes
        assert 0 < stats.coverage_node <= 100
        assert stats.num_newedge > 0
        assert stats.num_concepts > 0  # new concepts surface in clicks
        assert stats.num_iothers > 0

    def test_table2_statistics(self, small_world):
        stats = taxonomy_statistics(small_world.full_taxonomy)
        assert stats["num_edges"] == stats["num_head_edges"] \
            + stats["num_other_edges"]
        assert stats["depth"] == small_world.full_taxonomy.depth()

    def test_uncovered_analysis_buckets_sum(self, small_world,
                                            small_click_log):
        analysis = uncovered_node_analysis(small_world.full_taxonomy,
                                           small_click_log)
        total = analysis["leaf"] + analysis["no_query"] + analysis["other"]
        assert total == pytest.approx(100.0)
        assert analysis["leaf"] > 50  # paper Fig. 3: leaves dominate

    def test_extraction_accuracy_range(self, small_world, small_click_log):
        result = extraction_accuracy(small_world, small_click_log,
                                     num_queries=5, seed=1)
        assert 0 <= result["accuracy"] <= 100
        assert result["num_newedge"] > 0


class TestAnnotation:
    def test_perfect_oracle(self, small_world):
        judge = OracleAnnotator(small_world, error_rate=0.0)
        parent, child = next(iter(small_world.full_taxonomy.edges()))
        assert judge.judge(parent, child)
        assert not judge.judge(child, parent)

    def test_error_rate_flips_sometimes(self, small_world):
        judge = OracleAnnotator(small_world, error_rate=0.4, seed=3)
        parent, child = next(iter(small_world.full_taxonomy.edges()))
        votes = [judge.judge(parent, child) for _ in range(200)]
        assert 0.4 < np.mean(votes) < 0.8

    def test_error_rate_validation(self, small_world):
        with pytest.raises(ValueError):
            OracleAnnotator(small_world, error_rate=0.6)

    def test_majority_panel_more_reliable_than_judge(self, small_world):
        panel = MajorityVotePanel(small_world, error_rate=0.2, seed=0)
        parent, child = next(iter(small_world.full_taxonomy.edges()))
        approvals = sum(panel.approve(parent, child) for _ in range(100))
        assert approvals > 85  # 3-way majority beats the 80% single judge

    def test_panel_needs_odd_judges(self, small_world):
        with pytest.raises(ValueError):
            MajorityVotePanel(small_world, num_judges=2)

    def test_manual_precision_oracle_bounds(self, small_world):
        edges = list(small_world.full_taxonomy.edges())[:30]
        precision = manual_precision(small_world, edges, seed=0,
                                     error_rate=0.0)
        assert precision == 100.0
        reversed_edges = [(c, p) for p, c in edges]
        assert manual_precision(small_world, reversed_edges, seed=0,
                                error_rate=0.0) == 0.0
        assert manual_precision(small_world, [], seed=0) == 0.0


class TestQueryRewriting:
    def test_search_engine_ranks_by_overlap(self):
        engine = LexicalSearchEngine([
            "fresh rye bread", "rye bread combo", "plain soup"])
        results = engine.search("rye bread", top_k=2)
        assert len(results) == 2
        assert "plain soup" not in results
        assert engine.num_items == 3

    def test_search_no_match(self):
        engine = LexicalSearchEngine(["plain soup"])
        assert engine.search("quantum physics") == []

    def test_study_runs_and_improves_or_ties(self, small_world,
                                             small_click_log):
        study = QueryRewritingStudy(small_world, small_click_log,
                                    small_world.full_taxonomy, seed=0)
        result = study.run(num_queries=25)
        assert result.num_queries > 0
        assert result.rewritten_relevance >= result.original_relevance
        assert 0 <= result.original_relevance <= 100

    def test_hypernym_lookup(self, small_world, small_click_log):
        study = QueryRewritingStudy(small_world, small_click_log,
                                    small_world.full_taxonomy, seed=0)
        # a known child of a category resolves to a non-root hypernym
        parent, child = next(
            (p, c) for p, c in small_world.full_taxonomy.edges()
            if p != small_world.root)
        assert study.hypernym_of(child) is not None
        assert study.hypernym_of("unknown thing") is None
