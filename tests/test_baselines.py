"""Baseline method tests (Table V comparison systems)."""

import numpy as np
import pytest

from repro.baselines import (
    DistanceNeighborBaseline, DistanceParentBaseline, KBHeadwordBaseline,
    RandomBaseline, SimulatedKnowledgeBase, SnowballBaseline, STEAMBaseline,
    SubstrBaseline, TMNBaseline, TaxoExpanBaseline, VanillaBertBaseline,
)
from repro.core import LabeledPair
from repro.taxonomy import Taxonomy


@pytest.fixture()
def toy_taxonomy():
    t = Taxonomy()
    t.add_edge("food", "bread")
    t.add_edge("bread", "rye bread")
    t.add_edge("bread", "toast")
    t.add_edge("food", "soup")
    return t


@pytest.fixture()
def toy_dataset():
    return [
        LabeledPair("bread", "rye bread", 1, "head"),
        LabeledPair("bread", "toast", 1, "other"),
        LabeledPair("rye bread", "bread", 0, "shuffle"),
        LabeledPair("bread", "soup", 0, "replace"),
    ]


@pytest.fixture()
def toy_embeddings(rng):
    names = ["food", "bread", "rye bread", "toast", "soup"]
    base = rng.normal(size=8)
    emb = {}
    for i, name in enumerate(names):
        # bread-family vectors correlate; soup diverges
        if "bread" in name or name == "toast":
            emb[name] = base + rng.normal(scale=0.1, size=8)
        else:
            emb[name] = rng.normal(size=8)
    return emb


class TestRuleBaselines:
    def test_random_probabilities(self):
        baseline = RandomBaseline(seed=0)
        probs = baseline.predict_proba([("a", "b")] * 100)
        assert np.all((probs >= 0) & (probs <= 1))
        assert 0.3 < probs.mean() < 0.7
        assert 0.3 < baseline.predict([("a", "b")] * 100).mean() < 0.7

    def test_substr(self):
        baseline = SubstrBaseline()
        probs = baseline.predict_proba(
            [("bread", "rye bread"), ("bread", "toast"),
             ("rye bread", "bread")])
        assert probs.tolist() == [1.0, 0.0, 0.0]

    def test_kb_headword(self, toy_taxonomy):
        closure = {("bread", "rye bread"), ("bread", "toast")}
        kb = SimulatedKnowledgeBase(closure, coverage=1.0, seed=0)
        assert len(kb) == 2
        baseline = KBHeadwordBaseline(kb)
        probs = baseline.predict_proba(
            [("bread", "rye bread"),   # in KB + headword -> 1
             ("bread", "toast"),       # in KB, not headword -> 0
             ("soup", "rice soup")])   # headword, not in KB -> 0
        assert probs.tolist() == [1.0, 0.0, 0.0]

    def test_kb_coverage_bounds(self):
        with pytest.raises(ValueError):
            SimulatedKnowledgeBase(set(), coverage=1.5)
        assert len(SimulatedKnowledgeBase(set(), coverage=0.5)) == 0


class TestSnowball:
    def test_extracts_from_learned_patterns(self, toy_dataset):
        from repro.taxonomy import ConceptVocabulary
        vocab = ConceptVocabulary(["bread", "rye bread", "toast", "soup",
                                   "bagel"])
        corpus = (["the toast is my favourite kind of bread"] * 3
                  + ["the bagel is my favourite kind of bread"] * 3
                  + ["delivery was slow"] * 3)
        baseline = SnowballBaseline(corpus, vocab, min_pattern_count=2,
                                    seed=0)
        baseline.fit(toy_dataset)
        # seed pair (bread, toast) teaches the pattern; bagel is extracted
        probs = baseline.predict_proba([("bread", "bagel"),
                                        ("bread", "soup")])
        assert probs[0] == 1.0
        assert probs[1] == 0.0

    def test_no_patterns_no_extractions(self, toy_dataset):
        from repro.taxonomy import ConceptVocabulary
        vocab = ConceptVocabulary(["bread", "toast"])
        baseline = SnowballBaseline(["nothing here"], vocab, seed=0)
        baseline.fit(toy_dataset)
        assert baseline.predict_proba([("bread", "toast")])[0] == 0.0


class TestDistanceBaselines:
    def test_parent_scores_similarity(self, toy_embeddings, toy_dataset):
        baseline = DistanceParentBaseline(toy_embeddings)
        baseline.fit(toy_dataset)
        probs = baseline.predict_proba([("bread", "rye bread"),
                                        ("bread", "soup")])
        assert probs[0] > probs[1]

    def test_unknown_concept_scores_zero(self, toy_embeddings):
        baseline = DistanceParentBaseline(toy_embeddings)
        assert baseline.scores([("bread", "alien")])[0] == 0.0

    def test_neighbor_uses_children(self, toy_embeddings, toy_taxonomy,
                                    toy_dataset):
        baseline = DistanceNeighborBaseline(toy_embeddings, toy_taxonomy)
        baseline.fit(toy_dataset)
        probs = baseline.predict_proba([("bread", "rye bread"),
                                        ("bread", "soup")])
        assert probs[0] > probs[1]


class TestLearnedBaselines:
    def test_tmn_learns_toy_task(self, toy_embeddings, toy_dataset):
        baseline = TMNBaseline(toy_embeddings, epochs=60, lr=1e-2, seed=0)
        baseline.fit(toy_dataset)
        predictions = baseline.predict([s.pair for s in toy_dataset])
        labels = np.array([s.label for s in toy_dataset])
        assert (predictions == labels).mean() >= 0.75
        assert baseline.predict_proba([]).shape == (0,)

    def test_steam_learns_toy_task(self, toy_embeddings, toy_taxonomy,
                                   toy_dataset):
        baseline = STEAMBaseline(toy_embeddings, toy_taxonomy, epochs=80,
                                 lr=1e-2, seed=0)
        baseline.fit(toy_dataset)
        predictions = baseline.predict([s.pair for s in toy_dataset])
        labels = np.array([s.label for s in toy_dataset])
        assert (predictions == labels).mean() >= 0.75

    def test_taxoexpan_runs(self, toy_embeddings, toy_taxonomy,
                            toy_dataset):
        baseline = TaxoExpanBaseline(toy_taxonomy, toy_embeddings,
                                     epochs=10, seed=0)
        baseline.fit(toy_dataset)
        probs = baseline.predict_proba([("bread", "toast")])
        assert 0.0 <= probs[0] <= 1.0

    def test_vanilla_bert_runs(self, toy_dataset):
        corpus = ["the toast was nice", "bread is cheap",
                  "rye bread is a bread", "soup was hot"] * 5
        tokens = ["bread", "rye", "toast", "soup"]
        baseline = VanillaBertBaseline(corpus, tokens, dim=16,
                                       pretrain_steps=10, epochs=5, seed=0)
        baseline.fit(toy_dataset)
        probs = baseline.predict_proba([("bread", "toast")])
        assert 0.0 <= probs[0] <= 1.0
        assert baseline.predict_proba([]).shape == (0,)

    def test_repr(self):
        assert "Random" in repr(RandomBaseline())
