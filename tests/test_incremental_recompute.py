"""Recompute-on-ingest: the engine's live GNN propagation vs the oracle.

The compiled engine now owns the structural graph: it propagates node
embeddings itself and, when the serving layer attaches concepts, merges
the new edges and recomputes only the dirty k-hop frontier.  These tests
pin the contract from every layer:

* kernel/engine level — for every aggregator and hop count, the
  incrementally grown engine matches a *freshly built* autograd
  :class:`~repro.gnn.StructuralEncoder` over the engine's exported
  arrays to 1e-4, and a frontier recompute equals a full rebuild;
* serving level — after ``/expand`` or streamed ingest the very next
  score uses the updated structural features with no reload, in both
  single-process and sharded (2-worker) mode, including across worker
  respawns and hot reloads;
* storage level — the float16 node-matrix mode stays within its relaxed
  tolerance of the float32 engine.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.detector import DetectorConfig, HyponymyDetector
from repro.gnn import StructuralConfig, StructuralEncoder
from repro.infer import InferenceEngine, default_node_dtype
from repro.serving import (
    ArtifactBundle, BatchingScorer, ServiceConfig, ShardedScorerPool,
    TaxonomyService,
)

AGGREGATORS = ("gcn", "sage", "gat")


def _structural_detector(aggregator: str, num_hops: int, n: int = 30,
                         seed: int = 0):
    """A structural-only detector over a random weighted graph (no PLM,
    so engine compilation is instant)."""
    rng = np.random.default_rng(seed)
    adjacency = np.zeros((n, n))
    for _ in range(2 * n):
        u, v = rng.integers(0, n, 2)
        if u != v:
            weight = float(rng.uniform(0.5, 2.0))
            adjacency[u, v] = adjacency[v, u] = weight
    np.fill_diagonal(adjacency, 1.0)
    nodes = [f"c{i}" for i in range(n)]
    features = rng.normal(0.0, 0.3, size=(n, 16))
    encoder = StructuralEncoder.from_arrays(
        nodes, features, adjacency,
        StructuralConfig(hidden_dim=8, num_hops=num_hops,
                         aggregator=aggregator, position_dim=2))
    detector = HyponymyDetector(
        None, encoder,
        DetectorConfig(use_relational=False, use_structural=True))
    return encoder, detector


def _oracle_matrix(engine: InferenceEngine,
                   encoder: StructuralEncoder) -> np.ndarray:
    """Node embeddings of a from-scratch autograd encoder over the
    engine's live (incrementally grown) arrays."""
    arrays = engine.structural_arrays()
    oracle = StructuralEncoder.from_arrays(
        arrays["nodes"], arrays["features"], arrays["adjacency"],
        encoder.config)
    oracle.load_state_dict(encoder.state_dict())
    return oracle.node_embedding_matrix()


class TestEnginePropagation:
    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    @pytest.mark.parametrize("num_hops", (1, 2))
    def test_build_matches_autograd(self, aggregator, num_hops):
        encoder, detector = _structural_detector(aggregator, num_hops)
        engine = detector.compile_inference()
        delta = np.abs(encoder.node_embedding_matrix()
                       - engine.node_embedding_matrix()).max()
        assert delta < 1e-4

    @pytest.mark.parametrize("aggregator", AGGREGATORS)
    @pytest.mark.parametrize("num_hops", (1, 2))
    def test_incremental_matches_fresh_oracle(self, aggregator, num_hops):
        encoder, detector = _structural_detector(aggregator, num_hops)
        engine = detector.compile_inference()
        summary = engine.apply_attachments(
            [("c0", "brand new concept"), ("c3", "c7"),
             ("brand new concept", "c5")])
        assert summary["applied"]
        assert summary["new_nodes"] == ["brand new concept"]
        assert summary["applied_edges"] == 3
        assert "brand new concept" in summary["dirty_concepts"]
        delta = np.abs(_oracle_matrix(engine, encoder)
                       - engine.node_embedding_matrix()).max()
        assert delta < 1e-4

    def test_frontier_equals_full_rebuild(self):
        _encoder, detector = _structural_detector("gcn", 2, n=60)
        engine = detector.compile_inference()
        engine.apply_attachments([("c1", "c40"), ("c2", "new a"),
                                  ("new a", "new b")])
        incremental = engine.node_embedding_matrix()
        engine.recompute_structural()
        np.testing.assert_array_equal(incremental,
                                      engine.node_embedding_matrix())

    def test_reapply_is_idempotent(self):
        _encoder, detector = _structural_detector("gcn", 1)
        engine = detector.compile_inference()
        edges = [("c0", "c9"), ("c1", "fresh")]
        first = engine.apply_attachments(edges)
        second = engine.apply_attachments(edges)
        assert first["applied_edges"] == 2
        assert second["applied_edges"] == 0
        assert second["new_nodes"] == []
        assert second["epoch"] == first["epoch"]  # no-op: fence untouched

    def test_new_concept_leaves_zero_fallback(self):
        _encoder, detector = _structural_detector("gcn", 1)
        engine = detector.compile_inference()
        before = engine.pair_features([("c0", "late arrival")])
        hidden = 8
        assert np.all(before[0, hidden + 2:2 * hidden + 2] == 0.0)
        engine.apply_attachments([("c0", "late arrival")])
        after = engine.pair_features([("c0", "late arrival")])
        assert np.any(after[0, hidden + 2:2 * hidden + 2] != 0.0) or \
            np.any(after[0, :hidden] != before[0, :hidden])

    def test_growth_past_slack_keeps_parity(self):
        """Buffer reallocation (beyond the growth slack) must preserve
        every existing row and the zero-fallback invariant."""
        encoder, detector = _structural_detector("gcn", 1, n=10)
        engine = detector.compile_inference()
        edges = [("c0", f"streamed {i}")
                 for i in range(engine._GROWTH_SLACK + 20)]
        engine.apply_attachments(edges)
        delta = np.abs(_oracle_matrix(engine, encoder)
                       - engine.node_embedding_matrix()).max()
        assert delta < 1e-4
        unknown = engine.pair_features([("nope", "also nope")])
        hidden = 8
        assert np.all(unknown[0, :hidden] == 0.0)

    def test_concurrent_scoring_during_attachments(self):
        encoder, detector = _structural_detector("gcn", 2, n=40)
        engine = detector.compile_inference()
        pairs = [(f"c{i}", f"c{(i + 3) % 40}") for i in range(20)]
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer():
            while not stop.is_set():
                try:
                    probs = engine.score_pairs(pairs)
                    assert np.all(np.isfinite(probs))
                except BaseException as error:  # pragma: no cover
                    errors.append(error)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for batch in range(8):
                engine.apply_attachments(
                    [(f"c{batch}", f"streamed {batch}")])
        finally:
            stop.set()
            for thread in threads:
                thread.join(10.0)
        assert not errors
        delta = np.abs(_oracle_matrix(engine, encoder)
                       - engine.node_embedding_matrix()).max()
        assert delta < 1e-4


class TestFloat16Storage:
    def test_explicit_node_dtype(self):
        _encoder, detector = _structural_detector("gcn", 1)
        float32 = InferenceEngine(detector)
        float16 = InferenceEngine(detector, node_dtype=np.float16)
        assert float16._node_matrix.dtype == np.float16
        assert float16.stats.node_dtype == "float16"
        pairs = [("c0", "c5"), ("c3", "c9"), ("c1", "unknown")]
        # Storage quantisation only: relaxed parity vs float32 engine.
        np.testing.assert_allclose(float16.score_pairs(pairs),
                                   float32.score_pairs(pairs), atol=2e-2)
        np.testing.assert_allclose(float16.node_embedding_matrix(),
                                   float32.node_embedding_matrix(),
                                   atol=2e-3)

    def test_env_selects_float16(self, monkeypatch):
        monkeypatch.setenv("REPRO_INFER_DTYPE", "float16")
        assert default_node_dtype() == np.float16
        _encoder, detector = _structural_detector("gcn", 1)
        engine = InferenceEngine(detector)
        assert engine._node_matrix.dtype == np.float16

    def test_env_typo_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_INFER_DTYPE", "bfloat17")
        assert default_node_dtype() == np.float32

    def test_incremental_recompute_in_float16(self):
        encoder, detector = _structural_detector("gcn", 2)
        engine = InferenceEngine(detector, node_dtype=np.float16)
        engine.apply_attachments([("c0", "new"), ("c2", "c9")])
        delta = np.abs(_oracle_matrix(engine, encoder)
                       - engine.node_embedding_matrix()).max()
        assert delta < 2e-3  # relaxed: float16 storage quantisation


class TestScorerInvalidation:
    def test_invalidate_pairs_touching(self):
        calls: list[list] = []

        def backend(pairs):
            calls.append(list(pairs))
            return np.full(len(pairs), 0.5)

        scorer = BatchingScorer(backend, cache_size=64)
        scorer.score_pairs([("a", "b"), ("b", "c"), ("x", "y")])
        assert scorer.cache_len() == 3
        evicted = scorer.invalidate_pairs_touching({"b"})
        assert evicted == 2
        assert scorer.cache_len() == 1
        assert scorer.invalidate_pairs_touching(set()) == 0
        scorer.score_pairs([("x", "y")])  # untouched pair: cache hit
        assert len(calls) == 1


# ----------------------------------------------------------------------
# serving level
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def eager_bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    """A bundle whose expansion threshold is 0, so every scored
    candidate attaches — deterministic attachments for delta tests."""
    from repro.core import ExpansionConfig

    directory = str(tmp_path_factory.mktemp("recompute_bundle"))
    eager = copy.copy(tiny_fitted_pipeline)
    eager.config = replace(tiny_fitted_pipeline.config,
                           expansion=ExpansionConfig(threshold=0.0))
    ArtifactBundle.export(eager, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


def _structural_slice(engine, pairs):
    """The structural feature block of ``engine.pair_features``."""
    return np.asarray(
        engine.pair_features(pairs)[:, engine._relational_dim:],
        dtype=np.float64)


def _service_oracle_features(service, pairs):
    """Pair representations from a freshly built autograd encoder over
    the serving engine's live arrays (the acceptance oracle)."""
    engine = service.bundle.pipeline.detector.inference_engine
    arrays = engine.structural_arrays()
    structural = service.bundle.pipeline.structural
    oracle = StructuralEncoder.from_arrays(
        arrays["nodes"], arrays["features"], arrays["adjacency"],
        structural.config)
    oracle.load_state_dict(structural.state_dict())
    return oracle.pair_representation(pairs).data


class TestServiceSingleProcess:
    def test_expand_updates_engine_without_reload(self, eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with TaxonomyService(bundle) as service:
            engine = bundle.pipeline.detector.inference_engine
            parent = sorted(bundle.taxonomy.roots())[0]
            fresh = "galactic snack cluster"
            assert fresh not in engine._graph
            before_epoch = engine.structural_epoch
            outcome = service.expand({parent: [fresh]})
            assert outcome["num_attached"] == 1
            assert fresh in engine._graph
            assert engine.structural_epoch == before_epoch + 1
            pairs = [(parent, fresh), (fresh, parent)]
            got = _structural_slice(engine, pairs)
            want = _service_oracle_features(service, pairs)
            np.testing.assert_allclose(got, want, atol=1e-4, rtol=0)
            # The very next /score uses the live features: identical to
            # scoring straight through the (updated) engine.
            served = service.score([list(pairs[0])])["probabilities"][0]
            direct = float(engine.score_pairs([pairs[0]])[0])
            assert served == pytest.approx(direct, abs=1e-9)

    def test_expand_invalidates_stale_cached_scores(self,
                                                    eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with TaxonomyService(bundle) as service:
            engine = bundle.pipeline.detector.inference_engine
            parent = sorted(bundle.taxonomy.roots())[0]
            fresh = "stale cache probe"
            # Prime the score cache with the zero-fallback score.
            service.score([[parent, fresh]])
            primed = service.scorer.stats_snapshot().pairs_scored
            service.expand({parent: [fresh]})
            after_expand = service.scorer.stats_snapshot().pairs_scored
            served = service.score([[parent, fresh]])["probabilities"][0]
            direct = float(engine.score_pairs([(parent, fresh)])[0])
            assert served == pytest.approx(direct, abs=1e-9)
            # The pre-attach cache entry was evicted, so the post-attach
            # request had to hit the model again.
            final = service.scorer.stats_snapshot().pairs_scored
            assert final > after_expand >= primed

    def test_sync_ingest_applies_delta_before_ack(self, eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with TaxonomyService(bundle) as service:
            engine = bundle.pipeline.detector.inference_engine
            epoch = engine.structural_epoch
            parent = sorted(bundle.taxonomy.roots())[0]
            candidates = sorted(
                concept for concept in bundle.vocabulary.concepts()
                if concept != parent
                and not bundle.taxonomy.has_edge(parent, concept))[:2]
            records = [[parent, concept, 3] for concept in candidates]
            outcome = service.ingest(records, sync=True)
            assert outcome["accepted"]
            if outcome["report"]["num_attached"]:
                assert engine.structural_epoch == epoch + 1
                pairs = [tuple(edge)
                         for edge in outcome["report"]["attached_edges"]]
                got = _structural_slice(engine, pairs)
                want = _service_oracle_features(service, pairs)
                np.testing.assert_allclose(got, want, atol=1e-4, rtol=0)

    def test_hot_reload_replays_attachments(self, eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with TaxonomyService(bundle) as service:
            parent = sorted(bundle.taxonomy.roots())[0]
            fresh = "reload survivor"
            service.expand({parent: [fresh]})
            service.reload(eager_bundle_dir)
            engine = service.bundle.pipeline.detector.inference_engine
            assert engine is not bundle.pipeline.detector.inference_engine
            assert fresh in engine._graph
            pairs = [(parent, fresh)]
            got = _structural_slice(engine, pairs)
            want = _service_oracle_features(service, pairs)
            np.testing.assert_allclose(got, want, atol=1e-4, rtol=0)


class TestServiceSharded:
    def test_expand_reaches_every_worker(self, eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with ShardedScorerPool(eager_bundle_dir, num_workers=2,
                               watchdog_interval=None) as pool:
            with TaxonomyService(bundle, pool=pool) as service:
                parent = sorted(bundle.taxonomy.roots())[0]
                fresh = "sharded newcomer"
                service.expand({parent: [fresh]})
                stats = pool.stats_snapshot()
                assert stats.delta_broadcasts >= 1
                # Both orientations shard to (usually) different
                # workers; each must agree with the updated in-process
                # engine to the documented tolerance — i.e. every
                # worker applied the delta.
                pairs = [[parent, fresh], [fresh, parent]]
                served = service.score(pairs)["probabilities"]
                expected = bundle.pipeline.score_pairs(
                    [tuple(pair) for pair in pairs])
                np.testing.assert_allclose(served, expected, atol=1e-4,
                                           rtol=0)

    def test_respawned_worker_replays_delta_log(self, eager_bundle_dir):
        bundle = ArtifactBundle.load(eager_bundle_dir)
        with ShardedScorerPool(eager_bundle_dir, num_workers=2,
                               watchdog_interval=None) as pool:
            with TaxonomyService(bundle, pool=pool) as service:
                parent = sorted(bundle.taxonomy.roots())[0]
                fresh = "crash survivor"
                service.expand({parent: [fresh]})
                pairs = [(parent, fresh), (fresh, parent)]
                expected = bundle.pipeline.score_pairs(pairs)
                for worker in pool._workers:
                    worker.process.kill()
                    worker.process.join()
                # Respawn-on-demand must replay the delta log before
                # serving; the first call may race the death signal.
                try:
                    got = pool.score_pairs(pairs)
                except RuntimeError:
                    got = pool.score_pairs(pairs)
                np.testing.assert_allclose(got, expected, atol=1e-4,
                                           rtol=0)


class TestWatchdog:
    def test_watchdog_respawns_without_traffic(self, eager_bundle_dir):
        with ShardedScorerPool(eager_bundle_dir, num_workers=2,
                               watchdog_interval=0.2) as pool:
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if pool.stats_snapshot().watchdog_restarts >= 1 and \
                        victim.alive:
                    break
                time.sleep(0.1)
            stats = pool.stats_snapshot()
            assert stats.watchdog_restarts >= 1
            assert stats.worker_deaths >= 1
            # The respawned worker serves without any prior request.
            probs = pool.score_pairs([("fruit", "apple"), ("a", "b")])
            assert np.all(np.isfinite(probs))
