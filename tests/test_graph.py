"""Graph construction tests: matching, weighting, heterograph, pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    ConceptMatcher, HeteroGraph, assign_edge_weights, build_heterograph,
    collect_concept_clicks, contains_token_run, identify_concept,
    inverse_query_frequency, item_frequency,
)
from repro.taxonomy import ConceptVocabulary


@pytest.fixture()
def vocab():
    return ConceptVocabulary(["bread", "cheese bun", "bun", "sweet soup"])


class TestMatching:
    def test_contains_token_run(self):
        assert contains_token_run(["a", "b", "c"], ["b", "c"])
        assert not contains_token_run(["a", "b", "c"], ["c", "b"])
        assert not contains_token_run(["a"], ["a", "b"])
        assert not contains_token_run(["a"], [])

    def test_longest_match_wins(self, vocab):
        assert identify_concept("well-known cheese bun combo", vocab) \
            == "cheese bun"

    def test_single_token_match(self, vocab):
        assert identify_concept("signature bread box", vocab) == "bread"

    def test_no_match(self, vocab):
        assert identify_concept("random junk title", vocab) is None

    def test_no_partial_token_match(self, vocab):
        # "breadstick" must not match concept "bread" (token-level rule)
        assert identify_concept("fresh breadstick", vocab) is None

    def test_matcher_caches(self, vocab):
        matcher = ConceptMatcher(vocab)
        assert matcher("signature bread box") == "bread"
        assert matcher("signature bread box") == "bread"
        assert matcher.cache_size == 1


class TestWeighting:
    def test_item_frequency_normalises_per_query(self):
        counts = {("q", "a"): 3, ("q", "b"): 1, ("r", "a"): 2}
        freq = item_frequency(counts)
        assert freq[("q", "a")] == pytest.approx(0.75)
        assert freq[("q", "b")] == pytest.approx(0.25)
        assert freq[("r", "a")] == pytest.approx(1.0)

    def test_iqf_punishes_ubiquitous_items(self):
        counts = {("q1", "common"): 1, ("q2", "common"): 1,
                  ("q1", "rare"): 1}
        iqf = inverse_query_frequency(counts)
        assert iqf["common"] == pytest.approx(0.0)  # log(2/2)
        assert iqf["rare"] == pytest.approx(math.log(2.0))

    def test_weights_sum_to_one_per_query(self):
        counts = {("q", "a"): 5, ("q", "b"): 2, ("q", "c"): 1,
                  ("r", "a"): 4, ("r", "b"): 4}
        weights = assign_edge_weights(counts)
        for query in ("q", "r"):
            total = sum(w for (s, _), w in weights.items() if s == query)
            assert total == pytest.approx(1.0)

    def test_empty_counts(self):
        assert assign_edge_weights({}) == {}

    def test_drifted_click_gets_lower_weight(self):
        """Paper §III-A-4: rare drifted items weigh less than popular ones."""
        counts = {("bread", "toast"): 40, ("bread", "soup"): 2,
                  ("dessert", "soup"): 3, ("tea", "soup"): 3}
        weights = assign_edge_weights(counts)
        assert weights[("bread", "toast")] > weights[("bread", "soup")]


class TestHeteroGraph:
    def test_add_and_query(self):
        g = HeteroGraph()
        g.add_edge("a", "b", HeteroGraph.TAXONOMY, 1.0)
        g.add_edge("a", "c", HeteroGraph.CLICK, 0.3)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.edge_type("a", "c") == "click"
        assert g.edge_weight("a", "c") == pytest.approx(0.3)
        assert g.neighbors("a") == {"b": 1.0, "c": 0.3}
        assert g.degree("a") == 2
        assert "a" in g

    def test_invalid_edges(self):
        g = HeteroGraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "a", HeteroGraph.CLICK)
        with pytest.raises(ValueError):
            g.add_edge("a", "b", "mystery")
        with pytest.raises(ValueError):
            g.add_edge("a", "b", HeteroGraph.CLICK, -1.0)

    def test_edges_filter(self):
        g = HeteroGraph()
        g.add_edge("a", "b", HeteroGraph.TAXONOMY)
        g.add_edge("a", "c", HeteroGraph.CLICK, 0.5)
        assert len(list(g.edges(HeteroGraph.CLICK))) == 1
        assert len(list(g.edges())) == 2

    def test_adjacency_symmetric_with_self_loops(self):
        g = HeteroGraph()
        g.add_edge("a", "b", HeteroGraph.CLICK, 0.4)
        adj = g.adjacency()
        assert adj.shape == (2, 2)
        assert adj[0, 1] == adj[1, 0] == pytest.approx(0.4)
        assert adj[0, 0] == adj[1, 1] == 1.0

    def test_node_index_stable(self):
        g = HeteroGraph()
        g.add_edge("z", "a", HeteroGraph.CLICK)
        assert g.node_index() == {"z": 0, "a": 1}


class TestConstruction:
    def test_build_heterograph_end_to_end(self, small_world,
                                           small_click_log):
        result = build_heterograph(small_world.existing_taxonomy,
                                   small_world.vocabulary, small_click_log)
        assert result.graph.num_nodes > 0
        # taxonomy edges present with weight 1
        parent, child = next(iter(small_world.existing_taxonomy.edges()))
        assert result.graph.edge_weight(parent, child) == 1.0
        # click weights sum to 1 per query
        sums = {}
        for (q, _i), w in result.weights.items():
            sums[q] = sums.get(q, 0.0) + w
        assert all(abs(total - 1.0) < 1e-9 for total in sums.values())

    def test_candidates_not_existing_edges(self, small_world,
                                           small_click_log):
        result = build_heterograph(small_world.existing_taxonomy,
                                   small_world.vocabulary, small_click_log)
        for pair in result.candidate_pairs:
            assert not small_world.existing_taxonomy.has_edge(*pair)

    def test_collect_skips_foreign_queries(self, small_world,
                                           small_click_log):
        result = collect_concept_clicks(small_world.existing_taxonomy,
                                        small_world.vocabulary,
                                        small_click_log)
        for query, _item in result.concept_clicks:
            assert query in small_world.existing_taxonomy

    def test_unmatched_items_counted(self, small_world, small_click_log):
        result = collect_concept_clicks(small_world.existing_taxonomy,
                                        small_world.vocabulary,
                                        small_click_log)
        assert sum(result.unmatched_items.values()) > 0


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(
    st.tuples(st.sampled_from(["q1", "q2", "q3"]),
              st.sampled_from(["i1", "i2", "i3", "i4"])),
    st.integers(1, 50), min_size=1, max_size=10))
def test_weight_assignment_properties(counts):
    """Weights are a per-query distribution for arbitrary count tables."""
    weights = assign_edge_weights(counts)
    assert set(weights) == set(counts)
    per_query: dict = {}
    for (query, _), w in weights.items():
        assert 0.0 <= w <= 1.0 + 1e-9
        per_query[query] = per_query.get(query, 0.0) + w
    for total in per_query.values():
        assert abs(total - 1.0) < 1e-9
