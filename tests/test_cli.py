"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.domain == "fruits"
        assert args.clicks == 80

    def test_expand_output_flag(self):
        args = build_parser().parse_args(
            ["expand", "--domain", "snack", "--output", "out.json"])
        assert args.domain == "snack"
        assert args.output == "out.json"

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["world", "--domain", "vehicles"])

    def test_evaluate_output_flag(self):
        args = build_parser().parse_args(
            ["evaluate", "--output", "metrics.json"])
        assert args.output == "metrics.json"

    def test_expand_artifacts_flag(self):
        args = build_parser().parse_args(
            ["expand", "--artifacts", "bundle/"])
        assert args.artifacts == "bundle/"

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--artifacts", "bundle/"])
        assert args.artifacts == "bundle/"
        assert args.host == "127.0.0.1"
        assert args.port == 8631
        assert args.max_batch == 64
        assert args.cache_size == 4096
        assert not args.quiet

    def test_serve_requires_artifacts(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestWorldCommand:
    def test_world_prints_statistics(self, capsys):
        exit_code = main(["world", "--domain", "prepared", "--clicks", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "concepts" in out
        assert "click records" in out
