"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_world_defaults(self):
        args = build_parser().parse_args(["world"])
        assert args.domain == "fruits"
        assert args.clicks == 80

    def test_expand_output_flag(self):
        args = build_parser().parse_args(
            ["expand", "--domain", "snack", "--output", "out.json"])
        assert args.domain == "snack"
        assert args.output == "out.json"

    def test_unknown_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["world", "--domain", "vehicles"])


class TestWorldCommand:
    def test_world_prints_statistics(self, capsys):
        exit_code = main(["world", "--domain", "prepared", "--clicks", "5"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "concepts" in out
        assert "click records" in out
