"""Tests for the :class:`repro.api.TaxonomyClient` SDK.

Real-socket round-trips against a served bundle (score, expand,
ingest, async jobs via ``wait_for_job``), typed error mapping, the
retry-with-backoff transport policy against a scripted fake server,
and the ``repro score-remote`` / ``ingest-remote`` CLI commands that
ride on the SDK.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.api import TaxonomyApiError, TaxonomyClient
from repro.serving import ArtifactBundle, ServiceConfig, TaxonomyService, \
    make_server


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("client_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


@pytest.fixture(scope="module")
def served(bundle_dir):
    service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}", service
    httpd.shutdown()
    httpd.server_close()
    service.stop()
    thread.join(timeout=5)


@pytest.fixture()
def client(served):
    url, _service = served
    return TaxonomyClient(url, timeout=30.0, retries=1, backoff=0.01)


class TestSynchronousCalls:
    def test_score_matches_service(self, client, served, small_world):
        _url, service = served
        edges = [list(edge) for edge in
                 sorted(small_world.existing_taxonomy.edges())[:4]]
        remote = client.score(edges)
        direct = service.score(edges)
        assert remote["probabilities"] == direct["probabilities"]

    def test_score_batched_preserves_order(self, client, small_world):
        edges = [list(edge) for edge in
                 sorted(small_world.existing_taxonomy.edges())[:6]]
        single = client.score(edges)["probabilities"]
        batched = client.score_batched(edges, batch_size=2)
        assert batched == single

    def test_ingest_sync_and_batched(self, client):
        ack = client.ingest([["apple", "client apple", 2]], sync=True)
        assert ack["accepted"] is True
        assert ack["report"]["batch_index"] >= 1
        outcomes = client.ingest_batched(
            [["pear", f"pear {i}"] for i in range(6)],
            batch_size=3, sync=True)
        assert len(outcomes) == 2
        assert all(o["accepted"] for o in outcomes)

    def test_expand_taxonomy_health_openapi(self, client, small_world):
        parents = sorted(small_world.existing_taxonomy.roots())
        outcome = client.expand(
            {parents[0]: sorted(small_world.new_concepts)[:1]})
        assert outcome["scored_candidates"] >= 1
        taxonomy = client.taxonomy()
        assert taxonomy["stats"]["edges"] == outcome["taxonomy_edges"]
        assert client.health()["status"] in ("ok", "degraded")
        assert "/v1/score" in client.openapi()["paths"]
        assert "repro_scorer_requests_total" in client.metrics_text()

    def test_reload_same_bundle(self, client, bundle_dir):
        outcome = client.reload(bundle_dir)
        assert outcome["reloaded"] is True


class TestErrorMapping:
    def test_invalid_request_surfaces_typed_error(self, client):
        with pytest.raises(TaxonomyApiError) as exc:
            client.score([["lonely"]])
        assert exc.value.code == "invalid_request"
        assert exc.value.status == 400
        assert exc.value.request_id.startswith("req-")
        assert not exc.value.retryable

    def test_job_not_found(self, client):
        with pytest.raises(TaxonomyApiError) as exc:
            client.job("job-definitely-missing")
        assert exc.value.code == "job_not_found"
        assert exc.value.status == 404

    def test_transport_error_is_retryable_type(self):
        dead = TaxonomyClient("http://127.0.0.1:1", timeout=0.2,
                              retries=0)
        with pytest.raises(TaxonomyApiError) as exc:
            dead.health()
        assert exc.value.code == "transport_error"
        assert exc.value.retryable


class TestAsyncJobs:
    def test_expand_job_end_to_end(self, client, small_world):
        # The ISSUE 5 acceptance path: submit -> poll -> result, all
        # through the SDK.
        parents = sorted(small_world.existing_taxonomy.roots())
        job = client.submit_expand_job(
            {parents[0]: sorted(small_world.new_concepts)[4:6]})
        assert job["status"] in ("pending", "running")
        done = client.wait_for_job(job["id"], timeout=60.0)
        assert done["status"] == "succeeded"
        assert done["result"]["scored_candidates"] >= 1

    def test_reload_job_end_to_end(self, client, bundle_dir):
        job = client.submit_reload_job(bundle_dir)
        done = client.wait_for_job(job["id"], timeout=120.0)
        assert done["result"]["reloaded"] is True
        assert done["result"]["directory"] == bundle_dir

    def test_failed_job_raises_with_stable_code(self, client):
        job = client.submit_reload_job("/no/such/bundle")
        with pytest.raises(TaxonomyApiError) as exc:
            client.wait_for_job(job["id"], timeout=60.0)
        assert exc.value.code == "reload_failed"

    def test_jobs_listing(self, client):
        listing = client.jobs()
        assert listing["jobs"]


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Fails the first N requests with a given status, then succeeds."""

    def log_message(self, *args):
        pass

    def do_POST(self):
        server = self.server
        server.attempts += 1
        length = int(self.headers.get("Content-Length") or 0)
        self.rfile.read(length)
        if server.attempts <= server.failures:
            envelope = {"error": {"code": server.fail_code,
                                  "message": "scripted failure",
                                  "detail": None,
                                  "request_id": "req-scripted"}}
            body = json.dumps(envelope).encode()
            self.send_response(server.fail_status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(body)
            return
        body = json.dumps({"pairs": [["a", "b"]],
                           "probabilities": [0.5]}).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture()
def scripted_server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    httpd.attempts = 0
    httpd.failures = 1
    httpd.fail_status = 429
    httpd.fail_code = "backpressure"
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield httpd, f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


class TestRetryPolicy:
    def test_retries_backpressure_then_succeeds(self, scripted_server):
        httpd, url = scripted_server
        client = TaxonomyClient(url, retries=2, backoff=0.01,
                                max_backoff=0.05)
        result = client.score([("a", "b")])
        assert result["probabilities"] == [0.5]
        assert httpd.attempts == 2  # one failure + one retry

    def test_retries_not_ready_503(self, scripted_server):
        httpd, url = scripted_server
        httpd.fail_status, httpd.fail_code = 503, "not_ready"
        client = TaxonomyClient(url, retries=2, backoff=0.01,
                                max_backoff=0.05)
        assert client.score([("a", "b")])["probabilities"] == [0.5]
        assert httpd.attempts == 2

    def test_no_retry_when_disabled(self, scripted_server):
        httpd, url = scripted_server
        client = TaxonomyClient(url, retries=0)
        with pytest.raises(TaxonomyApiError) as exc:
            client.score([("a", "b")])
        assert exc.value.code == "backpressure"
        assert httpd.attempts == 1

    def test_non_retryable_errors_fail_fast(self, scripted_server):
        httpd, url = scripted_server
        httpd.fail_status, httpd.fail_code = 400, "invalid_request"
        httpd.failures = 99
        client = TaxonomyClient(url, retries=3, backoff=0.01)
        with pytest.raises(TaxonomyApiError) as exc:
            client.score([("a", "b")])
        assert exc.value.code == "invalid_request"
        assert httpd.attempts == 1


class TestRetryJitter:
    """Unit tests for the full-jitter backoff schedule."""

    @staticmethod
    def _client(**kwargs):
        import random
        kwargs.setdefault("rng", random.Random(1234))
        return TaxonomyClient("http://localhost:1", backoff=0.1,
                              max_backoff=2.0, **kwargs)

    def test_delay_within_exponential_window(self):
        client = self._client()
        for attempt in range(6):
            window = min(0.1 * (2 ** attempt), 2.0)
            for _ in range(20):
                delay = client._retry_delay(attempt, None)
                assert 0.0 <= delay <= window

    def test_repeated_draws_differ(self):
        client = self._client()
        draws = {client._retry_delay(3, None) for _ in range(10)}
        assert len(draws) > 1  # full jitter, not a fixed schedule

    def test_retry_after_is_a_floor(self):
        client = self._client()
        # window at attempt 0 is 0.1s, but the server asked for 1s
        for _ in range(10):
            assert client._retry_delay(0, "1") >= 1.0

    def test_retry_after_floor_capped_at_max_backoff(self):
        client = self._client()
        delay = client._retry_delay(0, "3600")
        assert delay <= 2.0

    def test_unparseable_retry_after_ignored(self):
        client = self._client()
        delay = client._retry_delay(0, "Wed, 21 Oct 2015 07:28:00 GMT")
        assert 0.0 <= delay <= 0.1

    def test_seeded_rng_is_deterministic(self):
        import random
        first = TaxonomyClient("http://localhost:1", backoff=0.1,
                               max_backoff=2.0, rng=random.Random(7))
        second = TaxonomyClient("http://localhost:1", backoff=0.1,
                                max_backoff=2.0, rng=random.Random(7))
        assert [first._retry_delay(i, None) for i in range(5)] == \
            [second._retry_delay(i, None) for i in range(5)]


class TestRemoteCliCommands:
    def test_score_remote(self, served, capsys):
        from repro.cli import main
        url, _service = served
        exit_code = main(["score-remote", "--url", url,
                          "fruit,apple", "apple,fruit"])
        assert exit_code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert "fruit -> apple" in lines[0]

    def test_score_remote_json_output(self, served, capsys):
        from repro.cli import main
        url, _service = served
        assert main(["score-remote", "--url", url, "--json",
                     "fruit,apple"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["pairs"] == [["fruit", "apple"]]

    def test_score_remote_rejects_malformed_pair(self, served, capsys):
        from repro.cli import main
        url, _service = served
        assert main(["score-remote", "--url", url, "no-comma"]) == 2

    def test_ingest_remote(self, served, tmp_path, capsys):
        from repro.cli import main
        url, _service = served
        records = tmp_path / "records.json"
        records.write_text(json.dumps(
            [["fruit", "cli fruit item", 2], ["apple", "cli apple"]]))
        exit_code = main(["ingest-remote", "--url", url,
                          str(records), "--sync"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "sent 2 record(s) in 1 batch(es)" in out
        assert "attached edges:" in out
