"""Candidate-retrieval subsystem: kernels, index, freshness, service.

Four layers under test:

* ``repro.retrieval.kernels`` — the blocked exact top-k must be
  *bit-identical* to the naive "score everything, argsort" oracle,
  including boundary ties, ``k > n`` and empty inputs;
* ``repro.retrieval.index`` — partitioned (IVF) search recall,
  the measured-recall escape hatch, and incremental ``add``;
* ``repro.retrieval.refresh`` — epoch-fenced ``CandidateRetriever``
  maintenance (extend-only embedding, engine epoch stamping);
* ``TaxonomyService.suggest`` / retrieval-backed ``expand`` — the
  serving integration, including index freshness after ingest.
"""

import threading

import numpy as np
import pytest

from repro.api.errors import ApiError
from repro.retrieval import (
    CandidateIndex, CandidateRetriever, IndexConfig, row_norms,
    topk_blocked,
)
from repro.serving import (
    ArtifactBundle, ServiceConfig, TaxonomyService, make_server,
)


def naive_topk(queries, matrix, k, metric="cosine"):
    """Reference oracle: full scores, full lexsort, total order."""
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    matrix = np.asarray(matrix, dtype=np.float64)
    out_scores, out_ids = [], []
    for query in queries:
        scores = matrix @ query
        if metric == "cosine":
            qnorm = np.linalg.norm(query) or 1.0
            norms = np.linalg.norm(matrix, axis=1)
            scores = scores / (np.where(norms > 0, norms, 1.0) * qnorm)
        order = np.lexsort((np.arange(len(scores)), -scores))[:k]
        out_scores.append(scores[order])
        out_ids.append(order)
    return out_scores, out_ids


class TestKernels:
    @pytest.mark.parametrize("metric", ["cosine", "dot"])
    @pytest.mark.parametrize("k", [1, 5, 499, 500, 600])
    def test_blocked_matches_naive_oracle(self, metric, k, rng):
        matrix = rng.normal(size=(500, 12))
        queries = rng.normal(size=(4, 12))
        scores, ids = topk_blocked(
            queries.astype(np.float64), matrix.astype(np.float64), k,
            metric=metric, block_rows=37)
        _oracle_scores, oracle_ids = naive_topk(
            queries, matrix, k, metric)
        for q in range(4):
            assert np.array_equal(ids[q], oracle_ids[q][:len(ids[q])])
        assert ids.shape[1] == min(k, 500)

    def test_boundary_ties_resolve_by_row_id(self):
        # Every row identical: top-k must be rows 0..k-1 regardless of
        # where slab boundaries fall relative to the argpartition cut.
        matrix = np.ones((100, 6))
        _scores, ids = topk_blocked(np.ones(6), matrix, 7, block_rows=9)
        assert ids[0].tolist() == [0, 1, 2, 3, 4, 5, 6]

    def test_zero_rows_and_zero_queries(self):
        scores, ids = topk_blocked(np.ones((0, 4)), np.ones((5, 4)), 3)
        assert scores.shape == (0, 0) and ids.shape == (0, 0)
        scores, ids = topk_blocked(np.ones((2, 4)), np.ones((0, 4)), 3)
        assert scores.shape == (2, 0) and ids.shape == (2, 0)

    def test_zero_norm_rows_score_zero_not_nan(self):
        matrix = np.vstack([np.zeros(4), np.ones(4)])
        scores, ids = topk_blocked(np.ones(4), matrix, 2)
        assert ids[0].tolist() == [1, 0]
        assert scores[0][1] == 0.0 and np.isfinite(scores[0]).all()

    def test_exclusion_and_row_ids(self, rng):
        matrix = rng.normal(size=(50, 8))
        query = matrix[3]
        _s, ids = topk_blocked(query, matrix, 3, exclude=[3])
        assert 3 not in ids[0]
        # global row ids survive a gathered submatrix
        rows = np.array([40, 3, 17], dtype=np.int64)
        _s, gathered = topk_blocked(query, matrix[rows], 1, row_ids=rows)
        assert gathered[0][0] == 3

    def test_everything_excluded_is_empty(self):
        scores, ids = topk_blocked(np.ones(3), np.eye(3), 2,
                                   exclude=[0, 1, 2])
        assert scores.shape == (1, 0) and ids.shape == (1, 0)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            topk_blocked(np.ones(3), np.eye(3), 0)
        with pytest.raises(ValueError):
            topk_blocked(np.ones(3), np.eye(3), 1, metric="euclid")
        with pytest.raises(ValueError):
            topk_blocked(np.ones(4), np.eye(3), 1)  # dim mismatch

    def test_row_norms_matches_linalg(self, rng):
        matrix = rng.normal(size=(20, 5))
        assert np.allclose(row_norms(matrix),
                           np.linalg.norm(matrix, axis=1))


def clustered(num_rows, dim, clusters, seed=0, noise=0.1):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(clusters, dim))
    labels = rng.integers(0, clusters, size=num_rows)
    return centers[labels] + rng.normal(size=(num_rows, dim)) * noise


class TestCandidateIndex:
    def test_exact_search_returns_ranked_concepts(self, rng):
        matrix = rng.normal(size=(30, 6))
        index = CandidateIndex([f"c{i}" for i in range(30)], matrix)
        assert index.mode == "exact" and len(index) == 30
        results = index.search(matrix[4], 3)[0]
        assert results[0][0] == "c4"
        scores = [score for _c, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_duplicate_concepts_rejected(self):
        with pytest.raises(ValueError):
            CandidateIndex(["a", "a"], np.ones((2, 3)))

    def test_add_dedupes_and_makes_retrievable(self, rng):
        matrix = rng.normal(size=(10, 4))
        index = CandidateIndex([f"c{i}" for i in range(10)], matrix)
        fresh = rng.normal(size=(2, 4))
        added = index.add(["new0", "c3", "new1"],
                          np.vstack([fresh[0], matrix[3], fresh[1]]))
        assert added == 2 and len(index) == 12
        assert "new0" in index and "new1" in index
        assert index.search(fresh[1], 1)[0][0][0] == "new1"
        stats = index.stats_snapshot()
        assert stats.adds == 1 and stats.rows_added == 2

    def test_partitioned_mode_recall_vs_exact(self):
        matrix = clustered(3000, 12, 12)
        concepts = [f"c{i}" for i in range(3000)]
        index = CandidateIndex(concepts, matrix, IndexConfig(
            partition_min_rows=256, cells=12))
        assert index.mode == "partitioned"
        queries = matrix[:40] + 0.01
        exact = index.search(queries, 10, mode="exact")
        part = index.search(queries, 10)
        hits = total = 0
        for truth_row, got_row in zip(exact, part):
            truth = {c for c, _s in truth_row}
            hits += len(truth & {c for c, _s in got_row})
            total += len(truth)
        assert hits / total >= 0.95
        stats = index.stats_snapshot()
        assert stats.partition_searches >= 1
        assert stats.partition_probes > 0

    def test_partitioned_add_is_searchable_without_rebuild(self):
        matrix = clustered(2000, 8, 8)
        index = CandidateIndex([f"c{i}" for i in range(2000)], matrix,
                               IndexConfig(partition_min_rows=128,
                                           cells=8))
        assert index.mode == "partitioned"
        probe = clustered(1, 8, 8, seed=9)[0]
        index.add(["fresh"], probe[np.newaxis, :])
        assert index.search(probe, 1)[0][0][0] == "fresh"

    def test_measured_recall_escape_hatch(self):
        # An impossible floor forces the build-time measurement to fail:
        # partitions are disabled, searches fall back to exact, and the
        # fallback is counted.
        matrix = clustered(1000, 8, 8)
        index = CandidateIndex([f"c{i}" for i in range(1000)], matrix,
                               IndexConfig(partition_min_rows=64,
                                           cells=8, min_recall=1.01))
        assert index.mode == "exact"
        index.search(matrix[0], 3)
        stats = index.stats_snapshot()
        assert stats.exact_fallbacks == 1
        assert stats.measured_recall <= 1.0

    def test_forced_exact_mode_on_partitioned_index(self):
        matrix = clustered(1500, 8, 6)
        index = CandidateIndex([f"c{i}" for i in range(1500)], matrix,
                               IndexConfig(partition_min_rows=128,
                                           cells=6))
        ids_exact = [c for c, _s in
                     index.search(matrix[7], 5, mode="exact")[0]]
        oracle = naive_topk(matrix[7], matrix, 5)[1][0]
        assert ids_exact == [f"c{i}" for i in oracle]

    def test_concurrent_search_and_add(self, rng):
        matrix = rng.normal(size=(200, 6))
        index = CandidateIndex([f"c{i}" for i in range(200)], matrix)
        errors = []

        def hammer():
            try:
                for _ in range(50):
                    index.search(matrix[:4], 5)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for batch in range(20):
            index.add([f"x{batch}"], rng.normal(size=(1, 6)))
        for thread in threads:
            thread.join()
        assert not errors and len(index) == 220


class FakeEngine:
    """Just enough engine surface for epoch bookkeeping tests."""

    def __init__(self, epoch=0):
        self.structural_epoch = epoch
        self.marked = []

    def mark_norms_cached(self, epoch):
        self.marked.append(epoch)


class TestCandidateRetriever:
    def embed_factory(self, dim=6):
        calls = []

        def embed(concepts):
            calls.append(list(concepts))
            rng = np.random.default_rng(
                abs(hash(tuple(concepts))) % (2 ** 32))
            return rng.normal(size=(len(concepts), dim))

        embed.calls = calls
        return embed

    def test_extend_embeds_only_missing(self):
        embed = self.embed_factory()
        retriever = CandidateRetriever(embed, ["a", "b", "c"])
        assert len(retriever) == 3 and embed.calls == [["a", "b", "c"]]
        added = retriever.extend(["b", "d", "d"])
        assert added == 1 and embed.calls[-1] == ["d"]
        assert "d" in retriever
        assert retriever.extend(["a", "d"]) == 0
        assert len(embed.calls) == 2  # nothing re-embedded

    def test_epoch_recording_and_engine_stamp(self):
        engine = FakeEngine(epoch=5)
        retriever = CandidateRetriever(self.embed_factory(), ["a"],
                                       engine=engine)
        assert retriever.synced_epoch == 5 and engine.marked == [5]
        engine.structural_epoch = 9
        retriever.extend(["b"])  # picks the epoch up from the engine
        assert retriever.synced_epoch == 9
        retriever.extend(["c"], epoch=7)  # monotonic: never regresses
        assert retriever.synced_epoch == 9
        assert engine.marked[-1] == 9

    def test_empty_initial_build_then_extend(self):
        retriever = CandidateRetriever(self.embed_factory(), [])
        assert len(retriever) == 0
        assert retriever.neighbors("anything", 3) == []
        assert retriever.extend(["a", "b"]) == 2
        assert retriever.rebuilds == 2  # zero-dim matrix was replaced
        assert len(retriever.neighbors("a", 5)) >= 1

    def test_neighbors_excludes_query_itself(self):
        retriever = CandidateRetriever(self.embed_factory(),
                                       ["a", "b", "c"])
        names = [c for c, _s in retriever.neighbors("a", 10)]
        assert "a" not in names and len(names) == 2
        stats = retriever.stats()
        assert stats["mode"] == "exact" and stats["size"] == 3


@pytest.fixture(scope="module")
def service(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("retrieval_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    service = TaxonomyService(ArtifactBundle.load(directory),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    yield service
    service.stop()


class TestServiceIntegration:
    def test_suggest_payload_shape(self, service, small_world):
        query = sorted(small_world.new_concepts)[0]
        result = service.suggest(query, k=4)
        assert result["query"] == query and result["k"] == 4
        assert 0 < len(result["candidates"]) <= 4
        probabilities = [c["probability"]
                         for c in result["candidates"]]
        assert probabilities == sorted(probabilities, reverse=True)
        retrieval = result["retrieval"]
        assert retrieval["mode"] in ("exact", "partitioned")
        assert retrieval["retrieved"] >= retrieval["reranked"] \
            or retrieval["reranked"] <= retrieval["retrieved"]
        assert retrieval["index_size"] > 0

    def test_index_absorbs_expansion_without_rebuild(
            self, service, small_world):
        # Attach a new concept (threshold dropped to 0 so the
        # attachment is deterministic), then confirm it is retrievable
        # and the retriever did not rebuild the index to get there.
        import dataclasses

        service.suggest(sorted(small_world.new_concepts)[0])
        retriever = service._retriever
        rebuilds_before = retriever.rebuilds
        parent = sorted(small_world.existing_taxonomy.roots())[0]
        fresh = "retrieval-freshness-probe"
        config = service.expander.config
        service.expander.config = dataclasses.replace(
            config, threshold=0.0)
        try:
            outcome = service.expand({parent: [fresh]})
        finally:
            service.expander.config = config
        assert [parent, fresh] in outcome["attached_edges"]
        assert fresh in retriever
        assert retriever.rebuilds == rebuilds_before
        suggestion = service.suggest(fresh, k=3)
        assert suggestion["candidates"]

    def test_expand_via_queries_uses_index(self, service, small_world):
        queries = sorted(small_world.new_concepts)[1:3]
        outcome = service.expand(queries=queries, top_k=5)
        assert outcome["scored_candidates"] > 0

    def test_expand_requires_exactly_one_of(self, service):
        with pytest.raises(ApiError) as excinfo:
            service.expand()
        assert excinfo.value.code == "invalid_request"
        with pytest.raises(ApiError):
            service.expand({"a": ["b"]}, queries=["c"])

    def test_health_and_metrics_expose_retrieval(self, service):
        service.suggest("apple")
        health = service.health()
        assert "retrieval" in health and health["retrieval"] is not None
        assert health["retrieval"]["size"] > 0
        assert health["retrieval"]["suggest_requests"] >= 1
        text = service.metrics_text()
        for name in ("repro_suggest_requests_total",
                     "repro_retrieval_index_size",
                     "repro_retrieval_index_rebuilds_total",
                     "repro_retrieval_synced_epoch",
                     "repro_engine_norms_epoch"):
            assert f"# TYPE {name}" in text, name


class TestHttpSuggest:
    def test_round_trip_over_http(self, service, small_world):
        import json
        import urllib.request

        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            host, port = httpd.server_address[:2]
            query = sorted(small_world.new_concepts)[0]
            payload = json.dumps({"query": query, "k": 2}).encode()
            request = urllib.request.Request(
                f"http://{host}:{port}/v1/suggest", data=payload,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
                assert response.status == 200
            assert body["query"] == query
            assert len(body["candidates"]) <= 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
