"""Public-API hygiene: exports exist, are documented, and import cleanly."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro", "repro.nn", "repro.taxonomy", "repro.synthetic", "repro.graph",
    "repro.plm", "repro.gnn", "repro.core", "repro.baselines", "repro.eval",
    "repro.infer", "repro.serving",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} lacks __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", [p for p in PACKAGES if p != "repro"])
def test_public_callables_are_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in module.__all__:
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented {undocumented}"


def test_version_string():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
