"""End-to-end contract tests for the versioned ``/v1`` HTTP API.

Covers the ISSUE 5 acceptance surface: typed schema round-trips on
every ``/v1`` endpoint, the canonical error envelope (shape, status,
``X-Request-Id``) for every stable error code, 413 on oversized
bodies, 429-with-``Retry-After`` backpressure vs 503 not-ready,
deprecated legacy aliases, async jobs over HTTP, and the generated
OpenAPI document.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import ERROR_CODES, ROUTES
from repro.serving import ArtifactBundle, ServiceConfig, TaxonomyService, \
    make_server
from repro.serving.http import MAX_BODY_BYTES


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("api_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


@pytest.fixture(scope="module")
def server(bundle_dir):
    service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                              ServiceConfig(max_wait_ms=1.0))
    service.start()
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    service.stop()
    thread.join(timeout=5)


def request(server, method, path, payload=None):
    """One request; returns (status, headers, parsed body)."""
    host, port = server.server_address[:2]
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"} if data else {})
    try:
        with urllib.request.urlopen(req, timeout=30) as response:
            body = response.read()
            headers = dict(response.headers)
            status = response.status
    except urllib.error.HTTPError as error:
        body = error.read()
        headers = dict(error.headers)
        status = error.code
    content_type = headers.get("Content-Type", "")
    parsed = json.loads(body) if content_type.startswith(
        "application/json") else body.decode("utf-8")
    return status, headers, parsed


def assert_envelope(status, headers, body, code):
    """The canonical error contract: shape, status, X-Request-Id."""
    assert status == ERROR_CODES[code], body
    error = body["error"]
    assert error["code"] == code
    assert isinstance(error["message"], str) and error["message"]
    assert "detail" in error
    assert error["request_id"] == headers["X-Request-Id"]


class TestV1RoundTrips:
    def test_score_through_schema_layer(self, server, small_world):
        edges = sorted(small_world.existing_taxonomy.edges())[:3]
        status, headers, body = request(
            server, "POST", "/v1/score",
            {"pairs": [list(edge) for edge in edges]})
        assert status == 200
        assert set(body) == {"pairs", "probabilities"}
        assert len(body["probabilities"]) == 3
        assert all(0.0 <= p <= 1.0 for p in body["probabilities"])
        # parity with the legacy alias (same service underneath)
        _s, _h, legacy = request(
            server, "POST", "/score",
            {"pairs": [list(edge) for edge in edges]})
        assert legacy["probabilities"] == body["probabilities"]

    def test_expand_and_taxonomy(self, server, small_world):
        parents = sorted(small_world.existing_taxonomy.roots())
        candidates = {parents[0]: sorted(small_world.new_concepts)[:2]}
        status, _h, body = request(server, "POST", "/v1/expand",
                                   {"candidates": candidates})
        assert status == 200
        assert set(body) == {"attached_edges", "num_attached",
                             "scored_candidates", "taxonomy_edges"}
        status, _h, tax = request(server, "GET", "/v1/taxonomy")
        assert status == 200
        assert set(tax) == {"version", "nodes", "edges", "stats",
                            "reports"}
        assert tax["stats"]["edges"] == body["taxonomy_edges"]

    def test_suggest_round_trip(self, server, small_world):
        query = sorted(small_world.new_concepts)[0]
        status, _h, body = request(server, "POST", "/v1/suggest",
                                   {"query": query, "k": 3})
        assert status == 200
        assert set(body) == {"query", "k", "candidates", "retrieval"}
        assert body["query"] == query and body["k"] == 3
        assert 0 < len(body["candidates"]) <= 3
        for candidate in body["candidates"]:
            assert set(candidate) == {"concept", "probability",
                                      "similarity", "already_parent"}
            assert 0.0 <= candidate["probability"] <= 1.0
        probabilities = [c["probability"] for c in body["candidates"]]
        assert probabilities == sorted(probabilities, reverse=True)
        assert body["retrieval"]["mode"] in ("exact", "partitioned")
        assert body["retrieval"]["retrieved"] >= len(body["candidates"])

    def test_expand_via_retrieved_queries(self, server, small_world):
        queries = sorted(small_world.new_concepts)[2:4]
        status, _h, body = request(server, "POST", "/v1/expand",
                                   {"queries": queries, "top_k": 5})
        assert status == 200
        assert body["scored_candidates"] > 0

    def test_ingest_sync_and_async(self, server):
        status, _h, sync = request(
            server, "POST", "/v1/ingest",
            {"records": [["apple", "a fresh apple", 2]], "sync": True})
        assert status == 202
        assert sync["accepted"] is True
        assert sync["report"]["batch_index"] >= 1
        assert sync["pending_batches"] is None
        status, _h, async_ack = request(
            server, "POST", "/v1/ingest",
            {"records": [["pear", "a ripe pear"]]})
        assert status == 202
        assert async_ack["report"] is None
        assert async_ack["pending_batches"] >= 0

    def test_healthz_includes_job_counters(self, server):
        status, _h, body = request(server, "GET", "/v1/healthz")
        assert status == 200
        assert body["status"] in ("ok", "degraded")
        assert set(body["jobs"]) == {"submitted", "succeeded", "failed",
                                     "rejected", "listener_failures",
                                     "pending", "running", "retained"}

    def test_metrics_exposes_job_families(self, server):
        status, headers, text = request(server, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        for name in ("repro_jobs_submitted_total", "repro_jobs_pending",
                     "repro_scorer_requests_total"):
            assert f"# TYPE {name}" in text

    def test_reload_same_directory(self, server, bundle_dir):
        # Prior tests scored pairs, so the reload has cache entries to
        # replay through the new engine (cache warming).
        status, _h, body = request(server, "POST", "/v1/admin/reload",
                                   {"artifacts": bundle_dir})
        assert status == 200
        assert body["reloaded"] is True
        assert body["directory"] == bundle_dir
        assert body["cache_warmed_pairs"] > 0
        _s, _h, text = request(server, "GET", "/v1/metrics")
        assert "# TYPE repro_cache_warmed_pairs_total" in text


#: (method, path, body, expected code) — every stable error code is
#: asserted for envelope shape, status, and X-Request-Id, across every
#: /v1 route family.
ERROR_CASES = [
    ("POST", "/v1/score", {"pairs": [["lonely"]]}, "invalid_request"),
    ("POST", "/v1/score", {"pears": []}, "invalid_request"),
    ("POST", "/v1/score", {"pairs": "nope"}, "invalid_request"),
    ("POST", "/v1/expand", {"candidates": [1]}, "invalid_request"),
    ("POST", "/v1/expand", {}, "invalid_request"),
    ("POST", "/v1/expand",
     {"candidates": {"a": ["b"]}, "queries": ["c"]}, "invalid_request"),
    ("POST", "/v1/expand", {"queries": "apple"}, "invalid_request"),
    ("POST", "/v1/suggest", {}, "invalid_request"),
    ("POST", "/v1/suggest", {"query": "   "}, "invalid_request"),
    ("POST", "/v1/suggest", {"query": "apple", "k": 0},
     "invalid_request"),
    ("POST", "/v1/suggest", {"query": "apple", "k": 101},
     "invalid_request"),
    ("POST", "/v1/suggest", {"query": "apple", "bogus": 1},
     "invalid_request"),
    ("POST", "/v1/ingest", {"records": [["only-query"]]},
     "invalid_request"),
    ("POST", "/v1/ingest", {"records": [["q", "i", 0]]},
     "invalid_request"),
    ("POST", "/v1/admin/reload", {"artifacts": 7}, "invalid_request"),
    ("POST", "/v1/jobs/expand", {"candidates": 3}, "invalid_request"),
    ("POST", "/v1/jobs/reload", {"bogus": 1}, "invalid_request"),
    ("GET", "/v1/jobs/job-missing", None, "job_not_found"),
    ("GET", "/v1/nope", None, "not_found"),
    ("POST", "/v1/nope", {"x": 1}, "not_found"),
    ("GET", "/v1/jobs/deeper/nope", None, "not_found"),
    ("POST", "/v1/admin/reload", {"artifacts": "/no/such/bundle"},
     "reload_failed"),
]


class TestErrorEnvelope:
    @pytest.mark.parametrize("method,path,body,code", ERROR_CASES)
    def test_canonical_envelope(self, server, method, path, body, code):
        status, headers, parsed = request(server, method, path, body)
        assert_envelope(status, headers, parsed, code)

    def test_invalid_request_names_offending_field(self, server):
        _s, _h, body = request(server, "POST", "/v1/score",
                               {"pairs": "nope"})
        assert body["error"]["detail"] == {"field": "pairs"}

    def test_malformed_json_is_invalid_request(self, server):
        host, port = server.server_address[:2]
        req = urllib.request.Request(
            f"http://{host}:{port}/v1/score", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=30)
        assert exc.value.code == 400
        body = json.loads(exc.value.read())
        assert body["error"]["code"] == "invalid_request"

    def test_payload_too_large_is_413(self, server):
        # Announce an oversized body; the server must reject on the
        # header alone with the canonical envelope, before reading.
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/score")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length",
                                 str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 413
            assert body["error"]["code"] == "payload_too_large"
            assert body["error"]["detail"]["limit_bytes"] == \
                MAX_BODY_BYTES
            assert response.headers["X-Request-Id"] == \
                body["error"]["request_id"]
        finally:
            connection.close()

    def test_negative_content_length_is_rejected(self, server):
        # rfile.read(-1) would block forever; must 400 without reading.
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/score")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", "-1")
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "invalid_request"
        finally:
            connection.close()

    def test_request_ids_are_unique_per_request(self, server):
        _s1, h1, _b1 = request(server, "GET", "/v1/healthz")
        _s2, h2, _b2 = request(server, "GET", "/v1/healthz")
        assert h1["X-Request-Id"] != h2["X-Request-Id"]


class TestBackpressureVsNotReady:
    def test_ingest_queue_full_is_429_with_retry_after(self, bundle_dir):
        service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                                  ServiceConfig(max_wait_ms=1.0,
                                                max_ingest_queue=2))
        service.start()
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            # Stall the ingest worker: it blocks on the taxonomy lock
            # holding one batch, so the bounded queue fills behind it.
            with service._taxonomy_lock:
                saw_backpressure = None
                for _ in range(10):
                    status, headers, body = request(
                        httpd, "POST", "/v1/ingest",
                        {"records": [["apple", "an apple"]]})
                    if status != 202:
                        saw_backpressure = (status, headers, body)
                        break
                assert saw_backpressure is not None, \
                    "queue never filled"
                status, headers, body = saw_backpressure
                assert_envelope(status, headers, body, "backpressure")
                assert status == 429
                assert int(headers["Retry-After"]) >= 1
                assert "pending_batches" in body["error"]["detail"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()
            thread.join(timeout=5)

    def test_legacy_ingest_keeps_503_on_queue_full(self, bundle_dir):
        service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                                  ServiceConfig(max_wait_ms=1.0,
                                                max_ingest_queue=2))
        service.start()
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            with service._taxonomy_lock:
                saw_rejection = None
                for _ in range(10):
                    status, _h, body = request(
                        httpd, "POST", "/ingest",
                        {"records": [["apple", "an apple"]]})
                    if status != 202:
                        saw_rejection = (status, body)
                        break
                assert saw_rejection is not None
                status, body = saw_rejection
                assert status == 503  # historical alias semantics
                assert body["accepted"] is False
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()
            thread.join(timeout=5)

    def test_reload_in_flight_is_503_not_ready(self, server):
        # /v1/admin/reload must not queue behind a running swap — it
        # answers 503 not_ready so callers can tell "busy" from "broken".
        service = server.service
        with service._reload_lock:
            status, headers, body = request(
                server, "POST", "/v1/admin/reload", {"artifacts": None})
        assert_envelope(status, headers, body, "not_ready")
        assert int(headers["Retry-After"]) >= 1

    def test_unstarted_service_is_503_not_ready(self, bundle_dir):
        service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                                  ServiceConfig(max_wait_ms=1.0))
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            status, headers, body = request(
                httpd, "POST", "/v1/score",
                {"pairs": [["fruit", "apple"]]})
            assert_envelope(status, headers, body, "not_ready")
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)


class TestLegacyAliases:
    LEGACY = [route for route in ROUTES if route.legacy_alias]

    @pytest.mark.parametrize(
        "route", LEGACY, ids=[r.legacy_alias for r in LEGACY])
    def test_alias_emits_deprecation_and_successor(self, server, route):
        body = None
        if route.method == "POST":
            body = {}  # legacy permissive defaults: empty body is fine
            if route.handler == "reload":
                pytest.skip("legacy reload with empty body swaps the "
                            "bundle; covered by reload tests")
        status, headers, _parsed = request(
            server, route.method, route.legacy_alias, body)
        assert status < 500, (route.legacy_alias, _parsed)
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == \
            f'<{route.path}>; rel="successor-version"'
        assert "X-Request-Id" in headers

    def test_v1_routes_are_not_deprecated(self, server):
        _s, headers, _b = request(server, "GET", "/v1/healthz")
        assert "Deprecation" not in headers

    def test_legacy_score_keeps_permissive_defaults(self, server):
        status, _h, body = request(server, "POST", "/score", {})
        assert status == 200
        assert body["probabilities"] == []

    def test_legacy_healthz_keeps_raw_shape(self, server):
        # no schema normalisation on the alias: a journal-less service
        # omits "journal" entirely (pre-/v1 monitoring contract)
        _s, _h, body = request(server, "GET", "/healthz")
        assert "journal" not in body
        _s, _h, v1 = request(server, "GET", "/v1/healthz")
        assert v1["journal"] is None  # normalised: nullable, present


class TestOpenApiDocument:
    def test_served_document_lists_every_route(self, server):
        status, _h, doc = request(server, "GET", "/v1/openapi.json")
        assert status == 200
        for route in ROUTES:
            assert route.path in doc["paths"], route.path
            assert route.method.lower() in doc["paths"][route.path]
            if route.legacy_alias:
                alias = doc["paths"][route.legacy_alias]
                assert alias[route.method.lower()]["deprecated"] is True

    def test_routes_declare_their_503s(self, server):
        # reload and job submissions can answer 503 not_ready; the
        # generated document must declare it (no contract drift).
        _s, _h, doc = request(server, "GET", "/v1/openapi.json")
        for path in ("/v1/admin/reload", "/v1/jobs/expand",
                     "/v1/jobs/reload"):
            responses = doc["paths"][path]["post"]["responses"]
            assert "503" in responses, path

    def test_schema_refs_resolve(self, server):
        _s, _h, doc = request(server, "GET", "/v1/openapi.json")
        schemas = doc["components"]["schemas"]
        for path_entry in doc["paths"].values():
            for operation in path_entry.values():
                text = json.dumps(operation)
                for chunk in text.split('"#/components/schemas/')[1:]:
                    name = chunk.split('"', 1)[0]
                    assert name in schemas, name


class TestJobsOverHttp:
    def poll(self, server, job_id, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _s, _h, job = request(server, "GET", f"/v1/jobs/{job_id}")
            if job["status"] in ("succeeded", "failed"):
                return job
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never finished")

    def test_expand_job_completes(self, server, small_world):
        parents = sorted(small_world.existing_taxonomy.roots())
        candidates = {parents[0]: sorted(small_world.new_concepts)[2:4]}
        status, _h, job = request(server, "POST", "/v1/jobs/expand",
                                  {"candidates": candidates})
        assert status == 202
        assert job["status"] in ("pending", "running")
        done = self.poll(server, job["id"])
        assert done["status"] == "succeeded"
        assert done["result"]["scored_candidates"] >= 1
        assert done["error"] is None

    def test_failed_job_stores_stable_code(self, server):
        _s, _h, job = request(server, "POST", "/v1/jobs/reload",
                              {"artifacts": "/no/such/bundle"})
        done = self.poll(server, job["id"])
        assert done["status"] == "failed"
        assert done["error"]["code"] == "reload_failed"
        assert done["result"] is None

    def test_job_listing_is_newest_first(self, server):
        _s, _h, listing = request(server, "GET", "/v1/jobs")
        assert listing["jobs"], "jobs from earlier tests expected"
        times = [job["submitted_at"] for job in listing["jobs"]]
        assert times == sorted(times, reverse=True)
