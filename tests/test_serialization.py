"""Parameter save/load tests."""

import numpy as np
import pytest

from repro.nn import Linear, Sequential, ReLU, load_module, save_module
from repro.plm import BertConfig, MiniBert


class TestSerialization:
    def test_roundtrip_linear_stack(self, tmp_path, rng):
        model = Sequential(Linear(4, 8, rng=rng), ReLU(),
                           Linear(8, 2, rng=rng))
        path = str(tmp_path / "model.npz")
        save_module(model, path)
        clone = Sequential(Linear(4, 8, rng=np.random.default_rng(5)),
                           ReLU(), Linear(8, 2,
                                          rng=np.random.default_rng(6)))
        load_module(clone, path)
        for a, b in zip(model.parameters(), clone.parameters()):
            assert np.allclose(a.data, b.data)

    def test_roundtrip_minibert(self, tmp_path):
        model = MiniBert(BertConfig(vocab_size=20, dim=8, num_layers=1,
                                    num_heads=2, ffn_dim=16, max_len=8,
                                    seed=0))
        path = str(tmp_path / "bert")
        save_module(model, path)
        clone = MiniBert(BertConfig(vocab_size=20, dim=8, num_layers=1,
                                    num_heads=2, ffn_dim=16, max_len=8,
                                    seed=42))
        load_module(clone, path)
        ids = np.array([[2, 5, 3]])
        assert np.allclose(model.encode(ids).data, clone.encode(ids).data)

    def test_mismatched_architecture_fails(self, tmp_path, rng):
        model = Linear(4, 8, rng=rng)
        path = str(tmp_path / "linear.npz")
        save_module(model, path)
        wrong = Linear(4, 9, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)
