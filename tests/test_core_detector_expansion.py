"""Edge classifier, hyponymy detector, and top-down expansion tests."""

import numpy as np
import pytest

from repro.core import (
    DetectorConfig, EdgeClassifier, ExpansionConfig, HyponymyDetector,
    LabeledPair, expand_taxonomy,
)
from repro.gnn import StructuralConfig, StructuralEncoder
from repro.graph import HeteroGraph
from repro.nn import Tensor
from repro.plm import BertConfig, MiniBert, RelationalEncoder, WordTokenizer
from repro.taxonomy import Taxonomy


@pytest.fixture()
def toy_graph():
    g = HeteroGraph()
    g.add_edge("food", "bread", HeteroGraph.TAXONOMY)
    g.add_edge("bread", "toast", HeteroGraph.CLICK, 0.7)
    g.add_edge("bread", "soup", HeteroGraph.CLICK, 0.1)
    g.add_edge("food", "soup", HeteroGraph.TAXONOMY)
    return g


@pytest.fixture()
def toy_structural(toy_graph, rng):
    features = rng.normal(size=(toy_graph.num_nodes, 8))
    return StructuralEncoder(toy_graph, features,
                             StructuralConfig(hidden_dim=8, position_dim=4))


@pytest.fixture()
def toy_relational():
    tok = WordTokenizer(["food", "bread", "toast", "soup", "is", "a"])
    model = MiniBert(BertConfig(vocab_size=tok.vocab_size, dim=8,
                                num_layers=1, num_heads=2, ffn_dim=16,
                                max_len=10, seed=0))
    return RelationalEncoder(model, tok)


class TestEdgeClassifier:
    def test_logit_shape(self, rng):
        clf = EdgeClassifier(6, hidden_dim=4, rng=rng)
        out = clf(Tensor(rng.normal(size=(5, 6))))
        assert out.shape == (5, 2)

    def test_probability_in_unit_interval(self, rng):
        clf = EdgeClassifier(6, hidden_dim=4, rng=rng)
        probs = clf.positive_probability(Tensor(rng.normal(size=(5, 6)))).data
        assert np.all((probs >= 0) & (probs <= 1))


class TestDetectorConfig:
    def test_requires_at_least_one_representation(self):
        with pytest.raises(ValueError):
            DetectorConfig(use_relational=False, use_structural=False)

    def test_missing_encoders_rejected(self, toy_structural):
        with pytest.raises(ValueError):
            HyponymyDetector(None, toy_structural, DetectorConfig())
        with pytest.raises(ValueError):
            HyponymyDetector(None, None,
                             DetectorConfig(use_structural=False))


class TestDetectorTraining:
    def _dataset(self):
        positives = [LabeledPair("bread", "toast", 1, "other"),
                     LabeledPair("food", "bread", 1, "other")]
        negatives = [LabeledPair("toast", "bread", 0, "shuffle"),
                     LabeledPair("bread", "soup", 0, "replace")]
        return positives + negatives

    def test_fit_learns_training_set(self, toy_relational, toy_structural):
        detector = HyponymyDetector(
            toy_relational, toy_structural,
            DetectorConfig(epochs=40, batch_size=4, lr=1e-2, plm_lr=1e-3))
        data = self._dataset()
        history = detector.fit(data)
        assert history[-1] < history[0]
        predictions = detector.predict([s.pair for s in data])
        labels = np.array([s.label for s in data])
        assert (predictions == labels).mean() >= 0.75

    def test_structural_only(self, toy_structural):
        detector = HyponymyDetector(
            None, toy_structural,
            DetectorConfig(use_relational=False, epochs=5, lr=1e-2))
        detector.fit(self._dataset())
        probs = detector.predict_proba([("bread", "toast")])
        assert probs.shape == (1,)

    def test_relational_only(self, toy_relational):
        detector = HyponymyDetector(
            toy_relational, None,
            DetectorConfig(use_structural=False, epochs=3, lr=1e-2))
        detector.fit(self._dataset())
        assert 0.0 <= detector.predict_proba([("food", "soup")])[0] <= 1.0

    def test_frozen_plm_leaves_bert_untouched(self, toy_relational,
                                              toy_structural):
        before = {k: v.copy() for k, v
                  in toy_relational.model.state_dict().items()}
        detector = HyponymyDetector(
            toy_relational, toy_structural,
            DetectorConfig(finetune_plm=False, epochs=3, lr=1e-2))
        detector.fit(self._dataset())
        after = toy_relational.model.state_dict()
        for key, value in before.items():
            assert np.allclose(value, after[key])

    def test_empty_training_set_rejected(self, toy_relational,
                                         toy_structural):
        detector = HyponymyDetector(toy_relational, toy_structural)
        with pytest.raises(ValueError):
            detector.fit([])

    def test_val_early_stopping_restores_best(self, toy_relational,
                                              toy_structural):
        data = self._dataset()
        detector = HyponymyDetector(
            toy_relational, toy_structural,
            DetectorConfig(epochs=6, batch_size=4, lr=1e-2))
        detector.fit(data, val=data)
        # After restore, predictions still work and history has all epochs.
        assert len(detector.history) == 6
        assert detector.predict_proba([("bread", "toast")]).shape == (1,)

    def test_predict_empty(self, toy_relational, toy_structural):
        detector = HyponymyDetector(toy_relational, toy_structural)
        assert detector.predict_proba([]).shape == (0,)

    def test_unknown_concept_handled(self, toy_relational, toy_structural):
        detector = HyponymyDetector(toy_relational, toy_structural)
        probs = detector.predict_proba([("bread", "alien concept")])
        assert probs.shape == (1,)


class OracleScorer:
    """Scores pairs from a ground-truth taxonomy."""

    def __init__(self, truth: Taxonomy):
        self.truth = truth

    def __call__(self, pairs):
        return np.array([
            1.0 if self.truth.is_ancestor(q, i) else 0.0 for q, i in pairs])


class TestExpansion:
    @pytest.fixture()
    def truth(self):
        t = Taxonomy()
        t.add_edge("food", "bread")
        t.add_edge("bread", "toast")
        t.add_edge("toast", "honey toast")
        t.add_edge("food", "soup")
        return t

    @pytest.fixture()
    def existing(self):
        t = Taxonomy()
        t.add_edge("food", "bread")
        t.add_edge("food", "soup")
        return t

    def test_oracle_expansion_attaches_correctly(self, truth, existing):
        candidates = {"bread": ["toast", "soup"],
                      "toast": ["honey toast"],
                      "soup": ["toast"]}
        result = expand_taxonomy(OracleScorer(truth), existing, candidates)
        assert result.taxonomy.has_edge("bread", "toast")
        assert result.taxonomy.has_edge("toast", "honey toast")
        assert not result.taxonomy.has_edge("soup", "toast")

    def test_depth_expansion_through_new_node(self, truth, existing):
        """'honey toast' attaches below 'toast', itself newly attached."""
        candidates = {"bread": ["toast"], "toast": ["honey toast"]}
        result = expand_taxonomy(OracleScorer(truth), existing, candidates)
        assert ("toast", "honey toast") in result.attached_edges

    def test_transitive_pruning(self, truth, existing):
        # Oracle says yes to both bread->toast and bread-> honey toast and
        # toast->honey toast; the long edge must be pruned.
        candidates = {"bread": ["toast", "honey toast"],
                      "toast": ["honey toast"]}
        result = expand_taxonomy(OracleScorer(truth), existing, candidates)
        assert not result.taxonomy.has_edge("bread", "honey toast")
        assert result.taxonomy.is_ancestor("bread", "honey toast")

    def test_no_pruning_when_disabled(self, truth, existing):
        candidates = {"bread": ["toast", "honey toast"],
                      "toast": ["honey toast"]}
        result = expand_taxonomy(OracleScorer(truth), existing, candidates,
                                 ExpansionConfig(prune_transitive=False))
        assert result.taxonomy.has_edge("bread", "honey toast")

    def test_threshold_respected(self, truth, existing):
        scorer = lambda pairs: np.full(len(pairs), 0.6)
        result = expand_taxonomy(scorer, existing, {"bread": ["toast"]},
                                 ExpansionConfig(threshold=0.7))
        assert result.num_attached == 0
        assert result.scored_pairs[("bread", "toast")] == pytest.approx(0.6)

    def test_cycle_never_created(self, existing):
        eager = lambda pairs: np.ones(len(pairs))
        candidates = {"food": ["bread"], "bread": ["food", "soup"],
                      "soup": ["bread"]}
        result = expand_taxonomy(eager, existing, candidates)
        for node in result.taxonomy.nodes:
            assert not result.taxonomy.is_ancestor(node, node)

    def test_max_children_cap(self, existing):
        eager = lambda pairs: np.ones(len(pairs))
        candidates = {"bread": [f"c{i}" for i in range(20)]}
        result = expand_taxonomy(eager, existing, candidates,
                                 ExpansionConfig(max_children_per_node=5))
        assert len(result.taxonomy.children("bread")) == 5

    def test_existing_not_mutated(self, truth, existing):
        edges_before = existing.edge_set()
        expand_taxonomy(OracleScorer(truth), existing, {"bread": ["toast"]})
        assert existing.edge_set() == edges_before
