"""Taxonomy substrate tests: tree, headwords, transitive reduction, vocab."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.taxonomy import (
    ConceptVocabulary, CycleError, Taxonomy, headword,
    is_headword_detectable, is_substring_hyponym, redundant_edges,
    split_edges_by_headword, transitive_reduction,
)


@pytest.fixture()
def tree():
    t = Taxonomy()
    t.add_edge("food", "bread")
    t.add_edge("food", "fruit")
    t.add_edge("bread", "rye bread")
    t.add_edge("bread", "toast")
    t.add_edge("rye bread", "dark rye bread")
    return t


class TestTaxonomyStructure:
    def test_counts(self, tree):
        assert tree.num_nodes == 6
        assert tree.num_edges == 5
        assert len(tree) == 6

    def test_roots_and_leaves(self, tree):
        assert tree.roots() == ["food"]
        assert set(tree.leaves()) == {"fruit", "toast", "dark rye bread"}

    def test_parents_children(self, tree):
        assert tree.children("bread") == {"rye bread", "toast"}
        assert tree.parents("toast") == {"bread"}

    def test_ancestors_descendants(self, tree):
        assert tree.ancestors("dark rye bread") == {"rye bread", "bread",
                                                    "food"}
        assert tree.descendants("bread") == {"rye bread", "toast",
                                             "dark rye bread"}

    def test_is_ancestor(self, tree):
        assert tree.is_ancestor("food", "toast")
        assert not tree.is_ancestor("toast", "food")
        assert not tree.is_ancestor("missing", "toast")

    def test_depth_and_levels(self, tree):
        assert tree.depth() == 4
        levels = tree.level_order()
        assert levels[0] == ["food"]
        assert set(levels[1]) == {"bread", "fruit"}
        assert levels[3] == ["dark rye bread"]

    def test_self_loop_rejected(self, tree):
        with pytest.raises(CycleError):
            tree.add_edge("bread", "bread")

    def test_cycle_rejected(self, tree):
        with pytest.raises(CycleError):
            tree.add_edge("dark rye bread", "food")

    def test_duplicate_edge_is_noop(self, tree):
        tree.add_edge("food", "bread")
        assert tree.num_edges == 5

    def test_multiple_parents_allowed(self, tree):
        tree.add_edge("fruit", "toast")  # DAG, not strictly a tree
        assert tree.parents("toast") == {"bread", "fruit"}

    def test_remove_edge(self, tree):
        tree.remove_edge("bread", "toast")
        assert not tree.has_edge("bread", "toast")
        with pytest.raises(KeyError):
            tree.remove_edge("bread", "toast")

    def test_remove_node(self, tree):
        tree.remove_node("rye bread")
        assert "rye bread" not in tree
        assert "dark rye bread" in tree
        assert tree.parents("dark rye bread") == set()
        with pytest.raises(KeyError):
            tree.remove_node("rye bread")

    def test_copy_independent(self, tree):
        clone = tree.copy()
        clone.add_edge("food", "soup")
        assert "soup" not in tree
        assert tree.edge_set() <= clone.edge_set()

    def test_subtree(self, tree):
        sub = tree.subtree("bread")
        assert sub.nodes == {"bread", "rye bread", "toast", "dark rye bread"}
        assert sub.num_edges == 3

    def test_constructor_from_edges(self):
        t = Taxonomy(edges=[("a", "b"), ("b", "c")], nodes=["lonely"])
        assert t.num_nodes == 4
        assert t.is_ancestor("a", "c")

    def test_repr(self, tree):
        assert "Taxonomy" in repr(tree)


class TestHeadword:
    def test_headword_last_token(self):
        assert headword("dark rye bread") == "bread"
        assert headword("toast") == "toast"
        with pytest.raises(ValueError):
            headword("   ")

    @pytest.mark.parametrize("parent,child,expected", [
        ("bread", "rye bread", True),
        ("rye bread", "dark rye bread", True),
        ("bread", "toast", False),
        ("bread", "bread", False),        # not strict
        ("rye bread", "bread", False),    # wrong direction
        ("bread", "breadstick pile", False),  # token, not substring
    ])
    def test_is_headword_detectable(self, parent, child, expected):
        assert is_headword_detectable(parent, child) is expected

    def test_substring_rule(self):
        assert is_substring_hyponym("bread", "breadstick")
        assert not is_substring_hyponym("bread", "bread")
        assert not is_substring_hyponym("toast", "bread")

    def test_split_edges(self, tree):
        head, others = split_edges_by_headword(tree)
        assert ("bread", "rye bread") in head
        assert ("bread", "toast") in others
        assert len(head) + len(others) == tree.num_edges


class TestTransitiveReduction:
    def test_redundant_edge_found_and_removed(self, tree):
        tree.add_edge("food", "dark rye bread")  # implied via bread/rye
        assert ("food", "dark rye bread") in redundant_edges(tree)
        reduced = transitive_reduction(tree)
        assert not reduced.has_edge("food", "dark rye bread")
        assert reduced.is_ancestor("food", "dark rye bread")

    def test_no_redundancy_untouched(self, tree):
        reduced = transitive_reduction(tree)
        assert reduced.edge_set() == tree.edge_set()

    def test_two_step_skip(self):
        t = Taxonomy(edges=[("a", "b"), ("b", "c"), ("a", "c")])
        reduced = transitive_reduction(t)
        assert reduced.edge_set() == {("a", "b"), ("b", "c")}


class TestConceptVocabulary:
    def test_add_and_lookup(self):
        vocab = ConceptVocabulary(["bread", "rye bread"])
        assert "bread" in vocab
        assert len(vocab) == 2
        assert vocab.with_token("bread") == {"bread", "rye bread"}

    def test_add_idempotent(self):
        vocab = ConceptVocabulary()
        vocab.add("bread")
        vocab.add("bread")
        assert len(vocab) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ConceptVocabulary(["  "])

    def test_discard(self):
        vocab = ConceptVocabulary(["bread", "rye bread"])
        vocab.discard("rye bread")
        assert "rye bread" not in vocab
        assert vocab.with_token("rye") == set()
        vocab.discard("missing")  # no error

    def test_candidates_in_text(self):
        vocab = ConceptVocabulary(["bread", "rye bread", "soup"])
        found = vocab.candidates_in_text("fresh rye bread combo")
        assert found == ["bread", "rye bread"]

    def test_iteration_order(self):
        vocab = ConceptVocabulary(["b", "a", "c"])
        assert vocab.concepts() == ["b", "a", "c"]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)),
                min_size=1, max_size=30))
def test_taxonomy_acyclic_invariant_property(pairs):
    """Whatever edges are inserted, the structure never admits a cycle."""
    t = Taxonomy()
    for a, b in pairs:
        if a == b:
            continue
        try:
            t.add_edge(f"n{a}", f"n{b}")
        except CycleError:
            pass
    for node in t.nodes:
        assert not t.is_ancestor(node, node)
    # level_order covers every node exactly once
    seen = [n for level in t.level_order() for n in level]
    assert sorted(seen) == sorted(t.nodes)
