"""Ingest-journal tests: durability, rotation, corruption, replay.

Covers the write path (fsync batching, segment rotation, sequence
continuation across reopen), every corruption mode the ISSUE names
(truncated final record, CRC mismatch mid-file, empty segment), and the
service-level crash-recovery contract: a journal-backed service that
dies without cleanup is rebuilt exactly by replay.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.serving import (
    ArtifactBundle, IngestJournal, JournalCorruptionWarning, JournalRecord,
    ServiceConfig, TaxonomyService,
)


def record_data(i):
    return {"records": [["query", f"item {i}", 1]]}


class TestAppendReplay:
    def test_roundtrip_preserves_order_and_payload(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        for i in range(5):
            journal.append("ingest", record_data(i))
        journal.append("expand", {"candidates": {"a": ["b"]}})
        journal.close()
        replayed = list(IngestJournal(str(tmp_path)).replay())
        assert [r.seq for r in replayed] == list(range(6))
        assert replayed[0].data == record_data(0)
        assert replayed[-1].type == "expand"

    def test_wire_format_is_crc_stamped_json(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.append("ingest", record_data(0))
        journal.close()
        with open(journal.segments()[0], "rb") as handle:
            payload = json.loads(handle.readline())
        assert set(payload) == {"seq", "type", "data", "crc"}
        assert JournalRecord.decode(
            json.dumps(payload).encode()).data == record_data(0)

    def test_segment_rotation(self, tmp_path):
        journal = IngestJournal(str(tmp_path), max_segment_bytes=150)
        for i in range(10):
            journal.append("ingest", record_data(i))
        journal.close()
        assert len(journal.segments()) > 1
        # A rotation after the final append opens its new segment lazily,
        # so the file count can trail the rotation count by one.
        assert journal.stats.rotations >= len(journal.segments()) - 1
        replayed = list(IngestJournal(str(tmp_path)).replay())
        assert [r.seq for r in replayed] == list(range(10))

    def test_sequence_continues_across_reopen(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.append("ingest", record_data(0))
        journal.close()
        reopened = IngestJournal(str(tmp_path))
        assert reopened.next_seq == 1
        reopened.append("ingest", record_data(1))
        reopened.close()
        assert [r.seq for r in IngestJournal(str(tmp_path)).replay()] \
            == [0, 1]

    def test_fsync_batching(self, tmp_path):
        journal = IngestJournal(str(tmp_path), fsync_every=4)
        for i in range(10):
            journal.append("ingest", record_data(i))
        assert journal.stats.fsyncs == 2  # at appends 4 and 8
        journal.flush()
        assert journal.stats.fsyncs == 3  # the pending 2 records
        journal.flush()  # nothing pending: no extra fsync
        assert journal.stats.fsyncs == 3
        journal.close()

    def test_append_after_close_rejected(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.close()
        with pytest.raises(RuntimeError):
            journal.append("ingest", record_data(0))


class TestCorruption:
    def test_truncated_final_record_recovers(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        for i in range(3):
            journal.append("ingest", record_data(i))
        journal.close()
        with open(journal.segments()[-1], "ab") as handle:
            handle.write(b'{"seq": 3, "type": "inge')  # torn mid-write
        with pytest.warns(JournalCorruptionWarning):
            recovered = IngestJournal(str(tmp_path))
        assert recovered.next_seq == 3
        assert [r.seq for r in recovered.replay()] == [0, 1, 2]
        # New appends after recovery are visible to replay.
        recovered.append("ingest", record_data(3))
        recovered.close()
        assert [r.seq for r in IngestJournal(str(tmp_path)).replay()] \
            == [0, 1, 2, 3]

    def test_crc_mismatch_mid_file_stops_segment(self, tmp_path):
        journal = IngestJournal(str(tmp_path), max_segment_bytes=10 ** 9)
        for i in range(4):
            journal.append("ingest", record_data(i))
        journal.close()
        path = journal.segments()[0]
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        index = raw.find(b"item 1")
        raw[index:index + 1] = b"X"  # payload no longer matches its CRC
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.warns(JournalCorruptionWarning):
            replayed = list(IngestJournal(str(tmp_path)).replay())
        # Record 0 survives; 1 is corrupt; the rest of the segment is
        # untrusted.
        assert [r.seq for r in replayed] == [0]

    def test_corruption_in_old_segment_keeps_later_segments(self, tmp_path):
        journal = IngestJournal(str(tmp_path), max_segment_bytes=150)
        for i in range(10):
            journal.append("ingest", record_data(i))
        journal.close()
        segments = journal.segments()
        assert len(segments) >= 3
        with open(segments[0], "rb") as handle:
            raw = bytearray(handle.read())
        raw[raw.find(b"item"):raw.find(b"item") + 1] = b"X"
        with open(segments[0], "wb") as handle:
            handle.write(bytes(raw))
        with pytest.warns(JournalCorruptionWarning):
            replayed = list(IngestJournal(str(tmp_path)).replay())
        # Later segments still replay; only the corrupt segment's tail is
        # lost.
        assert replayed[-1].seq == 9
        assert len(replayed) < 10

    def test_empty_segment_skipped_with_warning(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.append("ingest", record_data(0))
        journal.close()
        open(os.path.join(str(tmp_path), "journal-00000042.jsonl"),
             "wb").close()
        with pytest.warns(JournalCorruptionWarning, match="empty"):
            replayed = list(IngestJournal(str(tmp_path)).replay())
        assert [r.seq for r in replayed] == [0]

    def test_corruption_counted_once_across_recovery_and_replay(
            self, tmp_path):
        # Corrupt a NON-final segment: recovery cannot truncate it away,
        # so both the recovery scan and every replay() revisit it.
        journal = IngestJournal(str(tmp_path), max_segment_bytes=150)
        for i in range(6):
            journal.append("ingest", record_data(i))
        journal.close()
        assert len(journal.segments()) > 1
        path = journal.segments()[0]
        with open(path, "rb") as handle:
            raw = bytearray(handle.read())
        index = raw.find(b"item 1")
        raw[index:index + 1] = b"X"
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.warns(JournalCorruptionWarning):
            reopened = IngestJournal(str(tmp_path))
            list(reopened.replay())
            list(reopened.replay())  # scanning again must not re-count
        assert reopened.stats_snapshot().corrupt_records == 1

    def test_corrupt_counters_exported(self, tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.append("ingest", record_data(0))
        journal.close()
        with open(journal.segments()[-1], "ab") as handle:
            handle.write(b"garbage not json")
        with pytest.warns(JournalCorruptionWarning):
            recovered = IngestJournal(str(tmp_path))
        stats = recovered.stats_snapshot().as_dict()
        assert stats["corrupt_records"] >= 1
        assert stats["truncated_bytes"] > 0


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("journal_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


class TestServiceRecovery:
    def test_crash_and_replay_restores_state(self, bundle_dir,
                                             small_click_log):
        import tempfile
        journal_dir = tempfile.mkdtemp(prefix="svc_journal_")
        service = TaxonomyService(
            ArtifactBundle.load(bundle_dir), ServiceConfig(),
            journal=IngestJournal(journal_dir, fsync_every=1))
        service.start()
        records = [[q, i, c] for (q, i), c in
                   sorted(small_click_log.counts.items())[:40]]
        assert service.ingest(records[:20], sync=True)["accepted"]
        assert service.ingest(records[20:], sync=True)["accepted"]
        service.expand({"fruit": ["apple"]})
        before = service.taxonomy_state()
        # Simulated kill -9: drop the service without stop()/close().
        del service

        restarted = TaxonomyService(
            ArtifactBundle.load(bundle_dir), ServiceConfig(),
            journal=IngestJournal(journal_dir))
        summary = restarted.replay_journal()
        assert summary == {"ingest": 2, "expand": 1, "reload": 0,
                           "skipped": 0,
                           "taxonomy_edges": before["stats"]["edges"]}
        after = restarted.taxonomy_state()
        assert after["stats"] == before["stats"]
        assert {tuple(e) for e in after["edges"]} == \
            {tuple(e) for e in before["edges"]}
        restarted.stop()

    def test_replay_requires_journal(self, bundle_dir):
        service = TaxonomyService(ArtifactBundle.load(bundle_dir))
        with pytest.raises(RuntimeError):
            service.replay_journal()

    def test_replay_tolerates_unknown_record_types(self, bundle_dir,
                                                   tmp_path):
        journal = IngestJournal(str(tmp_path))
        journal.append("wat", {"x": 1})
        journal.append("ingest", {"records": [["fruit", "apple", 1]]})
        journal.close()
        service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                                  journal=IngestJournal(str(tmp_path)))
        with pytest.warns(UserWarning, match="unknown journal record"):
            summary = service.replay_journal()
        assert summary["skipped"] == 1
        assert summary["ingest"] == 1
        service.stop()


class TestKillDashNine:
    """The acceptance scenario: SIGKILL a real server mid-ingest."""

    @pytest.mark.skipif(not hasattr(signal, "SIGKILL"),
                        reason="needs SIGKILL")
    def test_sigkill_then_restart_matches_snapshot(self, bundle_dir,
                                                   small_click_log,
                                                   tmp_path):
        journal_dir = str(tmp_path / "journal")
        records = [[q, i, c] for (q, i), c in
                   sorted(small_click_log.counts.items())[:30]]

        def start_server():
            env = dict(os.environ,
                       PYTHONPATH="src" + os.pathsep
                       + os.environ.get("PYTHONPATH", ""))
            process = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--artifacts", bundle_dir, "--journal-dir", journal_dir,
                 "--journal-fsync", "1", "--port", "0", "--quiet"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                cwd=os.path.dirname(os.path.dirname(__file__)), env=env,
                text=True)
            port = None
            deadline = time.time() + 120
            while time.time() < deadline:
                line = process.stdout.readline()
                if "repro serving on http://" in line:
                    port = int(line.split("http://", 1)[1]
                               .split(maxsplit=1)[0].rsplit(":", 1)[1])
                    break
            assert port, "server did not announce a port"
            return process, port

        def call(port, path, payload=None):
            data = None if payload is None else \
                json.dumps(payload).encode()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}", data=data,
                headers={"Content-Type": "application/json"}
                if data else {})
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.loads(response.read())

        process, port = start_server()
        try:
            assert call(port, "/ingest",
                        {"records": records, "sync": True})["accepted"]
            snapshot = call(port, "/taxonomy")
        finally:
            process.kill()  # SIGKILL: no atexit, no flush, no close
            process.wait(timeout=30)

        process, port = start_server()
        try:
            restored = call(port, "/taxonomy")
        finally:
            process.kill()
            process.wait(timeout=30)
        assert restored["stats"] == snapshot["stats"]
        assert {tuple(e) for e in restored["edges"]} == \
            {tuple(e) for e in snapshot["edges"]}


class TestSnapshotAwareReplay:
    """``replay(after_seq=...)`` must bound work by the tail, not by
    total history — covered segments are skipped without being opened."""

    def _filled_journal(self, tmp_path, count=12):
        journal = IngestJournal(str(tmp_path), max_segment_bytes=150)
        for i in range(count):
            journal.append("ingest", record_data(i))
        journal.close()
        return journal

    def test_after_seq_yields_exact_tail(self, tmp_path):
        self._filled_journal(tmp_path)
        journal = IngestJournal(str(tmp_path))
        assert [r.seq for r in journal.replay(after_seq=7)] == [8, 9, 10, 11]
        assert [r.seq for r in journal.replay(after_seq=11)] == []
        assert [r.seq for r in journal.replay(after_seq=-1)] == \
            list(range(12))
        journal.close()

    def test_covered_segments_are_never_opened(self, tmp_path,
                                               monkeypatch):
        import warnings as warnings_module
        self._filled_journal(tmp_path)
        journal = IngestJournal(str(tmp_path))
        segments = journal.segments()
        assert len(segments) >= 3
        # Vandalise every pre-tail segment: if replay so much as parsed
        # one of them it would raise (warnings promoted to errors below).
        cut = max(r.seq for r, _ in journal._scan_segment(segments[-2]))
        for path in segments[:-2]:
            with open(path, "wb") as handle:
                handle.write(b"\x00 this segment must never be read \x00")
        opened = []
        original = journal._scan_segment

        def counting_scan(path):
            opened.append(os.path.basename(path))
            return original(path)

        monkeypatch.setattr(journal, "_scan_segment", counting_scan)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error",
                                         JournalCorruptionWarning)
            tail = [r.seq for r in journal.replay(after_seq=cut)]
        assert tail == list(range(cut + 1, 12))
        assert opened == [os.path.basename(p) for p in segments[-1:]]
        assert journal.stats_snapshot().skipped_segments >= \
            len(segments) - 1
        journal.close()

    def test_reopen_after_compaction_keeps_sequences_monotonic(
            self, tmp_path):
        """The sidecar index persists the compaction high-water mark, so
        sequence numbers stay monotonic across restarts — even when the
        compacted history can no longer be rescanned."""
        self._filled_journal(tmp_path)
        journal = IngestJournal(str(tmp_path))
        # Covers everything, but the active (final) segment is spared.
        journal.compact(journal.next_seq - 1)
        compacted_through = journal.compacted_through
        journal.close()
        reopened = IngestJournal(str(tmp_path))
        assert reopened.compacted_through == compacted_through
        assert reopened.first_seq_on_disk() == compacted_through + 1
        record = reopened.append("ingest", record_data(99))
        assert record.seq == 12  # continues after the compacted history
        reopened.close()
        # Extreme case: every segment gone, only the index survives —
        # the next sequence is still seeded past the compacted history.
        for path in reopened.segments():
            os.remove(path)
        bare = IngestJournal(str(tmp_path))
        assert bare.append("ingest", record_data(0)).seq == \
            compacted_through + 1
        bare.close()
