"""PLM substrate tests: tokenizer, segmentation, masking, MiniBert, pretrain."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.plm import (
    BertConfig, DictSegmenter, MiniBert, PretrainConfig, RelationalEncoder,
    WordTokenizer, concept_level_mask, pretrain_mlm, token_level_mask,
)
from repro.taxonomy import ConceptVocabulary


@pytest.fixture(scope="module")
def tokenizer():
    corpus = ["the toast was fresh", "bread is nice", "rye bread is a bread"]
    return WordTokenizer.from_corpus(corpus, extra_words=["cheese", "bun"])


@pytest.fixture(scope="module")
def segmenter():
    return DictSegmenter(ConceptVocabulary(
        ["bread", "rye bread", "toast", "cheese bun"]))


class TestTokenizer:
    def test_specials_first(self, tokenizer):
        assert tokenizer.pad_id == 0
        assert tokenizer.unk_id == 1
        assert tokenizer.cls_id == 2
        assert tokenizer.sep_id == 3
        assert tokenizer.mask_id == 4
        assert tokenizer.num_special == 5

    def test_roundtrip(self, tokenizer):
        ids = tokenizer.encode("rye bread is a bread")
        assert ids[0] == tokenizer.cls_id
        assert ids[-1] == tokenizer.sep_id
        assert tokenizer.decode(ids) == "rye bread is a bread"

    def test_unknown_maps_to_unk(self, tokenizer):
        ids = tokenizer.encode("zzz", add_special=False)
        assert ids == [tokenizer.unk_id]

    def test_truncation_keeps_sep(self, tokenizer):
        ids = tokenizer.encode("the toast was fresh bread is nice",
                               max_len=5)
        assert len(ids) == 5
        assert ids[-1] == tokenizer.sep_id

    def test_pad_batch(self, tokenizer):
        ids, mask = tokenizer.pad_batch([[2, 5, 3], [2, 3]])
        assert ids.shape == (2, 3)
        assert mask.tolist() == [[1, 1, 1], [1, 1, 0]]
        assert ids[1, 2] == tokenizer.pad_id

    def test_pad_batch_empty_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            tokenizer.pad_batch([])

    def test_min_count_filter(self):
        tok = WordTokenizer.from_corpus(["a a b"], min_count=2)
        assert tok.token_to_id("a") != tok.unk_id
        assert tok.token_to_id("b") == tok.unk_id

    def test_len_and_repr(self, tokenizer):
        assert len(tokenizer) == tokenizer.vocab_size
        assert "WordTokenizer" in repr(tokenizer)


class TestSegmentation:
    def test_finds_longest_match(self, segmenter):
        spans = segmenter.segment("the rye bread was great")
        assert len(spans) == 1
        assert spans[0].concept == "rye bread"
        assert (spans[0].start, spans[0].end) == (1, 3)

    def test_multiple_mentions(self, segmenter):
        spans = segmenter.segment("toast beats cheese bun today")
        assert [s.concept for s in spans] == ["toast", "cheese bun"]

    def test_non_overlapping(self, segmenter):
        # "rye bread" consumes "bread"; no second span inside it
        spans = segmenter.segment("rye bread")
        assert len(spans) == 1

    def test_no_mentions(self, segmenter):
        assert segmenter.segment("nothing relevant here") == []


class TestMasking:
    def test_token_level_invariants(self, tokenizer, rng):
        ids = tokenizer.encode("the toast was fresh bread is nice")
        inputs, labels, mask = token_level_mask(ids, tokenizer, rng)
        assert labels.tolist() == ids
        assert mask.sum() >= 1
        # [CLS]/[SEP] never selected
        assert mask[0] == 0 and mask[-1] == 0
        # non-masked positions unchanged
        for i, m in enumerate(mask):
            if not m:
                pass  # 10% "keep" rule means masked can equal original too

    def test_concept_level_masks_whole_mention(self, tokenizer, segmenter):
        rng = np.random.default_rng(0)
        sentence = "the rye bread was fresh"
        inputs, labels, mask = concept_level_mask(
            sentence, tokenizer, segmenter, rng, mask_probability=1.0)
        tokens = sentence.split()
        start = tokens.index("rye") + 1  # offset for [CLS]
        assert mask[start] == 1 and mask[start + 1] == 1
        assert inputs[start] == tokenizer.mask_id
        assert inputs[start + 1] == tokenizer.mask_id
        assert labels[start] == tokenizer.token_to_id("rye")

    def test_concept_level_fallback_without_mentions(self, tokenizer,
                                                     segmenter):
        rng = np.random.default_rng(0)
        inputs, labels, mask = concept_level_mask(
            "nothing relevant here at all", tokenizer, segmenter, rng)
        assert mask.sum() >= 1  # fell back to token-level

    def test_at_least_one_mention_masked(self, tokenizer, segmenter):
        rng = np.random.default_rng(0)
        _inputs, _labels, mask = concept_level_mask(
            "the toast was fresh", tokenizer, segmenter, rng,
            mask_probability=0.0)
        assert mask.sum() >= 1


class TestMiniBert:
    @pytest.fixture(scope="class")
    def model(self, tokenizer):
        return MiniBert(BertConfig(vocab_size=tokenizer.vocab_size, dim=16,
                                   num_layers=1, num_heads=2, ffn_dim=32,
                                   max_len=12, seed=0))

    def test_shapes(self, model, tokenizer):
        ids, mask = tokenizer.pad_batch(
            [tokenizer.encode("bread is nice"),
             tokenizer.encode("the toast was fresh")])
        hidden = model.encode(ids, mask)
        assert hidden.shape == (2, ids.shape[1], 16)
        assert model.cls_representation(ids, mask).shape == (2, 16)
        assert model.mlm_logits(ids, mask).shape == \
            (2, ids.shape[1], tokenizer.vocab_size)

    def test_sequence_too_long_rejected(self, model):
        with pytest.raises(ValueError):
            model.encode(np.zeros((1, 50), dtype=np.int64))

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            BertConfig(vocab_size=10, dim=10, num_heads=3)

    def test_segment_embeddings_change_output(self, model, tokenizer):
        ids, mask = tokenizer.pad_batch([tokenizer.encode("bread is nice")])
        seg0 = np.zeros_like(ids)
        seg1 = np.ones_like(ids)
        out0 = model.encode(ids, mask, seg0).data
        out1 = model.encode(ids, mask, seg1).data
        assert not np.allclose(out0, out1)

    def test_segment_shape_mismatch(self, model, tokenizer):
        ids, mask = tokenizer.pad_batch([tokenizer.encode("bread is nice")])
        with pytest.raises(ValueError):
            model.encode(ids, mask, np.zeros((2, 2), dtype=np.int64))


class TestPretraining:
    def test_loss_decreases(self, small_world, small_ugc):
        concept_tokens = [t for c in small_world.vocabulary
                          for t in c.split()]
        tok = WordTokenizer.from_corpus(small_ugc,
                                        extra_words=concept_tokens)
        seg = DictSegmenter(small_world.vocabulary)
        model = MiniBert(BertConfig(vocab_size=tok.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=20, seed=0))
        history = pretrain_mlm(model, small_ugc, tok, seg,
                               PretrainConfig(steps=60, batch_size=8,
                                              strategy="concept"))
        assert len(history) == 60
        assert np.mean(history[-10:]) < np.mean(history[:10])

    def test_token_strategy_needs_no_segmenter(self, small_ugc):
        tok = WordTokenizer.from_corpus(small_ugc)
        model = MiniBert(BertConfig(vocab_size=tok.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=20, seed=0))
        history = pretrain_mlm(model, small_ugc, tok, None,
                               PretrainConfig(steps=5, strategy="token"))
        assert len(history) == 5

    def test_concept_strategy_requires_segmenter(self, small_ugc):
        tok = WordTokenizer.from_corpus(small_ugc)
        model = MiniBert(BertConfig(vocab_size=tok.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=20, seed=0))
        with pytest.raises(ValueError):
            pretrain_mlm(model, small_ugc, tok, None,
                         PretrainConfig(steps=2, strategy="concept"))

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            PretrainConfig(strategy="wild")

    def test_empty_corpus_rejected(self, tokenizer):
        model = MiniBert(BertConfig(vocab_size=tokenizer.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=12))
        with pytest.raises(ValueError):
            pretrain_mlm(model, [], tokenizer, None,
                         PretrainConfig(strategy="token"))


class TestRelationalEncoder:
    @pytest.fixture(scope="class")
    def encoder(self, tokenizer):
        model = MiniBert(BertConfig(vocab_size=tokenizer.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=12, seed=0))
        return RelationalEncoder(model, tokenizer)

    def test_pair_ids_template(self, encoder, tokenizer):
        ids, segments = encoder.pair_ids("bread", "cheese bun")
        decoded = [tokenizer.id_to_token(i) for i in ids]
        assert decoded == ["[CLS]", "bread", "is", "a", "cheese", "bun",
                           "[SEP]"]
        assert segments == [0, 0, 0, 0, 1, 1, 1]

    def test_pair_ids_without_template(self, tokenizer):
        model = MiniBert(BertConfig(vocab_size=tokenizer.vocab_size, dim=16,
                                    num_layers=1, num_heads=2, ffn_dim=32,
                                    max_len=12, seed=0))
        encoder = RelationalEncoder(model, tokenizer, use_template=False)
        ids, segments = encoder.pair_ids("bread", "toast")
        decoded = [tokenizer.id_to_token(i) for i in ids]
        assert decoded == ["[CLS]", "bread", "[SEP]", "toast", "[SEP]"]
        assert segments == [0, 0, 0, 1, 1]

    def test_encode_pairs_shape(self, encoder):
        out = encoder.encode_pairs([("bread", "toast"),
                                    ("bread", "cheese bun")])
        assert out.shape == (2, 16)

    def test_direction_sensitivity(self, encoder):
        forward = encoder.encode_pairs([("bread", "toast")]).data
        backward = encoder.encode_pairs([("toast", "bread")]).data
        assert not np.allclose(forward, backward)

    def test_concept_embedding_matrix(self, encoder):
        matrix = encoder.concept_embedding_matrix(["bread", "toast"])
        assert matrix.shape == (2, 16)
        for pool in ("cls", "mean"):
            assert encoder.encode_concepts(["bread"], pool=pool).shape \
                == (1, 16)
        with pytest.raises(ValueError):
            encoder.encode_concepts(["bread"], pool="sum")

    def test_truncation_of_long_concepts(self, encoder, tokenizer):
        long_concept = " ".join(["bread"] * 30)
        ids, segments = encoder.pair_ids(long_concept, "toast")
        assert len(ids) == encoder.model.config.max_len
        assert len(segments) == len(ids)
        assert ids[-1] == tokenizer.sep_id


@settings(max_examples=25, deadline=None)
@given(st.lists(st.sampled_from(["bread", "toast", "rye", "was", "zzz"]),
                min_size=1, max_size=10))
def test_tokenizer_roundtrip_property(words):
    tok = WordTokenizer(["bread", "toast", "rye", "was"])
    sentence = " ".join(words)
    ids = tok.encode(sentence)
    decoded = tok.decode(ids).split()
    expected = [w if w != "zzz" else "[UNK]" for w in words]
    # [UNK] is filtered by decode(skip_special=True)? No: UNK is special.
    assert decoded == [w for w in expected if w != "[UNK]"]
