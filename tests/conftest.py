"""Shared fixtures: a small deterministic world and derived artifacts.

Session-scoped where construction is expensive so the suite stays fast.

With ``REPRO_LOCKWATCH=1`` the runtime lock sanitizer
(:mod:`repro.devtools.lockwatch`) is installed *before any repro module
is imported* — patching ``threading.Lock``/``RLock`` must precede the
``from threading import ...``-style imports in the code under watch —
and a session-scoped fixture asserts a clean report (no lock-order
inversions, no guarded-attribute violations) at teardown.
"""

from __future__ import annotations

import os

_LOCKWATCH_ENABLED = os.environ.get("REPRO_LOCKWATCH", "").strip() \
    not in ("", "0", "off", "false", "no")
if _LOCKWATCH_ENABLED:
    from repro.devtools import lockwatch as _lockwatch

    _lockwatch.install()

import numpy as np
import pytest

from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world, generate_click_logs,
    generate_ugc,
)

if _LOCKWATCH_ENABLED:
    # Declared # guarded-by: contracts become runtime __setattr__
    # assertions on the classes that carry them.
    from repro.api import jobs as _jobs_mod
    from repro.infer import engine as _engine_mod
    from repro.retrieval import index as _index_mod
    from repro.serving import cluster as _cluster_mod
    from repro.serving import ingest as _ingest_mod
    from repro.serving import scorer as _scorer_mod
    from repro.serving import service as _service_mod

    _lockwatch.guard_declared_classes(
        _jobs_mod, _engine_mod, _index_mod, _cluster_mod, _ingest_mod,
        _scorer_mod, _service_mod)

    @pytest.fixture(scope="session", autouse=True)
    def _lockwatch_clean_session():
        """Fail the session if the sanitizer recorded any violation."""
        yield
        report = _lockwatch.report()
        problems = report["inversions"] + report["guard_violations"]
        assert not problems, (
            f"lockwatch recorded {len(report['inversions'])} lock-order "
            f"inversion(s) and {len(report['guard_violations'])} "
            f"guard violation(s): {problems}")


@pytest.fixture(scope="session")
def small_world():
    """A compact fruits world (~100 nodes) used across the suite."""
    return build_world(WorldConfig(
        domain="fruits", seed=7, num_categories=6,
        children_per_category=(4, 7), max_depth=4,
        headword_fraction=0.8, children_per_node=(0, 3),
        holdout_fraction=0.2))


@pytest.fixture(scope="session")
def small_click_log(small_world):
    return generate_click_logs(small_world, ClickLogConfig(
        seed=5, clicks_per_query=40))


@pytest.fixture(scope="session")
def small_ugc(small_world):
    return generate_ugc(small_world, UgcConfig(seed=5,
                                               sentences_per_edge=2.0))


@pytest.fixture(scope="session")
def tiny_fitted_pipeline(small_world, small_click_log, small_ugc):
    """A minimally-trained pipeline for serving/export tests.

    Training quality is irrelevant for these tests — only that every
    component is populated and scoring is deterministic.
    """
    from repro.core import (
        DetectorConfig, PipelineConfig, TaxonomyExpansionPipeline,
    )
    from repro.gnn import ContrastiveConfig, StructuralConfig
    from repro.plm import PretrainConfig

    config = PipelineConfig(
        seed=0, bert_dim=16, bert_ffn=32,
        pretrain=PretrainConfig(steps=10, batch_size=8, strategy="concept"),
        contrastive=ContrastiveConfig(steps=3),
        structural=StructuralConfig(hidden_dim=8, position_dim=2),
        detector=DetectorConfig(epochs=1, batch_size=16))
    pipeline = TaxonomyExpansionPipeline(config)
    pipeline.fit(small_world.existing_taxonomy, small_world.vocabulary,
                 small_click_log, small_ugc)
    return pipeline


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
