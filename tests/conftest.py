"""Shared fixtures: a small deterministic world and derived artifacts.

Session-scoped where construction is expensive so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world, generate_click_logs,
    generate_ugc,
)


@pytest.fixture(scope="session")
def small_world():
    """A compact fruits world (~100 nodes) used across the suite."""
    return build_world(WorldConfig(
        domain="fruits", seed=7, num_categories=6,
        children_per_category=(4, 7), max_depth=4,
        headword_fraction=0.8, children_per_node=(0, 3),
        holdout_fraction=0.2))


@pytest.fixture(scope="session")
def small_click_log(small_world):
    return generate_click_logs(small_world, ClickLogConfig(
        seed=5, clicks_per_query=40))


@pytest.fixture(scope="session")
def small_ugc(small_world):
    return generate_ugc(small_world, UgcConfig(seed=5,
                                               sentences_per_edge=2.0))


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
