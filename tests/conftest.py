"""Shared fixtures: a small deterministic world and derived artifacts.

Session-scoped where construction is expensive so the suite stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world, generate_click_logs,
    generate_ugc,
)


@pytest.fixture(scope="session")
def small_world():
    """A compact fruits world (~100 nodes) used across the suite."""
    return build_world(WorldConfig(
        domain="fruits", seed=7, num_categories=6,
        children_per_category=(4, 7), max_depth=4,
        headword_fraction=0.8, children_per_node=(0, 3),
        holdout_fraction=0.2))


@pytest.fixture(scope="session")
def small_click_log(small_world):
    return generate_click_logs(small_world, ClickLogConfig(
        seed=5, clicks_per_query=40))


@pytest.fixture(scope="session")
def small_ugc(small_world):
    return generate_ugc(small_world, UgcConfig(seed=5,
                                               sentences_per_edge=2.0))


@pytest.fixture(scope="session")
def tiny_fitted_pipeline(small_world, small_click_log, small_ugc):
    """A minimally-trained pipeline for serving/export tests.

    Training quality is irrelevant for these tests — only that every
    component is populated and scoring is deterministic.
    """
    from repro.core import (
        DetectorConfig, PipelineConfig, TaxonomyExpansionPipeline,
    )
    from repro.gnn import ContrastiveConfig, StructuralConfig
    from repro.plm import PretrainConfig

    config = PipelineConfig(
        seed=0, bert_dim=16, bert_ffn=32,
        pretrain=PretrainConfig(steps=10, batch_size=8, strategy="concept"),
        contrastive=ContrastiveConfig(steps=3),
        structural=StructuralConfig(hidden_dim=8, position_dim=2),
        detector=DetectorConfig(epochs=1, batch_size=16))
    pipeline = TaxonomyExpansionPipeline(config)
    pipeline.fit(small_world.existing_taxonomy, small_world.vocabulary,
                 small_click_log, small_ugc)
    return pipeline


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
