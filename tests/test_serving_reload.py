"""Hot-reload and scorer-resilience tests.

Covers the zero-downtime artifact swap (service level and over HTTP,
including under concurrent scoring load), the smoke-test guard that
keeps a bad bundle out, SIGHUP wiring, the engine drain hook, and the
BatchingScorer worker-death fix (queued requests must fail loudly and
be counted, never silently dropped).
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    ArtifactBundle, BatchingScorer, ServiceConfig, TaxonomyService,
    make_server,
)


@pytest.fixture(scope="module")
def bundles(tiny_fitted_pipeline, small_world, tmp_path_factory):
    """Two bundle directories: v1 as fitted, v2 with shifted weights."""
    v1 = str(tmp_path_factory.mktemp("reload_v1"))
    ArtifactBundle.export(tiny_fitted_pipeline, v1,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    v2 = str(tmp_path_factory.mktemp("reload_v2"))
    shifted = ArtifactBundle.load(v1).pipeline
    for parameter in shifted.detector.classifier.parameters():
        parameter.data = parameter.data + 0.05
    shifted.detector.compile_inference(force=True)
    ArtifactBundle.export(shifted, v2,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return v1, v2


@pytest.fixture(scope="module")
def scoring_pairs(tiny_fitted_pipeline):
    return [list(s.pair)
            for s in tiny_fitted_pipeline.dataset.all_pairs][:16]


class TestServiceReload:
    def test_swap_changes_scores_and_clears_cache(self, bundles,
                                                  scoring_pairs):
        v1, v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1))
        try:
            before = service.score(scoring_pairs)["probabilities"]
            assert service.scorer.cache_len() > 0
            outcome = service.reload(v2)
            assert outcome["reloaded"]
            assert outcome["probe_pairs"] > 0
            assert outcome["old_engine_drained"]
            after = service.score(scoring_pairs)["probabilities"]
            expected = ArtifactBundle.load(v2).score_pairs(
                [tuple(pair) for pair in scoring_pairs])
            assert np.max(np.abs(np.asarray(after)
                                 - np.asarray(before))) > 1e-4
            np.testing.assert_allclose(after, expected, atol=1e-8, rtol=0)
            assert service.health()["reloads"] == 1
            assert "repro_reloads_total 1" in service.metrics_text()
        finally:
            service.stop()

    def test_reload_preserves_live_taxonomy(self, bundles, scoring_pairs):
        v1, v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1))
        try:
            service.expand({"fruit": ["reload survivor"]})
            edges_before = service.taxonomy_state()["stats"]["edges"]
            service.reload(v2)
            assert service.taxonomy_state()["stats"]["edges"] == \
                edges_before
        finally:
            service.stop()

    def test_default_directory_rereads_current_bundle(self, bundles):
        v1, _v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1))
        try:
            assert service.reload()["directory"] == v1
        finally:
            service.stop()

    def test_bad_bundle_keeps_old_model(self, bundles, scoring_pairs,
                                        tmp_path):
        v1, _v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1))
        try:
            before = service.score(scoring_pairs)["probabilities"]
            with pytest.raises(Exception):
                service.reload(str(tmp_path / "no_such_bundle"))
            after = service.score(scoring_pairs)["probabilities"]
            assert after == before
            assert service.health()["reloads"] == 0
        finally:
            service.stop()

    def test_reload_under_concurrent_load(self, bundles, scoring_pairs):
        """No request may fail or see a non-probability mid-swap."""
        v1, v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1),
                                  ServiceConfig(max_wait_ms=0.5))
        service.start()
        errors: list = []
        stop = threading.Event()

        def hammer():
            while not stop.is_set():
                try:
                    probs = service.score(scoring_pairs)["probabilities"]
                    if not all(0.0 <= p <= 1.0 for p in probs):
                        errors.append(f"bad probability: {probs}")
                except Exception as error:
                    errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        try:
            for thread in threads:
                thread.start()
            time.sleep(0.1)
            for directory in (v2, v1, v2):
                service.reload(directory)
                time.sleep(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            service.stop()
        assert not errors, errors[:3]
        assert service.health()["reloads"] == 3


class TestHTTPReload:
    @pytest.fixture()
    def server(self, bundles):
        v1, _v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1),
                                  ServiceConfig(max_wait_ms=1.0))
        service.start()
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        service.stop()
        thread.join(timeout=5)

    def request(self, server, path, payload=None):
        host, port = server.server_address[:2]
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data,
            headers={"Content-Type": "application/json"} if data else {})
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_admin_reload_endpoint(self, server, bundles, scoring_pairs):
        _v1, v2 = bundles
        _s, before = self.request(server, "/score",
                                  {"pairs": scoring_pairs})
        status, outcome = self.request(server, "/admin/reload",
                                       {"artifacts": v2})
        assert status == 200 and outcome["reloaded"]
        _s, after = self.request(server, "/score",
                                 {"pairs": scoring_pairs})
        assert after["probabilities"] != before["probabilities"]

    def test_admin_reload_failure_is_500(self, server):
        status, payload = self.request(
            server, "/admin/reload", {"artifacts": "/no/such/bundle"})
        assert status == 500
        assert "error" in payload


class TestSighup:
    def test_install_and_fire(self, bundles):
        import os
        import signal
        v1, _v2 = bundles
        service = TaxonomyService(ArtifactBundle.load(v1))
        from repro.serving import install_sighup_reload
        if not hasattr(signal, "SIGHUP"):
            pytest.skip("platform has no SIGHUP")
        previous = signal.getsignal(signal.SIGHUP)
        try:
            assert install_sighup_reload(service)
            os.kill(os.getpid(), signal.SIGHUP)
            deadline = time.time() + 30
            while time.time() < deadline and \
                    service.health()["reloads"] < 1:
                time.sleep(0.05)
            assert service.health()["reloads"] == 1
        finally:
            signal.signal(signal.SIGHUP, previous)
            service.stop()


class TestEngineDrain:
    def test_idle_engine_drains_immediately(self, tiny_fitted_pipeline):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        assert engine.drain(timeout=1.0)

    def test_busy_engine_blocks_until_done(self, tiny_fitted_pipeline):
        engine = tiny_fitted_pipeline.detector.compile_inference()
        release = threading.Event()
        holding = threading.Event()

        def hold():
            with engine._lock:
                holding.set()
                release.wait(10.0)

        thread = threading.Thread(target=hold)
        thread.start()
        holding.wait(10.0)
        assert not engine.drain(timeout=0.05)
        release.set()
        thread.join(10.0)
        assert engine.drain(timeout=5.0)


class TestSwapEpochFence:
    """An in-flight batch must not repopulate the cache post-swap."""

    def test_mid_batch_swap_keeps_cache_clean(self):
        entered = threading.Event()
        release = threading.Event()

        def slow_old_model(pairs):
            entered.set()
            release.wait(10.0)
            return np.full(len(pairs), 0.1)

        scorer = BatchingScorer(slow_old_model, cache_size=64)
        result: dict = {}

        def score():
            result["probs"] = scorer.score_pairs([("a", "b")])

        thread = threading.Thread(target=score)
        thread.start()
        entered.wait(10.0)  # old-model batch is in flight
        scorer.swap_scorer(lambda pairs: np.full(len(pairs), 0.9))
        release.set()
        thread.join(10.0)
        # The in-flight caller got the old model's answer (drain)...
        np.testing.assert_allclose(result["probs"], [0.1])
        # ...but the cache was not repolluted: a fresh request scores
        # through the new model instead of serving 0.1 from cache.
        assert scorer.cache_len() == 0
        np.testing.assert_allclose(scorer.score_pairs([("a", "b")]),
                                   [0.9])


class TestScorerWorkerDeath:
    """Satellite fix: a dead worker thread must not strand callers."""

    def test_queued_requests_get_the_fatal_error(self):
        scorer = BatchingScorer(lambda pairs: np.zeros(len(pairs)),
                                cache_size=0)

        def dying_collect():
            with scorer._lock:
                while not scorer._queue:
                    scorer._wakeup.wait()
            raise KeyboardInterrupt("worker thread died")

        scorer._collect = dying_collect
        scorer.start()
        with pytest.raises(KeyboardInterrupt):
            scorer.score_pairs([("a", "b")])
        stats = scorer.stats_snapshot()
        assert stats.worker_failures == 1
        assert "worker_failures" in stats.as_dict()
        assert not scorer.running

    def test_degrades_to_synchronous_after_death(self):
        scorer = BatchingScorer(lambda pairs: np.full(len(pairs), 0.25),
                                cache_size=0)

        def dying_collect():
            with scorer._lock:
                while not scorer._queue:
                    scorer._wakeup.wait()
            raise KeyboardInterrupt("worker thread died")

        scorer._collect = dying_collect
        scorer.start()
        with pytest.raises(KeyboardInterrupt):
            scorer.score_pairs([("a", "b")])
        out = scorer.score_pairs([("a", "b"), ("c", "d")])
        np.testing.assert_allclose(out, [0.25, 0.25])

    def test_scoring_exception_does_not_kill_worker(self):
        calls = {"n": 0}

        def flaky(pairs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("transient scoring failure")
            return np.zeros(len(pairs))

        with BatchingScorer(flaky, cache_size=0) as scorer:
            with pytest.raises(ValueError):
                scorer.score_pairs([("a", "b")])
            assert scorer.running  # per-batch failure, not worker death
            assert scorer.score_pairs([("a", "b")]).shape == (1,)
            assert scorer.stats_snapshot().worker_failures == 0
