"""Crash/fault-injection tests for the snapshot + compaction layer.

Every failure mode the recovery contract promises to survive — or to
refuse to paper over — gets a test here:

* a crash mid-snapshot-write (atomic-rename discipline) leaves the
  previous valid snapshot in charge, silently;
* a truncated or CRC-corrupt newest snapshot falls back to an older
  snapshot plus a longer journal tail, with a warning;
* a snapshot whose journal tail was already compacted away fails
  loudly instead of silently serving a hole in history;
* journal compaction never deletes a segment the latest valid snapshot
  does not cover.

The module closes with a hypothesis property test: for random
interleavings of ingest / snapshot / crash / restart, the recovered
``/taxonomy`` state and engine structural epoch are always identical to
an uninterrupted run of the same ingests.
"""

import os
import shutil
import tempfile
import warnings

import pytest

from repro.serving import (
    ArtifactBundle, IngestJournal, ServiceConfig, SnapshotCorruptionWarning,
    SnapshotStore, TaxonomyService,
)

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # CI image installs no test extras beyond pytest
    HAVE_HYPOTHESIS = False


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("recovery_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


@pytest.fixture(scope="module")
def batches(small_click_log):
    """Deterministic click-record batches, four records each."""
    records = [[q, i, c] for (q, i), c in
               sorted(small_click_log.counts.items())]
    return [records[k:k + 4] for k in range(0, min(len(records), 40), 4)]


def make_service(bundle_dir, journal_dir, snapshot_dir, *, keep=2,
                 max_segment_bytes=200):
    """A journal+snapshot-backed service with aggressive rotation, so
    compaction has sealed segments to work on."""
    return TaxonomyService(
        ArtifactBundle.load(bundle_dir), ServiceConfig(),
        journal=IngestJournal(journal_dir, fsync_every=1,
                              max_segment_bytes=max_segment_bytes),
        snapshots=SnapshotStore(snapshot_dir, keep=keep))


def taxonomy_fingerprint(service):
    state = service.taxonomy_state()
    return state["stats"], sorted(tuple(e) for e in state["edges"])


def engine_epoch(service):
    detector = service.bundle.pipeline.detector
    engine = detector.inference_engine if detector is not None else None
    return engine.structural_epoch if engine is not None else None


class TestMidWriteCrash:
    def test_torn_tmp_leaves_older_snapshot_in_charge(self, bundle_dir,
                                                      batches, tmp_path):
        journal_dir, snap_dir = str(tmp_path / "j"), str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        service.ingest(batches[0], sync=True)
        service.ingest(batches[1], sync=True)
        outcome = service.snapshot()
        service.ingest(batches[2], sync=True)
        expected = taxonomy_fingerprint(service)
        expected_epoch = engine_epoch(service)
        del service  # kill -9: no stop(), no close()

        # Simulate dying mid-write of the *next* snapshot: the atomic
        # rename never happened, so only a torn ``.tmp`` exists.
        torn = os.path.join(
            snap_dir, "snapshot-9999999999999999.json.tmp")
        with open(torn, "wb") as handle:
            handle.write(b'{"format_version": 1, "seq": 99, "state": {')

        restarted = make_service(bundle_dir, journal_dir, snap_dir)
        with warnings.catch_warnings():
            # The torn tmp must not even register as a corrupt snapshot.
            warnings.simplefilter("error", SnapshotCorruptionWarning)
            summary = restarted.recover()
        assert summary["snapshot"] == outcome["snapshot"]
        assert summary["ingest"] == 1  # only the post-snapshot batch
        assert taxonomy_fingerprint(restarted) == expected
        assert engine_epoch(restarted) == expected_epoch
        # The next successful write sweeps the torn tmp.
        restarted.snapshot()
        assert not os.path.exists(torn)
        restarted.stop()


class TestCorruptSnapshotFallback:
    @pytest.mark.parametrize("corruption", ["truncate", "bitflip"])
    def test_falls_back_to_previous_snapshot_with_longer_tail(
            self, bundle_dir, batches, tmp_path, corruption):
        journal_dir = str(tmp_path / "j")
        snap_dir = str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        service.ingest(batches[0], sync=True)
        first = service.snapshot()
        service.ingest(batches[1], sync=True)
        service.ingest(batches[2], sync=True)
        # compact=False keeps the journal tail back to the first
        # snapshot alive, so the fallback has something to replay.
        second = service.snapshot(compact=False)
        expected = taxonomy_fingerprint(service)
        expected_epoch = engine_epoch(service)
        del service

        newest = os.path.join(snap_dir, second["snapshot"])
        blob = open(newest, "rb").read()
        if corruption == "truncate":
            open(newest, "wb").write(blob[:len(blob) // 2])
        else:
            flipped = bytearray(blob)
            flipped[len(flipped) // 2] ^= 0x40
            open(newest, "wb").write(bytes(flipped))

        restarted = make_service(bundle_dir, journal_dir, snap_dir)
        with pytest.warns(SnapshotCorruptionWarning,
                          match="older snapshot"):
            summary = restarted.recover()
        assert summary["snapshot"] == first["snapshot"]
        assert summary["snapshot_seq"] == first["seq"]
        assert summary["ingest"] == 2  # the longer tail replays both
        assert taxonomy_fingerprint(restarted) == expected
        assert engine_epoch(restarted) == expected_epoch
        assert restarted.snapshots.stats.corrupt_skipped >= 1
        restarted.stop()

    def test_all_snapshots_corrupt_replays_full_journal(self, bundle_dir,
                                                        batches, tmp_path):
        journal_dir, snap_dir = str(tmp_path / "j"), str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        service.ingest(batches[0], sync=True)
        outcome = service.snapshot(compact=False)
        expected = taxonomy_fingerprint(service)
        del service
        path = os.path.join(snap_dir, outcome["snapshot"])
        open(path, "wb").write(b"not a snapshot")

        restarted = make_service(bundle_dir, journal_dir, snap_dir)
        with pytest.warns(SnapshotCorruptionWarning):
            summary = restarted.recover()
        assert summary["snapshot"] is None
        assert summary["ingest"] == 1  # full-history replay
        assert taxonomy_fingerprint(restarted) == expected
        restarted.stop()


class TestMissingTailFailsLoudly:
    def test_corrupt_newest_plus_compacted_tail_raises(self, bundle_dir,
                                                       batches, tmp_path):
        journal_dir, snap_dir = str(tmp_path / "j"), str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        service.ingest(batches[0], sync=True)
        service.ingest(batches[1], sync=True)
        first = service.snapshot()
        service.ingest(batches[2], sync=True)
        service.ingest(batches[3], sync=True)
        # This snapshot compacts segments *past* the first snapshot's
        # sequence — the older snapshot's tail is now gone.
        second = service.snapshot()
        del service

        newest = os.path.join(snap_dir, second["snapshot"])
        blob = open(newest, "rb").read()
        open(newest, "wb").write(blob[:len(blob) - 20])

        restarted = make_service(bundle_dir, journal_dir, snap_dir)
        assert restarted.journal.compacted_through > first["seq"], \
            "precondition: compaction must have advanced past snapshot 1"
        with pytest.warns(SnapshotCorruptionWarning):
            with pytest.raises(RuntimeError, match="compacted away"):
                restarted.recover()
        restarted.stop()

    def test_deleted_tail_segment_raises(self, bundle_dir, batches,
                                         tmp_path):
        journal_dir, snap_dir = str(tmp_path / "j"), str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        service.ingest(batches[0], sync=True)
        service.snapshot()
        service.ingest(batches[1], sync=True)
        service.ingest(batches[2], sync=True)
        del service

        # A disk fault (or an over-eager operator) removes the segment
        # holding the records right after the snapshot: the surviving
        # tail no longer reaches back to the snapshot being restored.
        journal = IngestJournal(journal_dir)
        segs = journal.segments()
        journal.close()
        assert len(segs) >= 2, "need a removable non-final tail segment"
        os.remove(segs[0])

        restarted = make_service(bundle_dir, journal_dir, snap_dir)
        with pytest.raises(RuntimeError, match="missing"):
            restarted.recover()
        restarted.stop()


class TestCompactionSafety:
    def test_compaction_never_deletes_uncovered_segments(self, bundle_dir,
                                                         batches,
                                                         tmp_path):
        journal_dir, snap_dir = str(tmp_path / "j"), str(tmp_path / "s")
        service = make_service(bundle_dir, journal_dir, snap_dir)
        service.start()
        for batch in batches[:3]:
            service.ingest(batch, sync=True)
        outcome = service.snapshot()
        service.ingest(batches[3], sync=True)
        service.ingest(batches[4], sync=True)
        # Every record past the snapshot's covered sequence must still
        # be on disk, in order, regardless of what compaction removed.
        tail = [r.seq for r in
                service.journal.replay(after_seq=outcome["seq"])]
        last = service.journal.next_seq - 1
        assert tail == list(range(outcome["seq"] + 1, last + 1))
        service.stop()

    def test_journal_compact_preserves_every_uncovered_record(
            self, tmp_path):
        journal = IngestJournal(str(tmp_path), max_segment_bytes=150)
        for i in range(10):
            journal.append("ingest", {"records": [["q", f"item {i}", 1]]})
        journal.compact(4)
        survivors = [r.seq for r in journal.replay()]
        # Nothing past the covered bound may vanish, and whatever stays
        # is a contiguous run ending at the newest record.
        assert set(range(5, 10)) <= set(survivors)
        assert survivors == list(range(survivors[0], 10))
        journal.close()

    def test_journal_compact_spares_the_active_segment(self, tmp_path):
        # One big segment: still the active write target, so even a
        # bound covering all of it must not delete it.
        journal = IngestJournal(str(tmp_path))
        for i in range(10):
            journal.append("ingest", {"records": [["q", f"item {i}", 1]]})
        outcome = journal.compact(9)
        assert outcome["removed"] == []
        assert [r.seq for r in journal.replay()] == list(range(10))
        journal.close()


def _run_reference(bundle_dir, ingest_batches):
    """The uninterrupted run: same ingests, no journal, no faults."""
    service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                              ServiceConfig())
    service.start()
    for batch in ingest_batches:
        service.ingest(batch, sync=True)
    fingerprint = taxonomy_fingerprint(service)
    epoch = engine_epoch(service)
    service.stop()
    return fingerprint, epoch


if HAVE_HYPOTHESIS:

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(ops=st.lists(st.sampled_from(["ingest", "snapshot", "crash"]),
                        min_size=1, max_size=7))
    def test_random_interleavings_recover_exactly(ops, bundle_dir,
                                                  batches):
        """Property: any interleaving of ingest / snapshot / crash /
        restart recovers to exactly the uninterrupted run's state."""
        journal_dir = tempfile.mkdtemp(prefix="prop_journal_")
        snap_dir = tempfile.mkdtemp(prefix="prop_snap_")
        service = None
        try:
            service = make_service(bundle_dir, journal_dir, snap_dir)
            service.start()
            applied = []
            for op in ops:
                if op == "ingest":
                    batch = batches[len(applied) % len(batches)]
                    service.ingest(batch, sync=True)
                    applied.append(batch)
                elif op == "snapshot":
                    service.snapshot()
                else:  # crash + restart
                    del service
                    service = make_service(bundle_dir, journal_dir,
                                           snap_dir)
                    service.recover()
                    service.start()
            # Final crash + restart, then compare against the
            # uninterrupted reference run.
            del service
            service = make_service(bundle_dir, journal_dir, snap_dir)
            service.recover()
            expected, expected_epoch = _run_reference(bundle_dir, applied)
            assert taxonomy_fingerprint(service) == expected
            assert engine_epoch(service) == expected_epoch
        finally:
            if service is not None:
                service.stop()
            shutil.rmtree(journal_dir, ignore_errors=True)
            shutil.rmtree(snap_dir, ignore_errors=True)

else:

    @pytest.mark.skip(reason="hypothesis is not installed")
    def test_random_interleavings_recover_exactly():
        pass
