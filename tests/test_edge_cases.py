"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.core import (
    ExpansionConfig, SelfSupConfig, expand_taxonomy, generate_dataset,
)
from repro.eval import (
    LexicalSearchEngine, ancestor_pairs, compute_term_stats, edge_f1,
    uncovered_node_analysis,
)
from repro.graph import HeteroGraph, build_heterograph, identify_concept
from repro.nn import Tensor
from repro.plm import WordTokenizer
from repro.synthetic.clicklogs import ClickLog
from repro.taxonomy import ConceptVocabulary, Taxonomy, transitive_reduction


class TestEmptyInputs:
    def test_empty_taxonomy(self):
        t = Taxonomy()
        assert t.depth() == 0
        assert t.level_order() == []
        assert t.roots() == []
        assert list(t.edges()) == []
        assert transitive_reduction(t).num_nodes == 0

    def test_empty_click_log_graph(self):
        t = Taxonomy(edges=[("food", "bread")])
        vocab = ConceptVocabulary(["food", "bread"])
        result = build_heterograph(t, vocab, ClickLog())
        assert result.graph.num_edges == 1  # the taxonomy edge only
        assert result.candidate_pairs == []

    def test_term_stats_empty_log(self):
        t = Taxonomy(edges=[("food", "bread")])
        vocab = ConceptVocabulary(["food", "bread"])
        stats = compute_term_stats(t, vocab, ClickLog())
        assert stats.num_items == 0
        assert stats.coverage_node == 0.0

    def test_expansion_with_no_candidates(self):
        t = Taxonomy(edges=[("food", "bread")])
        result = expand_taxonomy(lambda pairs: np.ones(len(pairs)), t, {})
        assert result.num_attached == 0
        assert result.taxonomy.edge_set() == t.edge_set()

    def test_uncovered_analysis_fully_covered(self):
        t = Taxonomy(edges=[("food", "bread")])
        log = ClickLog()
        log.counts[("food", "x")] = 1
        log.counts[("bread", "y")] = 1
        analysis = uncovered_node_analysis(t, log)
        assert analysis["count"] == 0

    def test_search_empty_index(self):
        engine = LexicalSearchEngine([])
        assert engine.search("anything") == []

    def test_edge_f1_both_empty(self):
        prf = edge_f1(set(), set())
        assert prf.recall == 1.0  # vacuous
        assert prf.precision == 0.0


class TestDegenerateShapes:
    def test_single_edge_dataset(self):
        t = Taxonomy(edges=[("bread", "toast")])
        ds = generate_dataset(t, config=SelfSupConfig(seed=0))
        assert len(ds.all_pairs) >= 2  # positive + shuffle negative
        labels = {s.label for s in ds.all_pairs}
        assert labels == {0, 1}

    def test_star_taxonomy_expansion(self):
        t = Taxonomy(edges=[("hub", f"leaf{i}") for i in range(30)])
        scorer = lambda pairs: np.array(
            [1.0 if q == "hub" else 0.0 for q, _ in pairs])
        candidates = {"hub": [f"new{i}" for i in range(10)]}
        result = expand_taxonomy(scorer, t, candidates)
        assert result.num_attached == 10

    def test_chain_taxonomy_levels(self):
        t = Taxonomy(edges=[(f"n{i}", f"n{i+1}") for i in range(20)])
        assert t.depth() == 21
        levels = t.level_order()
        assert all(len(level) == 1 for level in levels)

    def test_tokenizer_single_word_vocab(self):
        tok = WordTokenizer(["only"])
        ids = tok.encode("only only only")
        assert tok.decode(ids) == "only only only"

    def test_vocabulary_with_long_names(self):
        name = " ".join(["deep"] * 40) + " bread"
        vocab = ConceptVocabulary([name, "bread"])
        assert identify_concept(f"prefix {name} suffix", vocab) == name


class TestAdversarialScorers:
    def test_nan_free_probabilities_required_downstream(self):
        """Expansion must cope with extreme scorer outputs."""
        t = Taxonomy(edges=[("food", "bread")])
        scorer = lambda pairs: np.array([1e308] * len(pairs))
        result = expand_taxonomy(scorer, t, {"bread": ["toast"]},
                                 ExpansionConfig(threshold=0.5))
        assert result.num_attached == 1  # huge score still attaches once

    def test_always_negative_scorer(self):
        t = Taxonomy(edges=[("food", "bread")])
        scorer = lambda pairs: np.zeros(len(pairs))
        result = expand_taxonomy(scorer, t, {"bread": ["toast"]})
        assert result.num_attached == 0

    def test_graph_rejects_bad_weight_after_build(self):
        g = HeteroGraph()
        g.add_edge("a", "b", HeteroGraph.CLICK, 0.5)
        # overwriting with a new weight is allowed and replaces cleanly
        g.add_edge("a", "b", HeteroGraph.CLICK, 0.9)
        assert g.edge_weight("a", "b") == pytest.approx(0.9)
        assert g.num_edges == 1


class TestNumericalStability:
    def test_softmax_with_huge_values(self):
        x = Tensor(np.array([1e4, -1e4, 0.0]))
        probs = x.softmax().data
        assert np.all(np.isfinite(probs))
        assert probs.argmax() == 0

    def test_layernorm_constant_input(self):
        from repro.nn import LayerNorm
        norm = LayerNorm(4)
        out = norm(Tensor(np.full((2, 4), 3.0))).data
        assert np.all(np.isfinite(out))

    def test_weight_assignment_single_pair(self):
        from repro.graph import assign_edge_weights
        weights = assign_edge_weights({("q", "i"): 100})
        assert weights[("q", "i")] == pytest.approx(1.0)
