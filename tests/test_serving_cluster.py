"""ShardedScorerPool tests: parity, sharding, failure recovery, reload.

The pool must be a drop-in ``Scorer``: identical probabilities (within
the float32 batch-composition tolerance) to the in-process engine, with
worker processes that die loudly, respawn, and hot-swap bundles without
dropping requests.
"""

import numpy as np
import pytest

from repro.serving import (
    ArtifactBundle, BatchingScorer, ServiceConfig, ShardedScorerPool,
    TaxonomyService,
)


@pytest.fixture(scope="module")
def bundle_dir(tiny_fitted_pipeline, small_world, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cluster_bundle"))
    ArtifactBundle.export(tiny_fitted_pipeline, directory,
                          taxonomy=small_world.existing_taxonomy,
                          vocabulary=small_world.vocabulary)
    return directory


@pytest.fixture(scope="module")
def scoring_pairs(tiny_fitted_pipeline):
    pairs = [s.pair for s in tiny_fitted_pipeline.dataset.all_pairs][:48]
    pairs += [("definitely unknown", "also unknown"), ("a", "b")]
    return pairs


@pytest.fixture(scope="module")
def pool(bundle_dir):
    with ShardedScorerPool(bundle_dir, num_workers=2) as pool:
        yield pool


class TestScoring:
    def test_parity_with_single_process(self, pool, bundle_dir,
                                        scoring_pairs):
        single = ArtifactBundle.load(bundle_dir).score_pairs(scoring_pairs)
        pooled = pool.score_pairs(scoring_pairs)
        np.testing.assert_allclose(pooled, single, atol=1e-4, rtol=0)

    def test_empty_request(self, pool):
        assert pool.score_pairs([]).shape == (0,)

    def test_duplicate_pairs_keep_positions(self, pool, scoring_pairs):
        pair = scoring_pairs[0]
        out = pool.score_pairs([pair, scoring_pairs[1], pair])
        assert out[0] == out[2]

    def test_sharding_is_stable_and_partitioned(self, pool, scoring_pairs):
        shards = [pool.shard(pair) for pair in scoring_pairs]
        assert shards == [pool.shard(pair) for pair in scoring_pairs]
        assert set(shards) <= set(range(pool.num_workers))
        # CRC sharding must not depend on PYTHONHASHSEED.
        assert ShardedScorerPool.shard_of(("fruit", "apple"), 4) == \
            ShardedScorerPool.shard_of(("fruit", "apple"), 4)

    def test_unstarted_pool_rejects(self, bundle_dir):
        pool = ShardedScorerPool(bundle_dir, num_workers=1)
        with pytest.raises(RuntimeError):
            pool.score_pairs([("a", "b")])

    def test_stats_roll_up(self, pool, scoring_pairs):
        before = pool.stats_snapshot()
        pool.score_pairs(scoring_pairs[:8])
        after = pool.stats_snapshot()
        assert after.requests == before.requests + 1
        assert after.pairs_scored == before.pairs_scored + 8
        assert sum(after.worker_pairs.values()) >= 8

    def test_worker_stats_expose_engine_counters(self, pool,
                                                 scoring_pairs):
        pool.score_pairs(scoring_pairs)
        stats = pool.worker_stats()
        assert len(stats) == pool.num_workers
        assert all(s["alive"] for s in stats)
        assert any(s.get("pairs_scored", 0) > 0 for s in stats)


class TestFailureRecovery:
    def test_killed_worker_respawns_and_serves(self, bundle_dir,
                                               scoring_pairs):
        with ShardedScorerPool(bundle_dir, num_workers=2) as pool:
            expected = pool.score_pairs(scoring_pairs)
            victim = pool._workers[0]
            victim.process.kill()
            victim.process.join()
            # The first call may race the death notification; the pool
            # must recover within a retry.
            try:
                got = pool.score_pairs(scoring_pairs)
            except RuntimeError:
                got = pool.score_pairs(scoring_pairs)
            np.testing.assert_allclose(got, expected, atol=1e-4, rtol=0)
            stats = pool.stats_snapshot()
            assert stats.worker_deaths >= 1
            assert stats.worker_restarts >= 1

    def test_inflight_requests_fail_loudly_not_silently(self, bundle_dir):
        with ShardedScorerPool(bundle_dir, num_workers=1) as pool:
            worker = pool._workers[0]
            # A batch of distinct unseen pairs keeps the worker busy for
            # far longer than the kill takes to land, so the request is
            # reliably still in flight (4 cached pairs could finish
            # before the kill and let the future resolve cleanly).
            pairs = [("fruit", f"unseen candidate {i}")
                     for i in range(1500)]
            future = pool._dispatch(0, "score", pairs)
            worker.process.kill()
            with pytest.raises(RuntimeError, match="died|error|broken"):
                future.wait(30.0)


class TestReload:
    def test_reload_swaps_all_workers(self, bundle_dir, scoring_pairs,
                                      tmp_path_factory):
        shifted_dir = str(tmp_path_factory.mktemp("cluster_bundle_v2"))
        pipeline = ArtifactBundle.load(bundle_dir).pipeline
        for parameter in pipeline.detector.classifier.parameters():
            parameter.data = parameter.data + 0.05
        pipeline.detector.compile_inference(force=True)
        ArtifactBundle.export(pipeline, shifted_dir)
        expected = ArtifactBundle.load(shifted_dir) \
            .score_pairs(scoring_pairs)

        with ShardedScorerPool(bundle_dir, num_workers=2) as pool:
            original = pool.score_pairs(scoring_pairs)
            results = pool.reload(shifted_dir)
            assert all(result["ok"] for result in results)
            assert pool.bundle_dir == shifted_dir
            reloaded = pool.score_pairs(scoring_pairs)
            assert float(np.max(np.abs(reloaded - original))) > 1e-4
            np.testing.assert_allclose(reloaded, expected, atol=1e-4,
                                       rtol=0)

    def test_reload_missing_bundle_keeps_serving(self, bundle_dir,
                                                 scoring_pairs):
        with ShardedScorerPool(bundle_dir, num_workers=1) as pool:
            before = pool.score_pairs(scoring_pairs)
            results = pool.reload("/nonexistent/bundle/path")
            assert not any(result["ok"] for result in results)
            after = pool.score_pairs(scoring_pairs)
            np.testing.assert_allclose(after, before, atol=0, rtol=0)


class TestServiceIntegration:
    def test_pool_backed_service_scores(self, pool, bundle_dir,
                                        scoring_pairs):
        service = TaxonomyService(ArtifactBundle.load(bundle_dir),
                                  ServiceConfig(), pool=pool)
        try:
            single = ArtifactBundle.load(bundle_dir) \
                .score_pairs(scoring_pairs)
            out = service.score([list(pair) for pair in scoring_pairs])
            np.testing.assert_allclose(out["probabilities"], single,
                                       atol=1e-4, rtol=0)
            metrics = service.metrics_text()
            assert "repro_pool_requests_total" in metrics
            assert 'repro_pool_worker_pairs_total{worker="0"}' in metrics
            assert service.health()["workers"]["pool"] is True
        finally:
            service.stop()

    def test_pool_behind_batching_scorer(self, pool, scoring_pairs):
        scorer = BatchingScorer(pool.score_pairs, cache_size=64)
        first = scorer.score_pairs(scoring_pairs[:8])
        second = scorer.score_pairs(scoring_pairs[:8])  # cache hits
        np.testing.assert_allclose(second, first, atol=0, rtol=0)
        assert scorer.stats_snapshot().cache_hits >= 8
