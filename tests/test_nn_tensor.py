"""Autograd engine tests: gradient correctness against numeric derivatives."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, no_grad, is_grad_enabled


def numeric_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f()
        x[idx] = original - eps
        minus = f()
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_unary(op, data, tol=1e-6):
    x = Tensor(np.array(data, dtype=np.float64), requires_grad=True)
    out = op(x).sum()
    out.backward()
    num = numeric_gradient(lambda: float(op(Tensor(x.data)).sum().data),
                           x.data)
    assert np.abs(num - x.grad).max() < tol


class TestElementwiseGradients:
    def test_exp(self):
        check_unary(lambda t: t.exp(), [[0.5, -1.0], [2.0, 0.1]])

    def test_log(self):
        check_unary(lambda t: t.log(), [[0.5, 1.3], [2.0, 0.1]])

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), [[0.5, 1.3], [2.0, 0.1]])

    def test_tanh(self):
        check_unary(lambda t: t.tanh(), [[0.5, -1.0], [2.0, 0.1]])

    def test_relu(self):
        check_unary(lambda t: t.relu(), [[0.5, -1.0], [2.0, 0.1]])

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid(), [[0.5, -1.0], [2.0, 0.1]])

    def test_gelu(self):
        check_unary(lambda t: t.gelu(), [[0.5, -1.0], [2.0, 0.1]], tol=1e-5)

    def test_pow(self):
        check_unary(lambda t: t ** 3, [[0.5, -1.0], [2.0, 0.1]])

    def test_neg(self):
        check_unary(lambda t: -t, [[0.5, -1.0]])


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_mul_broadcast(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(b.grad, a.data.sum(axis=0, keepdims=True))

    def test_div(self, rng):
        a = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        b = Tensor(rng.normal(size=(5,)) + 3.0, requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, 1.0 / b.data)
        assert np.allclose(b.grad, -a.data / b.data ** 2)

    def test_rsub_rmul(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        out = (3.0 - a) * 2.0
        out.sum().backward()
        assert np.allclose(a.grad, -2.0)

    def test_matmul_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, b.data.sum(axis=1))
        assert np.allclose(b.grad, a.data.sum(axis=0)[:, None])

    def test_matmul_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        out = (a @ b).sum()
        out.backward()

        def f():
            return float((a.data @ b.data).sum())
        assert np.abs(numeric_gradient(f, a.data) - a.grad).max() < 1e-6
        assert np.abs(numeric_gradient(f, b.data) - b.grad).max() < 1e-6

    def test_matmul_vector(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a @ b).backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.mean().backward()
        assert np.allclose(x.grad, 1.0 / 12)

    def test_mean_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        x.mean(axis=0).sum().backward()
        assert np.allclose(x.grad, 1.0 / 3)

    def test_max_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_transpose(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        out = x.reshape(3, 4).transpose(1, 0).sum()
        out.backward()
        assert np.allclose(x.grad, 1.0)

    def test_swapaxes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        y = x.swapaxes(0, 2)
        assert y.shape == (4, 3, 2)
        y.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_getitem_fancy(self, rng):
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2])
        x[idx].sum().backward()
        expected = np.zeros((5, 3))
        expected[0] = 1.0
        expected[2] = 2.0
        assert np.allclose(x.grad, expected)

    def test_concatenate(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * out).sum().backward()
        assert np.allclose(a.grad, 2 * a.data)
        assert np.allclose(b.grad, 2 * b.data)

    def test_stack(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0)


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        out = x.softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(4, 6)))
        assert np.allclose(x.log_softmax().data, np.log(x.softmax().data))

    def test_softmax_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        (x.softmax(axis=-1) ** 2).sum().backward()

        def f():
            e = np.exp(x.data - x.data.max(-1, keepdims=True))
            s = e / e.sum(-1, keepdims=True)
            return float((s ** 2).sum())
        assert np.abs(numeric_gradient(f, x.data) - x.grad).max() < 1e-6


class TestGraphMechanics:
    def test_grad_accumulates_through_shared_node(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0
        z = y + y  # y used twice
        z.backward(np.array([1.0]))
        assert np.allclose(x.grad, 6.0)

    def test_backward_twice_accumulates_leaf_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward(np.array([1.0]))
        (x * 2).backward(np.array([1.0]))
        assert np.allclose(x.grad, 4.0)

    def test_no_grad_disables_tracking(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_backward_requires_grad(self):
        x = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            x.backward(np.ones(3))

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).backward(np.ones(2))
        x.zero_grad()
        assert x.grad is None

    def test_repr_and_item(self):
        x = Tensor(np.array(3.5))
        assert x.item() == 3.5
        assert "Tensor" in repr(x)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
def test_softmax_invariances_property(values):
    """Softmax is shift-invariant and produces a probability vector."""
    x = np.array(values)
    p1 = Tensor(x).softmax().data
    p2 = Tensor(x + 17.0).softmax().data
    assert np.allclose(p1, p2, atol=1e-9)
    assert np.all(p1 >= 0)
    assert abs(p1.sum() - 1.0) < 1e-9


def _reference_unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Brute-force oracle: accumulate every broadcast copy back to shape."""
    result = np.zeros(shape)
    lead = grad.ndim - len(shape)
    for index in np.ndindex(*grad.shape):
        target = tuple(0 if shape[axis] == 1 else index[lead + axis]
                       for axis in range(len(shape)))
        result[target] += grad[index]
    return result


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_unbroadcast_matches_numpy_broadcasting_property(data):
    """_unbroadcast must sum gradients exactly as broadcasting fans out.

    Draw a base shape, expand it the way numpy broadcasting would
    (prepend axes, inflate size-1 axes), and check the gradient
    reduction against a brute-force accumulation oracle.
    """
    from repro.nn.tensor import _unbroadcast

    base = tuple(data.draw(
        st.lists(st.integers(1, 4), min_size=0, max_size=3),
        label="base_shape"))
    prepended = tuple(data.draw(
        st.lists(st.integers(1, 3), min_size=0, max_size=2),
        label="leading_axes"))
    expanded = tuple(
        data.draw(st.integers(2, 4), label=f"expand_{axis}")
        if size == 1 and data.draw(st.booleans(), label=f"grow_{axis}")
        else size
        for axis, size in enumerate(base))
    broadcast_shape = prepended + expanded
    rng = np.random.default_rng(
        data.draw(st.integers(0, 2 ** 16), label="seed"))
    grad = rng.standard_normal(broadcast_shape)

    got = _unbroadcast(grad, base)
    assert got.shape == base
    np.testing.assert_allclose(got, _reference_unbroadcast(grad, base),
                               atol=1e-12)
    # Consistency with autograd itself: d/dx sum(broadcast(x) * g).
    x = Tensor(np.zeros(base), requires_grad=True)
    (x * Tensor(grad)).sum().backward()
    np.testing.assert_allclose(x.grad, got, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5))
def test_matmul_shape_property(a, b, c):
    x = Tensor(np.ones((a, b)), requires_grad=True)
    y = Tensor(np.ones((b, c)), requires_grad=True)
    out = x @ y
    assert out.shape == (a, c)
    out.sum().backward()
    assert x.grad.shape == (a, b)
    assert y.grad.shape == (b, c)
