"""Attention / transformer encoder tests."""

import numpy as np

from repro.nn import (
    MultiHeadSelfAttention, Tensor, TransformerEncoder, cross_entropy, Adam,
    Linear,
)


class TestAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadSelfAttention(16, 4, rng=rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_padding_mask_blocks_information(self, rng):
        """Changing a padded position must not change unpadded outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        x = rng.normal(size=(1, 4, 8))
        mask = np.array([[1.0, 1.0, 1.0, 0.0]])
        out1 = attn(Tensor(x), mask).data.copy()
        x2 = x.copy()
        x2[0, 3] += 100.0  # only the padded slot changes
        out2 = attn(Tensor(x2), mask).data
        assert np.allclose(out1[0, :3], out2[0, :3], atol=1e-8)

    def test_invalid_dim_head_combo(self):
        import pytest
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_bad_mask_shape(self, rng):
        import pytest
        attn = MultiHeadSelfAttention(8, 2, rng=rng)
        with pytest.raises(ValueError):
            attn(Tensor(rng.normal(size=(1, 4, 8))), np.ones((2, 4)))


class TestTransformerEncoder:
    def test_stack_shape(self, rng):
        enc = TransformerEncoder(3, 16, 4, 32, rng=rng)
        out = enc(Tensor(rng.normal(size=(2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_learns_simple_classification(self, rng):
        """A 2-layer encoder + head separates two fixed patterns."""
        enc = TransformerEncoder(2, 16, 4, 32, rng=rng)
        head = Linear(16, 2, rng=rng)
        x = rng.normal(size=(8, 5, 16))
        labels = rng.integers(0, 2, size=8)
        optimizer = Adam(enc.parameters() + head.parameters(), lr=1e-2)
        first = last = None
        for _ in range(25):
            optimizer.zero_grad()
            logits = head(enc(Tensor(x))[:, 0, :])
            loss = cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
            if first is None:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.5
