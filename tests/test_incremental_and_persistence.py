"""Tests for taxonomy persistence and incremental expansion."""

import numpy as np
import pytest

from repro.core import ExpansionConfig, IncrementalExpander
from repro.synthetic import ClickLogConfig, generate_click_logs
from repro.synthetic.clicklogs import ClickLog
from repro.taxonomy import (
    ConceptVocabulary, Taxonomy, load_taxonomy, save_taxonomy,
    taxonomy_from_dict, taxonomy_to_dict,
)


class TestPersistence:
    def test_dict_roundtrip(self):
        t = Taxonomy(edges=[("food", "bread"), ("bread", "toast")],
                     nodes=["lonely"])
        clone = taxonomy_from_dict(taxonomy_to_dict(t))
        assert clone.edge_set() == t.edge_set()
        assert clone.nodes == t.nodes

    def test_file_roundtrip(self, tmp_path):
        t = Taxonomy(edges=[("food", "bread"), ("bread", "rye bread")])
        path = str(tmp_path / "nested" / "taxonomy.json")
        save_taxonomy(t, path)
        clone = load_taxonomy(path)
        assert clone.edge_set() == t.edge_set()

    def test_version_check(self):
        with pytest.raises(ValueError):
            taxonomy_from_dict({"version": 99, "nodes": [], "edges": []})

    def test_world_scale_roundtrip(self, small_world, tmp_path):
        path = str(tmp_path / "world.json")
        save_taxonomy(small_world.full_taxonomy, path)
        clone = load_taxonomy(path)
        assert clone.num_edges == small_world.full_taxonomy.num_edges
        assert clone.depth() == small_world.full_taxonomy.depth()


class OracleScorer:
    def __init__(self, truth):
        self.truth = truth
        self.calls = 0

    def __call__(self, pairs):
        self.calls += len(pairs)
        return np.array([1.0 if self.truth.is_ancestor(q, i) else 0.0
                         for q, i in pairs])


class TestIncrementalExpansion:
    def _split_log(self, log: ClickLog, parts: int) -> list[ClickLog]:
        batches = [ClickLog() for _ in range(parts)]
        for index, (key, count) in enumerate(sorted(log.counts.items())):
            batch = batches[index % parts]
            batch.counts[key] = count
            batch.provenance[key[1]] = log.provenance.get(key[1])
        return batches

    def test_batches_accumulate_like_one_shot(self, small_world):
        log = generate_click_logs(small_world, ClickLogConfig(
            seed=3, clicks_per_query=30))
        truth = small_world.full_taxonomy
        vocabulary = small_world.vocabulary

        expander = IncrementalExpander(
            OracleScorer(truth), small_world.existing_taxonomy, vocabulary,
            ExpansionConfig(prune_transitive=False))
        reports = [expander.ingest(batch)
                   for batch in self._split_log(log, 3)]

        assert expander.num_batches == 3
        assert all(r.taxonomy_edges_after >=
                   small_world.existing_taxonomy.num_edges
                   for r in reports)
        # every attached edge is truthful (oracle scorer)
        for report in reports:
            for parent, child in report.attached_edges:
                assert truth.is_ancestor(parent, child)

    def test_no_rescoring_of_seen_candidates(self, small_world):
        log = generate_click_logs(small_world, ClickLogConfig(
            seed=3, clicks_per_query=30))
        scorer = OracleScorer(small_world.full_taxonomy)
        expander = IncrementalExpander(
            scorer, small_world.existing_taxonomy, small_world.vocabulary)
        expander.ingest(log)
        calls_after_first = scorer.calls
        report = expander.ingest(log)  # identical batch: nothing new
        assert report.new_candidate_queries == 0
        assert scorer.calls == calls_after_first

    def test_repeated_pairs_accumulate_without_rescoring(self, small_world):
        """Evidence for an already-seen pair grows in the accumulated log,
        but the pair itself is never re-scored across batches."""
        log = generate_click_logs(small_world, ClickLogConfig(
            seed=3, clicks_per_query=30))
        scorer = OracleScorer(small_world.full_taxonomy)
        expander = IncrementalExpander(
            scorer, small_world.existing_taxonomy, small_world.vocabulary)
        expander.ingest(log)
        calls_after_first = scorer.calls
        expander.ingest(log)
        expander.ingest(log)
        assert scorer.calls == calls_after_first
        accumulated = expander.accumulated_log
        assert accumulated.num_records == 3 * log.num_records
        assert accumulated.num_pairs == log.num_pairs
        for key, count in log.counts.items():
            assert accumulated.counts[key] == 3 * count

    def test_accumulated_log_merges_batches(self, small_world):
        log = generate_click_logs(small_world, ClickLogConfig(
            seed=3, clicks_per_query=30))
        expander = IncrementalExpander(
            OracleScorer(small_world.full_taxonomy),
            small_world.existing_taxonomy, small_world.vocabulary)
        for batch in self._split_log(log, 3):
            expander.ingest(batch)
        accumulated = expander.accumulated_log
        assert accumulated.counts == log.counts
        assert accumulated.num_records == log.num_records

    def test_source_taxonomy_not_mutated(self, small_world):
        log = generate_click_logs(small_world, ClickLogConfig(
            seed=3, clicks_per_query=20))
        before = small_world.existing_taxonomy.edge_set()
        expander = IncrementalExpander(
            OracleScorer(small_world.full_taxonomy),
            small_world.existing_taxonomy, small_world.vocabulary)
        expander.ingest(log)
        assert small_world.existing_taxonomy.edge_set() == before
