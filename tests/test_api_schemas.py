"""Unit tests for the stdlib schema layer (`repro.api.schemas`)."""

import pytest

from repro.api import (
    ApiError, ERROR_CODES, ExpandRequest, IngestRequest, ReloadRequest,
    ScoreRequest, ScoreResponse, build_openapi, clean_pairs,
)
from repro.api.schemas import (
    Field, HealthResponse, MAX_PAIRS_PER_REQUEST, SchemaModel,
)


class TestFieldValidation:
    def test_kind_mismatch_names_the_field(self):
        with pytest.raises(ApiError) as exc:
            ScoreRequest.parse({"pairs": "not-a-list"})
        assert exc.value.code == "invalid_request"
        assert exc.value.status == 400
        assert exc.value.detail == {"field": "pairs"}

    def test_booleans_are_not_integers(self):
        field = Field("n", "integer")
        with pytest.raises(ApiError):
            field.check(True)
        assert field.check(3) == 3

    def test_max_items_enforced(self):
        too_many = [["a", "b"]] * (MAX_PAIRS_PER_REQUEST + 1)
        with pytest.raises(ApiError) as exc:
            ScoreRequest.parse({"pairs": too_many})
        assert "limit" in exc.value.message

    def test_item_kind_enforced_with_index(self):
        with pytest.raises(ApiError) as exc:
            ScoreRequest.parse({"pairs": [["a", "b"], "oops"]})
        assert "pairs[1]" in exc.value.message


class TestParse:
    def test_unknown_fields_rejected(self):
        with pytest.raises(ApiError) as exc:
            ScoreRequest.parse({"pairs": [], "extra": 1})
        assert "extra" in exc.value.message

    def test_allow_extra_tolerates_growth(self):
        model = ScoreResponse.parse(
            {"pairs": [["a", "b"]], "probabilities": [0.5],
             "future_field": "x"}, allow_extra=True)
        assert model.probabilities == [0.5]
        # additive fields pass through instead of being dropped
        assert model.as_payload()["future_field"] == "x"

    def test_missing_required_field(self):
        with pytest.raises(ApiError) as exc:
            ScoreRequest.parse({})
        assert "pairs" in exc.value.message

    def test_non_object_body(self):
        with pytest.raises(ApiError):
            ScoreRequest.parse([1, 2, 3])

    def test_defaults_and_nullables(self):
        request = IngestRequest.parse({"records": [["q", "i"]]})
        assert request.sync is False
        assert request.provenance is None
        request = ReloadRequest.parse({"artifacts": None})
        assert request.artifacts is None

    def test_as_payload_round_trip(self):
        payload = {"pairs": [["a", "b"]], "probabilities": [0.25]}
        assert ScoreResponse.parse(payload).as_payload() == payload


class TestCleaners:
    def test_pairs_coerced_to_string_tuples(self):
        request = ScoreRequest.parse({"pairs": [[1, 2], ["a", "b"]]})
        assert request.pairs == (("1", "2"), ("a", "b"))

    def test_bad_pair_shape(self):
        with pytest.raises(ApiError):
            clean_pairs([["solo"]])

    def test_candidates_must_hold_lists(self):
        with pytest.raises(ApiError) as exc:
            ExpandRequest.parse({"candidates": {"q": "not-a-list"}})
        assert exc.value.detail == {"field": "candidates"}

    def test_records_count_validation(self):
        with pytest.raises(ApiError):
            IngestRequest.parse({"records": [["q", "i", 0]]})
        with pytest.raises(ApiError):
            IngestRequest.parse({"records": [["q", "i", "three"]]})
        request = IngestRequest.parse({"records": [["q", "i"],
                                                   ["q", "j", 4]]})
        assert request.records == (("q", "i", 1), ("q", "j", 4))


class TestOpenApiGeneration:
    def test_model_schema_lists_required_fields(self):
        schema = ScoreRequest.openapi_schema()
        assert schema["type"] == "object"
        assert schema["required"] == ["pairs"]
        assert schema["properties"]["pairs"]["maxItems"] == \
            MAX_PAIRS_PER_REQUEST

    def test_nullable_fields_marked(self):
        schema = HealthResponse.openapi_schema()
        assert schema["properties"]["journal"]["nullable"] is True

    def test_document_lists_every_v1_route(self):
        doc = build_openapi()
        v1_paths = {p for p in doc["paths"] if p.startswith("/v1/")}
        assert "/v1/score" in v1_paths
        assert "/v1/jobs/{job_id}" in v1_paths
        assert "/v1/openapi.json" in v1_paths

    def test_legacy_aliases_marked_deprecated(self):
        doc = build_openapi()
        assert doc["paths"]["/score"]["post"]["deprecated"] is True
        assert "deprecated" not in doc["paths"]["/v1/score"]["post"]

    def test_error_component_covers_every_code(self):
        doc = build_openapi()
        error = doc["components"]["schemas"]["Error"]
        codes = error["properties"]["error"]["properties"]["code"]
        assert set(codes["enum"]) == set(ERROR_CODES)

    def test_every_model_field_matches_dataclass(self):
        # the _check_model decorator already enforces this at import
        # time; assert the guard itself works
        assert SchemaModel.parse({}) is not None
