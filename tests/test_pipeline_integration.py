"""End-to-end pipeline integration tests (miniature but complete)."""

import numpy as np
import pytest

from repro.core import (
    DetectorConfig, PipelineConfig, SelfSupConfig, TaxonomyExpansionPipeline,
    candidate_map,
)
from repro.gnn import ContrastiveConfig, StructuralConfig
from repro.plm import PretrainConfig


@pytest.fixture(scope="module")
def fitted_pipeline(small_world, small_click_log, small_ugc):
    """One cheap end-to-end fit shared across this module's tests."""
    config = PipelineConfig(
        seed=0,
        bert_dim=16, bert_ffn=32,
        pretrain=PretrainConfig(steps=80, batch_size=8, strategy="concept"),
        contrastive=ContrastiveConfig(steps=15),
        structural=StructuralConfig(hidden_dim=16, position_dim=4),
        detector=DetectorConfig(epochs=4, batch_size=16, lr=3e-3),
    )
    pipeline = TaxonomyExpansionPipeline(config)
    pipeline.fit(small_world.existing_taxonomy, small_world.vocabulary,
                 small_click_log, small_ugc)
    return pipeline


class TestFit:
    def test_components_populated(self, fitted_pipeline):
        p = fitted_pipeline
        assert p.tokenizer is not None
        assert p.bert is not None
        assert p.relational is not None
        assert p.structural is not None
        assert p.detector is not None
        assert p.dataset is not None
        assert len(p.pretrain_history) == 80
        assert len(p.contrastive_history) == 15

    def test_visible_taxonomy_hides_heldout_edges(self, fitted_pipeline,
                                                  small_world):
        p = fitted_pipeline
        held = {s.pair for s in p.dataset.val + p.dataset.test
                if s.label == 1}
        for parent, child in held:
            assert not p.visible_taxonomy.has_edge(parent, child)
            assert small_world.existing_taxonomy.has_edge(parent, child)

    def test_dataset_statistics_consistent(self, fitted_pipeline):
        stats = fitted_pipeline.dataset.statistics()
        assert stats["E_All"] == (stats["E_Train"] + stats["E_Val"]
                                  + stats["E_Test"])
        assert stats["E_Positive"] == stats["E_Head"] + stats["E_Others"]
        assert stats["E_Negative"] == stats["E_Shuffle"] \
            + stats["E_Replace"]

    def test_score_pairs_shape_and_range(self, fitted_pipeline):
        probs = fitted_pipeline.score_pairs([("a", "b"), ("c", "d")])
        assert probs.shape == (2,)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_score_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TaxonomyExpansionPipeline().score_pairs([("a", "b")])


class TestExpand:
    def test_expand_grows_taxonomy(self, fitted_pipeline, small_world,
                                   small_click_log):
        result = fitted_pipeline.expand(small_world.existing_taxonomy,
                                        small_click_log,
                                        small_world.vocabulary)
        assert result.taxonomy.num_edges >= \
            small_world.existing_taxonomy.num_edges
        # every attached edge was scored at or above the threshold
        threshold = fitted_pipeline.config.expansion.threshold
        for edge in result.attached_edges:
            assert result.scored_pairs[edge] >= threshold

    def test_candidate_map_covers_new_concepts(self, small_world,
                                               small_click_log):
        candidates = candidate_map(small_click_log, small_world.vocabulary)
        assert candidates
        mentioned = {c for items in candidates.values() for c in items}
        assert mentioned & set(small_world.new_concepts)


class TestAblationsRun:
    """Each ablation switch must produce a runnable pipeline."""

    @pytest.mark.parametrize("overrides", [
        {"use_template": False},
        {"use_click_graph": False},
        {"use_contrastive": False},
        {"random_features": True},
        {"isa_pretraining": False},
    ])
    def test_pipeline_variants(self, small_world, small_click_log,
                               small_ugc, overrides):
        config = PipelineConfig(
            seed=0, bert_dim=16, bert_ffn=32,
            pretrain=PretrainConfig(steps=10, batch_size=8,
                                    strategy="concept"),
            contrastive=ContrastiveConfig(steps=3),
            structural=StructuralConfig(hidden_dim=8, position_dim=2),
            detector=DetectorConfig(epochs=1, batch_size=16),
            **overrides)
        pipeline = TaxonomyExpansionPipeline(config)
        pipeline.fit(small_world.existing_taxonomy, small_world.vocabulary,
                     small_click_log, small_ugc)
        assert pipeline.score_pairs([("a", "b")]).shape == (1,)

    def test_detector_feature_ablations(self, small_world, small_click_log,
                                        small_ugc):
        for det in (DetectorConfig(use_relational=False, epochs=1),
                    DetectorConfig(use_structural=False, epochs=1)):
            config = PipelineConfig(
                seed=0, bert_dim=16, bert_ffn=32,
                pretrain=PretrainConfig(steps=10, batch_size=8,
                                        strategy="concept"),
                contrastive=ContrastiveConfig(steps=3),
                structural=StructuralConfig(hidden_dim=8, position_dim=2),
                detector=det)
            pipeline = TaxonomyExpansionPipeline(config)
            pipeline.fit(small_world.existing_taxonomy,
                         small_world.vocabulary, small_click_log, small_ugc)
            assert pipeline.score_pairs([("a", "b")]).shape == (1,)

    def test_with_overrides_helper(self):
        pipeline = TaxonomyExpansionPipeline(PipelineConfig(seed=3))
        new_config = pipeline.with_overrides(use_template=False)
        assert new_config.use_template is False
        assert new_config.seed == 3
