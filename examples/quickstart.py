"""Quickstart: expand a small synthetic product taxonomy end-to-end.

Builds a compact e-commerce world (taxonomy + click logs + reviews),
trains the user-behavior-oriented framework, evaluates the hyponymy
detector, and expands the taxonomy top-down.

Run:  python examples/quickstart.py     (~1 minute on a laptop CPU)
"""

import numpy as np

from repro.core import (
    DetectorConfig, PipelineConfig, TaxonomyExpansionPipeline,
)
from repro.gnn import ContrastiveConfig
from repro.plm import PretrainConfig
from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world,
    generate_click_logs, generate_ugc,
)


def main() -> None:
    # 1. A synthetic world substitutes for the platform's private data.
    world = build_world(WorldConfig(
        domain="fruits", seed=7, num_categories=8,
        children_per_category=(5, 9), max_depth=4,
        headword_fraction=0.8, holdout_fraction=0.2))
    click_log = generate_click_logs(world, ClickLogConfig(
        seed=7, clicks_per_query=60))
    ugc = generate_ugc(world, UgcConfig(seed=7, sentences_per_edge=2.5))
    print(f"world: {world}")
    print(f"click log: {click_log.num_records} records, "
          f"{click_log.num_pairs} distinct (query, item) pairs")
    print(f"reviews: {len(ugc)} sentences")

    # 2. Train the framework (C-BERT + click graph + GNN + classifier).
    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=1,
        pretrain=PretrainConfig(steps=400, strategy="concept"),
        contrastive=ContrastiveConfig(steps=60),
        detector=DetectorConfig(epochs=12, batch_size=16, lr=3e-3),
    ))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, click_log, ugc)

    # 3. Evaluate the hyponymy detector on the held-out test pairs.
    test = pipeline.dataset.test
    probs = pipeline.score_pairs([s.pair for s in test])
    labels = np.array([s.label for s in test])
    accuracy = ((probs >= 0.5).astype(int) == labels).mean()
    print(f"\ndetector test accuracy: {accuracy:.3f} on {len(test)} pairs")

    # 4. Expand the taxonomy and check precision against the ground truth.
    result = pipeline.expand(world.existing_taxonomy, click_log,
                             world.vocabulary)
    correct = sum(1 for parent, child in result.attached_edges
                  if world.is_true_hyponym(parent, child))
    print(f"attached {result.num_attached} new relations "
          f"({correct} correct against the hidden ground truth)")
    print(f"taxonomy grew from {world.existing_taxonomy.num_edges} to "
          f"{result.taxonomy.num_edges} edges")

    print("\nsample attachments:")
    for parent, child in result.attached_edges[:8]:
        verdict = "+" if world.is_true_hyponym(parent, child) else "-"
        print(f"  [{verdict}] {child!r}  IsA  {parent!r}")


if __name__ == "__main__":
    main()
