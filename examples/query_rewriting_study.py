"""Scenario: the offline query-rewriting user study (paper §IV-E).

Expands the Prepared Food taxonomy, then measures how rewriting
fine-grained search queries with their learned hypernyms changes the
share of relevant top-10 results in a lexical search engine.

Run:  python examples/query_rewriting_study.py   (a few minutes)
"""

from repro.core import PipelineConfig, TaxonomyExpansionPipeline
from repro.core.detector import DetectorConfig
from repro.eval import QueryRewritingStudy
from repro.gnn import ContrastiveConfig
from repro.plm import PretrainConfig
from repro.synthetic import (
    ClickLogConfig, DOMAIN_PRESETS, UgcConfig, build_world,
    generate_click_logs, generate_ugc,
)


def main() -> None:
    preset = DOMAIN_PRESETS["prepared"]
    world = build_world(preset)
    click_log = generate_click_logs(world, ClickLogConfig(
        seed=100 + preset.seed, clicks_per_query=80))
    ugc = generate_ugc(world, UgcConfig(seed=200 + preset.seed,
                                        sentences_per_edge=3.0))

    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=1,
        pretrain=PretrainConfig(steps=1000, strategy="concept"),
        contrastive=ContrastiveConfig(steps=100),
        detector=DetectorConfig(epochs=16, batch_size=16, lr=3e-3,
                                plm_lr=3e-4),
    ))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, click_log, ugc)
    expansion = pipeline.expand(world.existing_taxonomy, click_log,
                                world.vocabulary)
    print(f"expanded taxonomy: {world.existing_taxonomy.num_edges} -> "
          f"{expansion.taxonomy.num_edges} relations")

    study = QueryRewritingStudy(world, click_log, expansion.taxonomy,
                                seed=5)
    result = study.run(num_queries=100, top_k=10)
    print(f"\nqueries evaluated: {result.num_queries}")
    print(f"relevant results, original queries:  "
          f"{result.original_relevance:.1f}%")
    print(f"relevant results, rewritten queries: "
          f"{result.rewritten_relevance:.1f}%")
    print(f"improvement: +{result.improvement:.1f} points")

    print("\nexample rewrites:")
    improved = [row for row in result.per_query
                if row[1] is not None and row[3] > row[2]][:5]
    for query, hypernym, before, after in improved:
        print(f"  {query!r} -> {hypernym!r}: "
              f"{100 * before:.0f}% -> {100 * after:.0f}% relevant")


if __name__ == "__main__":
    main()
