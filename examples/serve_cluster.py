"""Scenario: the full resilient-serving lifecycle, end to end.

Walks the production-shaped path that ``docs/operations.md`` describes,
entirely in one script — every HTTP interaction goes through the
``/v1`` API via the :class:`repro.api.TaxonomyClient` SDK (no raw
urllib plumbing):

1. **fit** a small pipeline and **export** artifact bundle v1,
2. start a **2-worker sharded server** with a **durable ingest journal**
   and talk to it through the SDK (``score``, ``ingest``, ``suggest``,
   ``taxonomy``) — including retrieval-backed **top-k suggestion for a
   freshly ingested concept** (the candidate index absorbs ingest
   without a rebuild),
3. **refit** (here: perturb + recompile) and export bundle v2, then
   **hot-reload** it as an async job (``submit_reload_job`` +
   ``wait_for_job``) with zero downtime,
4. simulate a **crash** (no clean shutdown) and restart against the same
   journal directory, verifying replay reconstructs the pre-crash
   taxonomy exactly.

Run:  PYTHONPATH=src python examples/serve_cluster.py   (~2 minutes)
"""

import tempfile
import threading

from repro.api import TaxonomyClient
from repro.core import (
    DetectorConfig, PipelineConfig, TaxonomyExpansionPipeline,
)
from repro.gnn import ContrastiveConfig, StructuralConfig
from repro.plm import PretrainConfig
from repro.serving import (
    ArtifactBundle, IngestJournal, ServiceConfig, ShardedScorerPool,
    TaxonomyService, make_server,
)
from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world,
    generate_click_logs, generate_ugc,
)


def fit_and_export(world, click_log, ugc, directory, seed=0):
    """Train one small pipeline and export its serving bundle."""
    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=seed, bert_dim=16, bert_ffn=32,
        pretrain=PretrainConfig(steps=40, batch_size=8,
                                strategy="concept"),
        contrastive=ContrastiveConfig(steps=8),
        structural=StructuralConfig(hidden_dim=8, position_dim=2),
        detector=DetectorConfig(epochs=2, batch_size=16)))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, click_log, ugc)
    ArtifactBundle.export(pipeline, directory,
                          taxonomy=world.existing_taxonomy,
                          vocabulary=world.vocabulary)
    return pipeline


def main() -> None:
    world = build_world(WorldConfig(
        domain="fruits", seed=7, num_categories=6,
        children_per_category=(4, 7), max_depth=4,
        headword_fraction=0.8, children_per_node=(0, 3),
        holdout_fraction=0.2))
    click_log = generate_click_logs(world, ClickLogConfig(
        seed=5, clicks_per_query=40))
    ugc = generate_ugc(world, UgcConfig(seed=5, sentences_per_edge=2.0))

    workdir = tempfile.mkdtemp(prefix="serve_cluster_")
    bundle_v1 = f"{workdir}/bundle_v1"
    bundle_v2 = f"{workdir}/bundle_v2"
    journal_dir = f"{workdir}/journal"

    # -- 1. fit + export --------------------------------------------------
    print("== fitting pipeline and exporting bundle v1 ==")
    pipeline = fit_and_export(world, click_log, ugc, bundle_v1)
    probe_pairs = [list(s.pair) for s in pipeline.dataset.all_pairs][:4]

    # -- 2. sharded server with a journal ---------------------------------
    print("== starting 2-worker server with journal ==")
    pool = ShardedScorerPool(bundle_v1, num_workers=2).start()
    journal = IngestJournal(journal_dir, fsync_every=1)
    service = TaxonomyService(ArtifactBundle.load(bundle_v1),
                              ServiceConfig(), pool=pool, journal=journal)
    service.start()
    server = make_server(service, port=0)  # ephemeral port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = TaxonomyClient(f"http://{host}:{port}", timeout=60.0)

    scores_v1 = client.score(probe_pairs)
    print(f"scores (v1): "
          f"{[round(p, 4) for p in scores_v1['probabilities']]}")

    records = [[query, item, count]
               for (query, item), count in
               sorted(click_log.counts.items())[:30]]
    ingested = client.ingest(records, sync=True)
    print(f"ingested batch: {ingested['report']['num_attached']} "
          f"edge(s) attached")
    before_crash = client.taxonomy()
    print(f"taxonomy: {before_crash['stats']['edges']} edges after "
          f"{before_crash['stats']['ingested_batches']} batch(es)")

    # Retrieval-backed suggestion for a concept the ingest just
    # attached: the candidate index extends incrementally (no rebuild),
    # so the new node is immediately retrievable and re-ranked by the
    # exact pair scorer.
    attached = ingested["report"]["attached_edges"]
    probe_concept = attached[0][1] if attached else records[0][0]
    suggestion = client.suggest(probe_concept, k=3)
    print(f"suggest({probe_concept!r}): "
          + ", ".join(f"{c['concept']} p={c['probability']:.3f}"
                      for c in suggestion["candidates"])
          + f"  [{suggestion['retrieval']['mode']} index, "
          f"{suggestion['retrieval']['index_size']} concepts]")

    # -- 3. hot reload (async job through the SDK) ------------------------
    print("== exporting refit bundle v2 and hot-reloading ==")
    refit = ArtifactBundle.load(bundle_v1).pipeline
    for parameter in refit.detector.classifier.parameters():
        parameter.data = parameter.data + 0.05  # stand-in for a refit
    refit.detector.compile_inference(force=True)
    ArtifactBundle.export(refit, bundle_v2,
                          taxonomy=world.existing_taxonomy,
                          vocabulary=world.vocabulary)
    job = client.submit_reload_job(bundle_v2)
    print(f"reload job {job['id']} submitted ({job['status']})")
    outcome = client.wait_for_job(job["id"], timeout=120.0)
    print(f"reload: {outcome['result']}")
    scores_v2 = client.score(probe_pairs)
    print(f"scores (v2): "
          f"{[round(p, 4) for p in scores_v2['probabilities']]}")
    assert scores_v2["probabilities"] != scores_v1["probabilities"], \
        "reload should change the model"

    # -- 4. crash + replay ------------------------------------------------
    print("== simulating crash (no clean shutdown) and replaying ==")
    server.shutdown()
    server.server_close()
    pool.stop()  # the 'machine' goes down; journal is NOT closed cleanly

    restarted = TaxonomyService(ArtifactBundle.load(bundle_v1),
                                ServiceConfig(),
                                journal=IngestJournal(journal_dir))
    summary = restarted.replay_journal()
    print(f"replay: {summary}")
    after_crash = restarted.taxonomy_state()
    assert after_crash["stats"]["edges"] == \
        before_crash["stats"]["edges"], "replay must restore edge count"
    # Insertion order may differ across replay; the edge *set* must not.
    assert {tuple(edge) for edge in after_crash["edges"]} == \
        {tuple(edge) for edge in before_crash["edges"]}, \
        "replay must restore the exact edge set"
    print(f"restored {after_crash['stats']['edges']} edges — state "
          f"matches the pre-crash snapshot")
    restarted.stop()
    print("done")


if __name__ == "__main__":
    main()
