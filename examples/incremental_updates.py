"""Scenario: continuous taxonomy updates from daily click-log batches.

The paper's deployment claim (§I): the framework "can continuously
update the existing taxonomy as user behavior information grows day by
day".  This example trains once, then streams three daily log batches
through an :class:`IncrementalExpander`, persisting the taxonomy to disk
after each day.

Run:  python examples/incremental_updates.py   (~2 minutes)
"""

import tempfile

from repro.core import (
    DetectorConfig, ExpansionConfig, IncrementalExpander, PipelineConfig,
    TaxonomyExpansionPipeline,
)
from repro.gnn import ContrastiveConfig
from repro.plm import PretrainConfig
from repro.synthetic import (
    ClickLogConfig, UgcConfig, WorldConfig, build_world,
    generate_click_logs, generate_ugc,
)
from repro.taxonomy import load_taxonomy, save_taxonomy


def main() -> None:
    world = build_world(WorldConfig(
        domain="prepared", seed=9, num_categories=10,
        children_per_category=(6, 10), max_depth=4,
        headword_fraction=0.8, holdout_fraction=0.2))
    ugc = generate_ugc(world, UgcConfig(seed=9, sentences_per_edge=2.5))

    # Day 0: train on the first batch of behaviour data.
    day_zero = generate_click_logs(world, ClickLogConfig(
        seed=90, clicks_per_query=50))
    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=2,
        pretrain=PretrainConfig(steps=500, strategy="concept"),
        contrastive=ContrastiveConfig(steps=60),
        detector=DetectorConfig(epochs=12, batch_size=16, lr=3e-3),
    ))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, day_zero, ugc)

    expander = IncrementalExpander(
        pipeline.score_pairs, world.existing_taxonomy, world.vocabulary,
        ExpansionConfig(threshold=0.5))

    with tempfile.TemporaryDirectory() as workdir:
        for day in range(1, 4):
            batch = generate_click_logs(world, ClickLogConfig(
                seed=90 + day, clicks_per_query=40))
            report = expander.ingest(batch)
            snapshot = f"{workdir}/taxonomy_day{day}.json"
            save_taxonomy(expander.taxonomy, snapshot)
            print(f"day {day}: {report.new_candidate_queries} queries with "
                  f"new candidates, +{report.num_attached} relations, "
                  f"taxonomy now {report.taxonomy_edges_after} edges "
                  f"(snapshot: {snapshot})")

        final = load_taxonomy(f"{workdir}/taxonomy_day3.json")
    grown = final.num_edges - world.existing_taxonomy.num_edges
    correct = sum(1 for parent, child in final.edges()
                  if world.is_true_hyponym(parent, child))
    print(f"\nafter 3 days: +{grown} relations "
          f"({100 * correct / final.num_edges:.1f}% of all edges correct "
          f"against the hidden ground truth)")


if __name__ == "__main__":
    main()
