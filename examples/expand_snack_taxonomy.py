"""Scenario: expand the Snack domain taxonomy at benchmark scale.

Mirrors the paper's deployment story (§IV-B-2): train on the Snack
domain, expand the taxonomy with click-log candidates, report the growth
factor and the precision a three-judge annotation panel would measure.

Run:  python examples/expand_snack_taxonomy.py   (several minutes)
"""

from repro.core import PipelineConfig, TaxonomyExpansionPipeline
from repro.core.detector import DetectorConfig
from repro.eval import manual_precision
from repro.gnn import ContrastiveConfig
from repro.plm import PretrainConfig
from repro.synthetic import (
    ClickLogConfig, DOMAIN_PRESETS, UgcConfig, build_world,
    generate_click_logs, generate_ugc,
)


def main() -> None:
    preset = DOMAIN_PRESETS["snack"]
    world = build_world(preset)
    click_log = generate_click_logs(world, ClickLogConfig(
        seed=100 + preset.seed, clicks_per_query=80))
    ugc = generate_ugc(world, UgcConfig(seed=200 + preset.seed,
                                        sentences_per_edge=3.0))
    print(f"Snack world: {world.full_taxonomy.num_nodes} concepts, "
          f"{world.full_taxonomy.num_edges} relations, "
          f"{len(world.new_concepts)} held-out new concepts")

    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=1,
        pretrain=PretrainConfig(steps=1200, strategy="concept"),
        contrastive=ContrastiveConfig(steps=100),
        detector=DetectorConfig(epochs=20, batch_size=16, lr=3e-3,
                                plm_lr=3e-4),
    ))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, click_log, ugc)

    result = pipeline.expand(world.existing_taxonomy, click_log,
                             world.vocabulary)
    before = world.existing_taxonomy.num_edges
    after = result.taxonomy.num_edges
    precision = manual_precision(world, result.attached_edges,
                                 sample_size=1000, seed=3,
                                 error_rate=0.03)
    print(f"\nrelations: {before} -> {after} "
          f"(x{after / before:.2f} growth)")
    print(f"attached: {result.num_attached} relations at "
          f"{precision:.1f}% precision (simulated 3-judge panel)")

    new_attached = sorted(
        {child for _p, child in result.attached_edges
         if child in world.new_concepts})
    print(f"new concepts placed into the taxonomy: {len(new_attached)}"
          f" / {len(world.new_concepts)}")
    for child in new_attached[:10]:
        parents = sorted(result.taxonomy.parents(child))
        print(f"  {child!r} attached under {parents}")


if __name__ == "__main__":
    main()
