"""Scenario: compare the framework against published baselines.

Trains the framework on the Fruits domain, then runs a selection of the
Table V baselines on the identical self-supervised test split and candidate
search space, printing an accuracy / Edge-F1 leaderboard.

Run:  python examples/compare_methods.py   (several minutes)
"""

from repro.baselines import (
    DistanceNeighborBaseline, RandomBaseline, STEAMBaseline, SubstrBaseline,
    TMNBaseline, TaxoExpanBaseline,
)
from repro.core import PipelineConfig, TaxonomyExpansionPipeline
from repro.core.detector import DetectorConfig
from repro.eval import ancestor_pairs, evaluate_on_dataset
from repro.gnn import ContrastiveConfig
from repro.plm import PretrainConfig
from repro.synthetic import (
    ClickLogConfig, DOMAIN_PRESETS, UgcConfig, build_world,
    generate_click_logs, generate_ugc,
)


def main() -> None:
    preset = DOMAIN_PRESETS["fruits"]
    world = build_world(preset)
    click_log = generate_click_logs(world, ClickLogConfig(
        seed=100 + preset.seed, clicks_per_query=80))
    ugc = generate_ugc(world, UgcConfig(seed=200 + preset.seed,
                                        sentences_per_edge=3.0))
    closure = ancestor_pairs(world.full_taxonomy)

    pipeline = TaxonomyExpansionPipeline(PipelineConfig(
        seed=1,
        pretrain=PretrainConfig(steps=1200, strategy="concept"),
        contrastive=ContrastiveConfig(steps=100),
        detector=DetectorConfig(epochs=20, batch_size=16, lr=3e-3,
                                plm_lr=3e-4),
    ))
    pipeline.fit(world.existing_taxonomy, world.vocabulary, click_log, ugc)
    dataset = pipeline.dataset
    visible = pipeline.visible_taxonomy

    concepts = sorted(world.vocabulary.concepts())
    matrix = pipeline.concept_embedding_matrix(concepts)
    embeddings = dict(zip(concepts, matrix))

    contenders = {
        "Ours": lambda pairs: pipeline.detector.predict(pairs),
        "Random": RandomBaseline(0).predict,
        "Substr": SubstrBaseline().predict,
        "Distance-Neighbor": DistanceNeighborBaseline(
            embeddings, visible).fit(dataset.train, dataset.val).predict,
        "TaxoExpan": TaxoExpanBaseline(visible, embeddings, seed=0)
        .fit(dataset.train, dataset.val).predict,
        "TMN": TMNBaseline(embeddings, seed=0)
        .fit(dataset.train, dataset.val).predict,
        "STEAM": STEAMBaseline(embeddings, visible, seed=0)
        .fit(dataset.train, dataset.val).predict,
    }

    print(f"\n{'method':<20} {'Acc':>7} {'Edge-F1':>9} {'Anc-F1':>8}")
    print("-" * 46)
    leaderboard = []
    for name, predict in contenders.items():
        metrics = evaluate_on_dataset(predict, dataset.test, closure)
        leaderboard.append((metrics["accuracy"], name, metrics))
    for accuracy, name, metrics in sorted(leaderboard, reverse=True):
        print(f"{name:<20} {100 * accuracy:>7.2f} "
              f"{100 * metrics['edge_f1']:>9.2f} "
              f"{100 * metrics['ancestor_f1']:>8.2f}")


if __name__ == "__main__":
    main()
