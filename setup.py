"""Legacy setup shim: this offline environment lacks the `wheel` package, so
PEP 517/660 editable installs are unavailable; `pip install -e . --no-use-pep517`
(or plain `pip install -e .` with older pip) goes through setup.py develop."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
