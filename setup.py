"""Legacy setup shim: this offline environment lacks the `wheel` package, so
PEP 517/660 editable installs are unavailable; `pip install -e . --no-use-pep517`
(or plain `pip install -e .` with older pip) goes through setup.py develop."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Product Taxonomy Expansion with User "
                 "Behaviors Supervision' (ICDE 2022) with an online "
                 "serving layer"),
    long_description=("Taxonomy expansion from user click logs: C-BERT "
                      "relational encoding, GNN structural encoding, "
                      "adaptively self-supervised hyponymy detection, "
                      "top-down expansion, incremental updates, and a "
                      "micro-batched HTTP serving subsystem."),
    long_description_content_type="text/plain",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3 :: Only",
        "Programming Language :: Python :: 3.10",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
