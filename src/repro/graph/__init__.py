"""User-click-graph construction: matching, weighting, heterogeneous graph."""

from .matching import contains_token_run, identify_concept, ConceptMatcher
from .weighting import (
    item_frequency, inverse_query_frequency, assign_edge_weights,
)
from .heterograph import HeteroGraph
from .construction import (
    GraphConstructionResult, collect_concept_clicks, build_heterograph,
)

__all__ = [
    "contains_token_run", "identify_concept", "ConceptMatcher",
    "item_frequency", "inverse_query_frequency", "assign_edge_weights",
    "HeteroGraph",
    "GraphConstructionResult", "collect_concept_clicks", "build_heterograph",
]
