"""Heterogeneous edge-weighted graph (paper §III-A).

The graph fuses two edge types:

* ``taxonomy`` edges copied from the existing taxonomy (weight 1.0),
* ``click`` edges connecting query concepts to identified item concepts,
  weighted by the IF/IQF² softmax attribute.

The GNN propagates over this graph; the candidate hyponymy pairs for
classification are exactly the click edges.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

import numpy as np

__all__ = ["HeteroGraph"]


class HeteroGraph:
    """Undirected-for-propagation, typed, weighted concept graph.

    Edges are stored directed (query -> item / parent -> child) with a type
    tag, but neighborhood queries treat them as undirected, matching the
    paper's GCN formulation over an undirected graph (the direction signal
    is reintroduced by position embeddings, §III-B-2).
    """

    TAXONOMY = "taxonomy"
    CLICK = "click"

    def __init__(self):
        self._nodes: dict[str, None] = {}
        self._edges: dict[tuple[str, str], tuple[str, float]] = {}
        self._neighbors: dict[str, dict[str, float]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> None:
        if node not in self._nodes:
            self._nodes[node] = None
            self._neighbors[node]  # materialise the bucket

    def add_edge(self, source: str, target: str, edge_type: str,
                 weight: float = 1.0) -> None:
        """Insert/overwrite a typed weighted edge ``source -> target``."""
        if edge_type not in (self.TAXONOMY, self.CLICK):
            raise ValueError(f"unknown edge type {edge_type!r}")
        if source == target:
            raise ValueError("self-loops are not allowed")
        if weight < 0:
            raise ValueError("weight must be non-negative")
        self.add_node(source)
        self.add_node(target)
        self._edges[(source, target)] = (edge_type, float(weight))
        self._neighbors[source][target] = float(weight)
        self._neighbors[target][source] = float(weight)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Nodes in insertion order (stable for embedding indexing)."""
        return list(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def has_edge(self, source: str, target: str) -> bool:
        return (source, target) in self._edges

    def edge_weight(self, source: str, target: str) -> float:
        return self._edges[(source, target)][1]

    def edge_type(self, source: str, target: str) -> str:
        return self._edges[(source, target)][0]

    def edges(self, edge_type: str | None = None
              ) -> Iterator[tuple[str, str, str, float]]:
        """Iterate ``(source, target, type, weight)``; optionally filtered."""
        for (source, target), (etype, weight) in self._edges.items():
            if edge_type is None or etype == edge_type:
                yield (source, target, etype, weight)

    def neighbors(self, node: str) -> dict[str, float]:
        """Undirected neighborhood with weights."""
        return dict(self._neighbors[node])

    def degree(self, node: str) -> int:
        return len(self._neighbors[node])

    # ------------------------------------------------------------------
    # matrix exports for the GNN substrate
    # ------------------------------------------------------------------
    def node_index(self) -> dict[str, int]:
        """Stable node -> row index mapping."""
        return {node: i for i, node in enumerate(self._nodes)}

    def adjacency(self, add_self_loops: bool = True) -> np.ndarray:
        """Dense symmetric weighted adjacency (paper's a_uv in Eq. 12).

        Self-loops carry weight 1 so a node always aggregates itself
        (the paper's N~(u) includes u).
        """
        index = self.node_index()
        size = len(index)
        adj = np.zeros((size, size), dtype=np.float64)
        for node, neighbors in self._neighbors.items():
            i = index[node]
            for other, weight in neighbors.items():
                j = index[other]
                adj[i, j] = max(adj[i, j], weight)
                adj[j, i] = max(adj[j, i], weight)
        if add_self_loops:
            np.fill_diagonal(adj, 1.0)
        return adj

    def __repr__(self) -> str:
        clicks = sum(1 for _ in self.edges(self.CLICK))
        return (f"HeteroGraph(nodes={self.num_nodes}, "
                f"taxonomy_edges={self.num_edges - clicks}, "
                f"click_edges={clicks})")
