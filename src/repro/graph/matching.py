"""Node identification via longest-common-substring matching (paper §III-A-2).

An item title like "well-known cheese bun combo" must be mapped to the
vocabulary concept it mentions ("cheese bun").  The paper uses longest
common sub-string matching on Chinese character strings; for our
whitespace-tokenised names the equivalent is the longest *contiguous token
run* shared between the title and a vocabulary concept, requiring the full
concept to appear in the title.
"""

from __future__ import annotations

from ..taxonomy import ConceptVocabulary

__all__ = ["contains_token_run", "identify_concept", "ConceptMatcher"]


def contains_token_run(haystack_tokens: list[str],
                       needle_tokens: list[str]) -> bool:
    """True when ``needle_tokens`` occurs contiguously in ``haystack_tokens``."""
    n, m = len(haystack_tokens), len(needle_tokens)
    if m == 0 or m > n:
        return False
    for start in range(n - m + 1):
        if haystack_tokens[start:start + m] == needle_tokens:
            return True
    return False


def identify_concept(item_title: str,
                     vocabulary: ConceptVocabulary) -> str | None:
    """Return the longest vocabulary concept mentioned in ``item_title``.

    Ties are broken toward more tokens, then more characters, then
    lexicographically for determinism.  Returns None when no concept
    matches (the paper's "#IOthers" items).
    """
    tokens = item_title.split()
    best: str | None = None
    best_key = (-1, -1, "")
    for concept in vocabulary.candidates_in_text(item_title):
        concept_tokens = concept.split()
        if not contains_token_run(tokens, concept_tokens):
            continue
        key = (len(concept_tokens), len(concept), concept)
        if (key[0], key[1]) > (best_key[0], best_key[1]) or (
                (key[0], key[1]) == (best_key[0], best_key[1])
                and concept < best_key[2]):
            best = concept
            best_key = key
    return best


class ConceptMatcher:
    """Memoising wrapper around :func:`identify_concept`.

    Click logs repeat item titles heavily; caching turns identification into
    a single pass over distinct titles.
    """

    def __init__(self, vocabulary: ConceptVocabulary):
        self._vocabulary = vocabulary
        self._cache: dict[str, str | None] = {}

    def __call__(self, item_title: str) -> str | None:
        if item_title not in self._cache:
            self._cache[item_title] = identify_concept(
                item_title, self._vocabulary)
        return self._cache[item_title]

    @property
    def cache_size(self) -> int:
        return len(self._cache)
