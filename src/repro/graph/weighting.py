"""Edge-weight assignment: IF / IQF scheme (paper §III-A-4, Eqs. 3-5).

* **Item Frequency** ``IF(q, i)`` — clicks on item concept *i* under query
  *q*, normalised over all item concepts clicked under *q* (Eq. 3).  Pushes
  down *intention-drifted* noise, which is rare per query.
* **Inverse Query Frequency** ``IQF(i)`` — ``log(|Q| / |{q : q -> i}|)``
  (Eq. 4).  Pushes down *common-but-non-sense* items clicked under most
  queries ("sweet soup").
* The edge attribute is ``softmax(IF * IQF^2)`` within each query (Eq. 5),
  so weights under one query sum to 1.
"""

from __future__ import annotations

import math
from collections import defaultdict

__all__ = ["item_frequency", "inverse_query_frequency", "assign_edge_weights"]


def item_frequency(click_counts: dict[tuple[str, str], int]
                   ) -> dict[tuple[str, str], float]:
    """IF for every (query concept, item concept) pair (Eq. 3)."""
    per_query_total: dict[str, int] = defaultdict(int)
    for (query, _item), count in click_counts.items():
        per_query_total[query] += count
    return {
        (query, item): count / per_query_total[query]
        for (query, item), count in click_counts.items()
    }


def inverse_query_frequency(click_counts: dict[tuple[str, str], int]
                            ) -> dict[str, float]:
    """IQF for every item concept (Eq. 4)."""
    queries: set[str] = set()
    queries_per_item: dict[str, set[str]] = defaultdict(set)
    for (query, item) in click_counts:
        queries.add(query)
        queries_per_item[item].add(query)
    total = len(queries)
    return {
        item: math.log(total / len(qs))
        for item, qs in queries_per_item.items()
    }


def assign_edge_weights(click_counts: dict[tuple[str, str], int]
                        ) -> dict[tuple[str, str], float]:
    """Edge attributes via per-query softmax of ``IF * IQF^2`` (Eq. 5)."""
    if not click_counts:
        return {}
    if_scores = item_frequency(click_counts)
    iqf_scores = inverse_query_frequency(click_counts)
    raw: dict[tuple[str, str], float] = {
        pair: if_scores[pair] * iqf_scores[pair[1]] ** 2
        for pair in click_counts
    }
    by_query: dict[str, list[tuple[str, str]]] = defaultdict(list)
    for pair in raw:
        by_query[pair[0]].append(pair)
    weights: dict[tuple[str, str], float] = {}
    for query, pairs in by_query.items():
        scores = [raw[p] for p in pairs]
        peak = max(scores)
        exps = [math.exp(s - peak) for s in scores]
        total = sum(exps)
        for pair, value in zip(pairs, exps):
            weights[pair] = value / total
    return weights
