"""Graph construction pipeline (paper §III-A, four steps).

1. **Items collection** — treat existing-taxonomy concepts as query concepts
   and gather their clicked items from the logs.
2. **Nodes identification** — map each clicked item title to a vocabulary
   concept via longest-common-substring matching.
3. **Edge connection** — connect query concepts to identified item concepts.
4. **Weight assignment** — IF/IQF² softmax attributes on click edges;
   taxonomy edges keep weight 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..synthetic.clicklogs import ClickLog
from ..taxonomy import ConceptVocabulary, Taxonomy
from .heterograph import HeteroGraph
from .matching import ConceptMatcher
from .weighting import assign_edge_weights

__all__ = ["GraphConstructionResult", "collect_concept_clicks",
           "build_heterograph"]


@dataclass
class GraphConstructionResult:
    """Everything downstream modules need from graph construction."""

    graph: HeteroGraph
    #: aggregated clicks per (query concept, item concept), q != i
    concept_clicks: Counter = field(default_factory=Counter)
    #: IF·IQF² softmax weight per (query concept, item concept)
    weights: dict[tuple[str, str], float] = field(default_factory=dict)
    #: candidate hyponymy pairs = click edges not already in the taxonomy
    candidate_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: item titles that matched no vocabulary concept
    unmatched_items: Counter = field(default_factory=Counter)
    #: distinct item titles seen per query concept
    items_per_query: dict[str, set[str]] = field(default_factory=dict)


def collect_concept_clicks(
        taxonomy: Taxonomy, vocabulary: ConceptVocabulary, click_log: ClickLog,
) -> GraphConstructionResult:
    """Steps 1-2: collect clicks for taxonomy queries, identify concepts.

    Returns a partially-filled :class:`GraphConstructionResult` whose graph
    is empty; :func:`build_heterograph` completes steps 3-4.
    """
    matcher = ConceptMatcher(vocabulary)
    result = GraphConstructionResult(graph=HeteroGraph())
    for (query, item), count in click_log.counts.items():
        if query not in taxonomy:
            continue  # only existing-taxonomy concepts act as queries
        result.items_per_query.setdefault(query, set()).add(item)
        concept = matcher(item)
        if concept is None:
            result.unmatched_items[item] += count
            continue
        if concept == query:
            continue  # an item restating the query adds no candidate edge
        result.concept_clicks[(query, concept)] += count
    return result


def build_heterograph(
        taxonomy: Taxonomy, vocabulary: ConceptVocabulary, click_log: ClickLog,
) -> GraphConstructionResult:
    """Run the full four-step construction and return the populated result."""
    result = collect_concept_clicks(taxonomy, vocabulary, click_log)
    result.weights = assign_edge_weights(dict(result.concept_clicks))

    graph = result.graph
    for parent, child in taxonomy.edges():
        graph.add_edge(parent, child, HeteroGraph.TAXONOMY, 1.0)
    for (query, concept), weight in result.weights.items():
        # Taxonomy edges dominate when both exist for the same pair.
        if not graph.has_edge(query, concept):
            graph.add_edge(query, concept, HeteroGraph.CLICK, weight)
    result.candidate_pairs = sorted(
        pair for pair in result.concept_clicks
        if not taxonomy.has_edge(*pair)
    )
    return result
