"""User-generated-content (UGC) corpus generation (paper Definition 4).

UGC implicitly expresses hyponymy: "The toast in this bakery is delicious"
next to "The bakery sells all kinds of bread" lets a language model infer
"toast IsA bread".  The generator emits three sentence families:

* *relational* sentences that mention a true (parent, child) pair together,
  phrased with IsA-flavoured but non-Hearst templates (the paper stresses
  the relation is implicit, so we also include weakly-relational templates
  where the pair simply co-occurs),
* *mention* sentences about a single concept (flavour/price/delivery talk),
* *noise* sentences mentioning no concept at all.

C-BERT's concept-level masking learns from exactly this co-occurrence
structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .world import SyntheticWorld

__all__ = ["UgcConfig", "generate_ugc"]

RELATIONAL_TEMPLATES = [
    "the {adj} {child} is my favourite kind of {parent}",
    "this shop sells many {parent} and the {adj} {child} is the best",
    "i always order the {child} when i want {adj} {parent}",
    "their {child} tastes better than any other {adj} {parent} here",
    "for {parent} lovers the {adj} {child} is a must try",
    "the {child} here is the freshest {parent} in town",
    "we shared a {adj} {child} and some other {parent} after dinner",
    "among all the {parent} on the menu the {adj} {child} stands out",
]

#: filler adjectives diversify sentence shapes so pattern-based methods
#: (Snowball) cannot enumerate them from a few seeds
FILLER_ADJECTIVES = [
    "lovely", "decent", "famous", "amazing", "ordinary", "pricey",
    "humble", "gorgeous", "reliable", "curious", "generous", "delightful",
]

#: optional leading interjections add further shape variety
FILLER_PREFIXES = [
    "", "honestly", "frankly", "no kidding", "trust me", "in my opinion",
    "hands down", "believe me", "for real", "no doubt", "to be fair",
    "speaking of which",
]

MENTION_TEMPLATES = [
    "the {concept} was fresh and tasty",
    "portion of the {concept} is generous",
    "i did not like the {concept} much",
    "the {concept} arrived still warm",
    "great value for the {concept}",
    "the {concept} smells wonderful",
    "my kids love the {concept} from this place",
    "the {concept} was a bit too sweet for me",
]

NOISE_SENTENCES = [
    "delivery was fast and the rider was polite",
    "packaging could be better next time",
    "the shop gave us free coupons",
    "service was slow during lunch hours",
    "will definitely order again soon",
    "the price went up since last month",
]


@dataclass(frozen=True)
class UgcConfig:
    """Knobs for UGC generation."""

    seed: int = 0
    #: relational sentences per ground-truth edge (in expectation)
    sentences_per_edge: float = 2.0
    #: single-concept mention sentences per concept (in expectation)
    mentions_per_concept: float = 1.5
    #: fraction of extra pure-noise sentences relative to corpus size
    noise_fraction: float = 0.15


def generate_ugc(world: SyntheticWorld,
                 config: UgcConfig | None = None) -> list[str]:
    """Generate the review corpus for ``world``.

    Relational sentences are drawn for *ground-truth* edges, including those
    involving held-out concepts — users review products that exist on the
    platform regardless of taxonomy coverage.  This is the signal that lets
    the relational representation attach new concepts.
    """
    config = config or UgcConfig()
    rng = np.random.default_rng(config.seed)
    corpus: list[str] = []

    edges = sorted(world.full_taxonomy.edges())
    for parent, child in edges:
        if parent == world.root:
            continue  # nobody reviews "snack food" as a product
        count = int(rng.poisson(config.sentences_per_edge))
        for _ in range(count):
            template = RELATIONAL_TEMPLATES[
                int(rng.integers(0, len(RELATIONAL_TEMPLATES)))]
            adjective = FILLER_ADJECTIVES[
                int(rng.integers(0, len(FILLER_ADJECTIVES)))]
            prefix = FILLER_PREFIXES[
                int(rng.integers(0, len(FILLER_PREFIXES)))]
            sentence = template.format(parent=parent, child=child,
                                       adj=adjective)
            if prefix:
                sentence = f"{prefix} {sentence}"
            corpus.append(sentence)

    concepts = sorted(world.full_taxonomy.nodes - {world.root})
    for concept in concepts:
        count = int(rng.poisson(config.mentions_per_concept))
        for _ in range(count):
            template = MENTION_TEMPLATES[
                int(rng.integers(0, len(MENTION_TEMPLATES)))]
            corpus.append(template.format(concept=concept))

    noise_count = int(len(corpus) * config.noise_fraction)
    for _ in range(noise_count):
        corpus.append(NOISE_SENTENCES[
            int(rng.integers(0, len(NOISE_SENTENCES)))])

    rng.shuffle(corpus)
    return corpus
