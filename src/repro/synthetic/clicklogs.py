"""User click-log generation (paper Definition 3).

Click logs are ``(query, clicked item)`` records.  The generator reproduces
the paper's observed structure:

* queries are taxonomy concepts; clicked items are decorated titles of their
  true hyponyms with a Zipf-shaped popularity (the "Bread" example in
  §IV-A-4: top clicks are all correct hyponyms, noise sits in the tail),
* noise channel (i) — *intention-drifted behavior*: a fraction of clicks land
  on distractors shown nearby, i.e. hyponyms of a sibling category,
* noise channel (ii) — *common-but-non-sense behavior*: items like "sweet
  soup" co-ordered with everything, appearing under most queries,
* a slice of items mention no vocabulary concept at all (the paper's
  #IOthers column),
* only a subset of taxonomy nodes ever appear as queries (Figure 3: ~18% of
  nodes are never asked for; most leaves have nothing to click below them).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .items import decorate_item, junk_item
from .world import SyntheticWorld

__all__ = ["ClickLogConfig", "ClickLog", "generate_click_logs"]


@dataclass(frozen=True)
class ClickLogConfig:
    """Knobs for click-log generation."""

    seed: int = 0
    #: expected number of click events per query concept
    clicks_per_query: int = 60
    #: Zipf exponent for hyponym popularity
    zipf_exponent: float = 1.3
    #: probability a click drifts to a sibling-category distractor
    drift_rate: float = 0.06
    #: probability a click is a common-but-non-sense item
    common_rate: float = 0.05
    #: probability a clicked item mentions no vocabulary concept
    junk_rate: float = 0.04
    #: fraction of eligible query concepts that users never search
    unqueried_rate: float = 0.18
    #: fraction of leaf concepts users also query directly (clicking the
    #: product itself); raises node coverage as in the paper's Table I
    leaf_query_fraction: float = 0.55

    def __post_init__(self):
        total = self.drift_rate + self.common_rate + self.junk_rate
        if total >= 1.0:
            raise ValueError("noise rates must sum to < 1")


@dataclass
class ClickLog:
    """Aggregated click records: ``counts[(query, item_title)] = clicks``."""

    counts: Counter = field(default_factory=Counter)
    #: item title -> concept actually used to build it (None for junk);
    #: ground truth for analysis only — never shown to the models.
    provenance: dict[str, str | None] = field(default_factory=dict)

    @property
    def num_records(self) -> int:
        """Total number of click events."""
        return sum(self.counts.values())

    @property
    def num_pairs(self) -> int:
        """Number of distinct (query, item) pairs."""
        return len(self.counts)

    def queries(self) -> set[str]:
        return {query for query, _ in self.counts}

    def items_for(self, query: str) -> dict[str, int]:
        """Item title -> click count for one query."""
        return {item: count for (q, item), count in self.counts.items()
                if q == query}

    def pairs(self) -> list[tuple[str, str, int]]:
        """All ``(query, item, count)`` triples."""
        return [(q, item, count) for (q, item), count in self.counts.items()]


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_click_logs(world: SyntheticWorld,
                        config: ClickLogConfig | None = None) -> ClickLog:
    """Generate a :class:`ClickLog` for ``world``.

    Query concepts are the non-leaf nodes of the *full* taxonomy (users query
    coarse concepts and click fine-grained products), minus a random
    ``unqueried_rate`` slice.  Held-out ("new") concepts also appear inside
    clicked items, which is exactly how the framework discovers them.
    """
    config = config or ClickLogConfig()
    rng = np.random.default_rng(config.seed)
    log = ClickLog()

    full = world.full_taxonomy
    internal = [n for n in sorted(full.nodes) if full.children(n)
                and n != world.root]
    rng.shuffle(internal)
    cut = int(len(internal) * (1.0 - config.unqueried_rate))
    queried = sorted(internal[:cut])

    leaves = [n for n in sorted(full.nodes) if not full.children(n)]
    rng.shuffle(leaves)
    leaf_cut = int(len(leaves) * config.leaf_query_fraction)
    leaf_queries = set(sorted(leaves[:leaf_cut]))
    queried = sorted(set(queried) | leaf_queries)

    sibling_pool = sorted(full.nodes - {world.root})
    common = world.common_concepts

    for query in queried:
        if query in leaf_queries:
            # Users searching a specific product click that product.
            hyponyms = [query]
        else:
            hyponyms = sorted(full.descendants(query))
        if not hyponyms:
            continue
        rng.shuffle(hyponyms)
        weights = _zipf_weights(len(hyponyms), config.zipf_exponent)
        # Specific-product searches are rarer than category browsing.
        rate = (config.clicks_per_query / 4 if query in leaf_queries
                else config.clicks_per_query)
        clicks = int(rng.poisson(rate))
        for _ in range(clicks):
            roll = rng.random()
            if roll < config.junk_rate:
                item = junk_item(rng)
                concept = None
            elif roll < config.junk_rate + config.common_rate and common:
                concept = common[int(rng.integers(0, len(common)))]
                item = decorate_item(concept, rng)
            elif roll < (config.junk_rate + config.common_rate
                         + config.drift_rate):
                # Intention drift: a concept that is NOT a hyponym of query.
                for _ in range(20):
                    concept = sibling_pool[int(rng.integers(0, len(sibling_pool)))]
                    if (not world.is_true_hyponym(query, concept)
                            and concept != query):
                        break
                item = decorate_item(concept, rng)
            else:
                idx = int(rng.choice(len(hyponyms), p=weights))
                concept = hyponyms[idx]
                item = decorate_item(concept, rng)
            log.counts[(query, item)] += 1
            if item not in log.provenance:
                log.provenance[item] = concept
    return log
