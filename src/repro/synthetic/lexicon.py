"""Lexicon generation for the synthetic e-commerce world.

The Meituan taxonomy is built from Chinese compound nouns where most hyponyms
embed the hypernym as a suffix headword ("黑麦面包" IsA "面包"), while a
minority are atomic words related only semantically ("吐司" IsA "面包").  We
reproduce the same compositional structure with English-like names:

* *headword hyponyms* are ``modifier + parent-name`` compounds
  ("rye bread" IsA "bread"),
* *other hyponyms* are atomic names with no lexical overlap with the parent
  ("toast" IsA "bread"), generated either from curated food-word banks or,
  once those are exhausted, from a syllable-based pseudo-word generator so
  worlds can scale to thousands of concepts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Lexicon", "MODIFIERS", "DOMAIN_HEADS", "ATOMIC_BANKS",
           "ITEM_PREFIXES", "ITEM_SUFFIXES", "COMMON_NONSENSE_CONCEPTS"]

# Modifier words used to build headword compounds ("rye bread", "iced melon").
MODIFIERS = [
    "rye", "honey", "golden", "spicy", "sweet", "sour", "iced", "frozen",
    "fresh", "crispy", "soft", "fried", "baked", "steamed", "roasted",
    "grilled", "smoked", "salted", "creamy", "cheesy", "garlic", "ginger",
    "sesame", "walnut", "almond", "peanut", "coconut", "vanilla", "matcha",
    "chocolate", "caramel", "berry", "mango", "taro", "pumpkin", "purple",
    "black", "white", "red", "green", "mini", "jumbo", "royal", "classic",
    "village", "farmhouse", "island", "mountain", "river", "garden",
    "morning", "midnight", "double", "triple", "silky", "crunchy", "tender",
    "juicy", "zesty", "herbal", "smoky", "tangy", "glazed", "stuffed",
    "layered", "braided", "marble", "cloud", "snow", "amber", "crystal",
    "velvet", "rustic", "imperial", "lucky", "jade", "pearl", "sunrise",
    "harvest", "winter", "summer", "spring", "autumn",
]

# Curated category head nouns per domain (used for level-2 categories).
DOMAIN_HEADS = {
    "snack": [
        "bread", "cake", "cookie", "candy", "pastry", "pie", "bun", "roll",
        "donut", "tart", "waffle", "pudding", "mochi", "biscuit", "brownie",
        "muffin", "scone", "cracker", "toffee", "nougat", "macaron",
        "eclair", "churro", "pretzel", "fudge", "jelly", "wafer", "gateau",
    ],
    "fruits": [
        "melon", "berry", "citrus", "apple", "pear", "peach", "plum",
        "grape", "cherry", "mango", "banana", "lychee", "longan", "kiwi",
        "papaya", "guava", "apricot", "fig", "date", "pomelo", "kumquat",
        "persimmon", "durian", "rambutan", "loquat", "mulberry",
    ],
    "prepared": [
        "soup", "noodle", "dumpling", "porridge", "stew", "curry", "salad",
        "sandwich", "wrap", "skewer", "hotpot", "casserole", "omelet",
        "pancake", "risotto", "paella", "gratin", "terrine", "broth",
        "chowder", "goulash", "ramen", "udon", "congee", "bibimbap",
    ],
}

# Curated atomic ("other"-pattern) hyponyms for a few well-known categories;
# these make the case-study output (Table X) read like the paper's examples.
ATOMIC_BANKS = {
    "bread": ["toast", "baguette", "bagel", "croissant", "brioche",
              "ciabatta", "focaccia", "sourdough", "pita", "naan"],
    "melon": ["watermelon", "cantaloupe", "honeydew", "muskmelon"],
    "soup": ["minestrone", "gazpacho", "bisque", "consomme", "pho"],
    "candy": ["lollipop", "gumdrop", "marshmallow", "praline"],
    "noodle": ["spaghetti", "linguine", "vermicelli", "soba"],
    "berry": ["strawberry", "blueberry", "raspberry", "cranberry"],
}

# Merchant decorations wrapped around concept names to form item titles
# ("Well-known Cheese Bun" in the paper).
ITEM_PREFIXES = [
    "well-known", "signature", "homemade", "artisan", "premium", "famous",
    "chef's", "grandma's", "authentic", "deluxe", "select", "daily",
    "bestselling", "handcrafted", "original",
]
ITEM_SUFFIXES = [
    "combo", "set", "box", "cup", "slice", "family pack", "half portion",
    "large", "small", "twin pack", "gift box", "to go", "per 500g",
    "6 in a bag", "with sauce",
]

# Concepts ordered alongside anything (paper's "Sweet Soup" noise channel).
COMMON_NONSENSE_CONCEPTS = [
    "sweet soup", "herbal tea", "soda water", "plain rice",
]

_SYLLABLES = [
    "ka", "ri", "mo", "ta", "lu", "pe", "shi", "no", "va", "zu", "bel",
    "dor", "fin", "gra", "hol", "jin", "kel", "lam", "mir", "nol", "pon",
    "qua", "ros", "sul", "tev", "ul", "vin", "wex", "yor", "zan", "bri",
    "cho", "dre", "fle", "gli",
]


class Lexicon:
    """Deterministic name factory for one synthetic world.

    Guarantees global uniqueness of generated atomic names and head nouns so
    the concept vocabulary never aliases two different taxonomy nodes.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._used: set[str] = set()
        for bank in ATOMIC_BANKS.values():
            pass  # banks are consumed lazily; uniqueness enforced on draw

    def reserve(self, name: str) -> str:
        """Mark ``name`` as used and return it; raises if already taken."""
        if name in self._used:
            raise ValueError(f"name already used: {name!r}")
        self._used.add(name)
        return name

    def is_used(self, name: str) -> bool:
        return name in self._used

    def pseudo_word(self, min_syllables: int = 2, max_syllables: int = 3) -> str:
        """Draw a unique pronounceable pseudo-word ("karimo", "belfin")."""
        for _ in range(1000):
            count = int(self._rng.integers(min_syllables, max_syllables + 1))
            idx = self._rng.integers(0, len(_SYLLABLES), size=count)
            word = "".join(_SYLLABLES[i] for i in idx)
            if word not in self._used and not word.isdigit():
                self._used.add(word)
                return word
        raise RuntimeError("pseudo-word space exhausted")  # pragma: no cover

    def atomic_hyponym(self, parent_head: str) -> str:
        """An atomic hyponym name sharing no token with ``parent_head``.

        Prefers the curated bank for the category head, falling back to
        pseudo-words once the bank is exhausted.
        """
        bank = ATOMIC_BANKS.get(parent_head, [])
        for word in bank:
            if word not in self._used and parent_head not in word.split():
                self._used.add(word)
                return word
        return self.pseudo_word()

    def headword_child(self, parent: str) -> str:
        """A ``modifier + parent`` compound not yet used."""
        order = self._rng.permutation(len(MODIFIERS))
        for i in order:
            candidate = f"{MODIFIERS[i]} {parent}"
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
        # All single modifiers taken for this parent: stack two modifiers.
        for _ in range(1000):
            i, j = self._rng.integers(0, len(MODIFIERS), size=2)
            candidate = f"{MODIFIERS[i]} {MODIFIERS[j]} {parent}"
            if MODIFIERS[i] != MODIFIERS[j] and candidate not in self._used:
                self._used.add(candidate)
                return candidate
        raise RuntimeError("modifier space exhausted")  # pragma: no cover

    def category_head(self, domain: str, index: int) -> str:
        """The ``index``-th category head noun for ``domain``.

        Falls back to pseudo-words beyond the curated bank so worlds can have
        arbitrarily many categories.
        """
        bank = DOMAIN_HEADS.get(domain, [])
        if index < len(bank) and bank[index] not in self._used:
            self._used.add(bank[index])
            return bank[index]
        return self.pseudo_word()
