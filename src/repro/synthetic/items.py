"""Item-title decoration.

Merchants describe products with marketing text around the concept name
(paper example: "Well-known Cheese Bun" for the concept "Cheese Bun").  The
decorator wraps a concept in optional prefixes/suffixes; node identification
(paper §III-A-2) must then recover the concept via longest-common-substring
matching against the vocabulary.
"""

from __future__ import annotations

import numpy as np

from .lexicon import ITEM_PREFIXES, ITEM_SUFFIXES

__all__ = ["decorate_item", "junk_item"]


def decorate_item(concept: str, rng: np.random.Generator) -> str:
    """Wrap ``concept`` in merchant decorations to form an item title."""
    parts = [concept]
    roll = rng.random()
    if roll < 0.55:
        parts.insert(0, ITEM_PREFIXES[int(rng.integers(0, len(ITEM_PREFIXES)))])
    roll = rng.random()
    if roll < 0.45:
        parts.append(ITEM_SUFFIXES[int(rng.integers(0, len(ITEM_SUFFIXES)))])
    return " ".join(parts)


def junk_item(rng: np.random.Generator) -> str:
    """An item title mentioning no vocabulary concept (paper's #IOthers)."""
    syllables = ["zort", "quib", "flam", "nuxo", "prev", "dask", "wumb"]
    a = syllables[int(rng.integers(0, len(syllables)))]
    b = syllables[int(rng.integers(0, len(syllables)))]
    prefix = ITEM_PREFIXES[int(rng.integers(0, len(ITEM_PREFIXES)))]
    return f"{prefix} {a}{b} special"
