"""Synthetic e-commerce world: taxonomies, items, click logs, UGC.

This package is the documented substitute for Meituan's proprietary data
(see DESIGN.md §2): it generates ground-truth taxonomies with the paper's
headword/other pattern skew, Zipf-shaped click logs with the paper's two
noise channels, and a review corpus that implicitly expresses hyponymy.
"""

from .lexicon import Lexicon, MODIFIERS, DOMAIN_HEADS, ATOMIC_BANKS
from .world import WorldConfig, SyntheticWorld, build_world, DOMAIN_PRESETS
from .items import decorate_item, junk_item
from .clicklogs import ClickLogConfig, ClickLog, generate_click_logs
from .ugc import UgcConfig, generate_ugc

__all__ = [
    "Lexicon", "MODIFIERS", "DOMAIN_HEADS", "ATOMIC_BANKS",
    "WorldConfig", "SyntheticWorld", "build_world", "DOMAIN_PRESETS",
    "decorate_item", "junk_item",
    "ClickLogConfig", "ClickLog", "generate_click_logs",
    "UgcConfig", "generate_ugc",
]
