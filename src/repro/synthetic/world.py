"""Synthetic e-commerce world builder.

Substitutes for the Meituan Gourmet Food taxonomy and its concept vocabulary
(paper §IV-A).  A :class:`SyntheticWorld` holds

* ``full_taxonomy`` — the ground-truth taxonomy (what a perfect expansion
  would recover),
* ``existing_taxonomy`` — the full taxonomy with a held-out fraction of
  concepts detached (these are the "new concepts" to attach),
* ``vocabulary`` — the clean concept vocabulary C covering all concepts,
* ``new_concepts`` — the held-out concepts with their true parents,
* ``common_concepts`` — "sweet soup"-style concepts ordered alongside
  anything (noise channel ii in §III-A-4).

The pattern mix is controllable: ``headword_fraction`` of edges are
modifier+head compounds (detectable by headword, ~93% in the paper's data)
and the rest are atomic names (the hard "others" pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..taxonomy import (
    ConceptVocabulary, Taxonomy, is_headword_detectable,
)
from .lexicon import COMMON_NONSENSE_CONCEPTS, Lexicon

__all__ = ["WorldConfig", "SyntheticWorld", "build_world", "DOMAIN_PRESETS"]


@dataclass(frozen=True)
class WorldConfig:
    """Shape parameters for one synthetic domain taxonomy."""

    domain: str = "snack"
    seed: int = 0
    num_categories: int = 12
    #: children drawn per category at depth 2 (uniform in the range)
    children_per_category: tuple[int, int] = (6, 14)
    #: children drawn per node at depth >= 3
    children_per_node: tuple[int, int] = (0, 4)
    #: maximum depth of the generated tree (root at depth 1)
    max_depth: int = 5
    #: fraction of edges whose child is a modifier+parent compound
    headword_fraction: float = 0.93
    #: fraction of concepts held out as "new concepts" to re-attach
    holdout_fraction: float = 0.25
    #: probability a deeper node keeps branching at all
    branch_probability: float = 0.45

    def __post_init__(self):
        if not 0.0 <= self.headword_fraction <= 1.0:
            raise ValueError("headword_fraction must be in [0, 1]")
        if not 0.0 <= self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in [0, 1)")
        if self.max_depth < 2:
            raise ValueError("max_depth must be >= 2")


#: Presets approximating Table II's three domains (scaled down ~20x).
#: Snack is the largest and deepest with the strongest headword skew;
#: Fruits and Prepared Food are shallower with more "others" edges,
#: mirroring the per-domain |E_Others|/|E| ratios the paper reports.
DOMAIN_PRESETS = {
    "snack": WorldConfig(domain="snack", seed=11, num_categories=26,
                         children_per_category=(10, 18), max_depth=7,
                         children_per_node=(0, 4), branch_probability=0.5,
                         headword_fraction=0.88, holdout_fraction=0.15),
    "fruits": WorldConfig(domain="fruits", seed=22, num_categories=24,
                          children_per_category=(10, 18), max_depth=5,
                          children_per_node=(0, 4), branch_probability=0.55,
                          headword_fraction=0.78, holdout_fraction=0.15),
    "prepared": WorldConfig(domain="prepared", seed=33, num_categories=22,
                            children_per_category=(9, 16), max_depth=5,
                            children_per_node=(0, 4),
                            branch_probability=0.5,
                            headword_fraction=0.75, holdout_fraction=0.15),
}


@dataclass
class SyntheticWorld:
    """A generated domain world; see module docstring for the fields."""

    config: WorldConfig
    root: str
    full_taxonomy: Taxonomy
    existing_taxonomy: Taxonomy
    vocabulary: ConceptVocabulary
    #: held-out concept -> set of true parents in the full taxonomy
    new_concepts: dict[str, set[str]] = field(default_factory=dict)
    common_concepts: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # ground-truth oracles used by evaluation and the simulated annotators
    # ------------------------------------------------------------------
    def is_true_hyponym(self, parent: str, child: str) -> bool:
        """True when ``child`` is a strict descendant of ``parent``."""
        if parent not in self.full_taxonomy or child not in self.full_taxonomy:
            return False
        return self.full_taxonomy.is_ancestor(parent, child)

    def is_true_edge(self, parent: str, child: str) -> bool:
        """True when ``parent -> child`` is a direct ground-truth edge."""
        return self.full_taxonomy.has_edge(parent, child)

    def true_parents(self, concept: str) -> set[str]:
        if concept not in self.full_taxonomy:
            return set()
        return self.full_taxonomy.parents(concept)

    def __repr__(self) -> str:
        return (f"SyntheticWorld(domain={self.config.domain!r}, "
                f"full={self.full_taxonomy.num_nodes} nodes, "
                f"new={len(self.new_concepts)})")


def _grow(taxonomy: Taxonomy, lexicon: Lexicon, rng: np.random.Generator,
          node: str, head: str, depth: int, config: WorldConfig) -> None:
    """Recursively attach children below ``node`` (at ``depth``)."""
    if depth >= config.max_depth:
        return
    if depth == 2:
        low, high = config.children_per_category
    else:
        if rng.random() > config.branch_probability:
            return
        low, high = config.children_per_node
    count = int(rng.integers(low, high + 1))
    for _ in range(count):
        if rng.random() < config.headword_fraction:
            child = lexicon.headword_child(node)
            child_head = head
        else:
            child = lexicon.atomic_hyponym(head)
            child_head = child.split()[-1]
        taxonomy.add_edge(node, child)
        _grow(taxonomy, lexicon, rng, child, child_head, depth + 1, config)


def build_world(config: WorldConfig | None = None, **overrides) -> SyntheticWorld:
    """Generate a :class:`SyntheticWorld` from ``config`` (or overrides)."""
    if config is None:
        config = WorldConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config or keyword overrides, not both")
    rng = np.random.default_rng(config.seed)
    lexicon = Lexicon(rng)

    root = lexicon.reserve(f"{config.domain} food")
    full = Taxonomy()
    full.add_node(root)
    for index in range(config.num_categories):
        category = lexicon.category_head(config.domain, index)
        full.add_edge(root, category)
        _grow(full, lexicon, rng, category, category.split()[-1], 2, config)

    # Common-but-nonsense concepts live directly under the root: they are in
    # the taxonomy (they are real products) but are hyponyms of nothing else.
    common: list[str] = []
    for name in COMMON_NONSENSE_CONCEPTS:
        if not lexicon.is_used(name):
            lexicon.reserve(name)
            full.add_edge(root, name)
            common.append(name)

    vocabulary = ConceptVocabulary(full.nodes)

    # Hold out a fraction of non-root concepts as "new".  A held-out concept
    # keeps its descendants attached to it in the *ground truth*, but in the
    # existing taxonomy the whole subtree below it is re-rooted at its
    # parents only if the concept itself is a leaf-like node; to keep the
    # existing taxonomy a sensible tree we only hold out leaves and nodes
    # whose children are all leaves (the frontier, where growth happens).
    depths = full.node_depths()
    frontier = [
        node for node in full.nodes
        if node != root and node not in common
        and depths[node] >= 2
        and all(not full.children(mid) for mid in full.children(node))
    ]
    frontier.sort()  # determinism independent of set ordering
    rng.shuffle(frontier)
    quota = int(len(frontier) * config.holdout_fraction)
    held: list[str] = []
    held_set: set[str] = set()
    for node in frontier:
        if len(held) >= quota:
            break
        # Never hold out a node whose parent is already held out; keeps the
        # attachment ground truth inside the existing taxonomy.
        if full.parents(node) & held_set:
            continue
        held.append(node)
        held_set.add(node)

    existing = full.copy()
    new_concepts: dict[str, set[str]] = {}
    for node in held:
        # Children of a held-out node (always leaves, by the frontier rule)
        # are held out with it: they become depth-expansion targets whose
        # true parent is itself a new concept.
        for child in sorted(full.children(node)):
            if child in existing:
                new_concepts[child] = full.parents(child)
                existing.remove_node(child)
        new_concepts[node] = full.parents(node)
        existing.remove_node(node)

    return SyntheticWorld(
        config=config,
        root=root,
        full_taxonomy=full,
        existing_taxonomy=existing,
        vocabulary=vocabulary,
        new_concepts=new_concepts,
        common_concepts=common,
    )


def _selfcheck(world: SyntheticWorld) -> None:  # pragma: no cover - debug aid
    head = sum(1 for p, c in world.full_taxonomy.edges()
               if is_headword_detectable(p, c))
    total = world.full_taxonomy.num_edges
    print(f"{world}: headword share {head / max(total, 1):.2%}")
