"""Grow-only CSR-style adjacency owned by the inference engine.

The compiled scoring path can no longer treat the structural graph as
frozen: streamed ingestion attaches new concepts, and the engine must
propagate GNN features for them without a full artifact reload.
:class:`DynamicGraph` is the engine-side adjacency substrate that makes
that possible:

* per-node neighbour arrays (``int64`` column indices + ``float64``
  weights) that concatenate into CSR slices for any row subset — the
  shape the :mod:`repro.nn.inference` propagation kernels consume,
* O(degree) edge insertion with incremental degree maintenance (the
  row-normalisation denominators of the weighted GCN),
* frontier expansion (:meth:`expand_rows`) for the k-hop dirty set of an
  incremental recompute,
* a dense export (:meth:`dense_adjacency`) bit-compatible with
  :meth:`repro.gnn.StructuralEncoder.export_arrays`, so a freshly built
  autograd encoder over the exported arrays is the parity oracle for
  the engine's incrementally-maintained state.

Self-loops are implicit: every node carries a diagonal weight of 1.0
(exactly what ``HeteroGraph.adjacency(add_self_loops=True)`` produces),
and :meth:`gather` materialises or omits the self entry per aggregator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CsrSlice", "DynamicGraph"]

#: self-loop weight, matching ``HeteroGraph.adjacency`` / the encoders
SELF_LOOP_WEIGHT = 1.0


class CsrSlice:
    """CSR arrays for a subset of rows, ready for the gather kernels."""

    __slots__ = ("rows", "cols", "offsets", "counts", "weights", "degrees")

    def __init__(self, rows, cols, offsets, counts, weights, degrees):
        self.rows = rows          #: (R,) target row indices
        self.cols = cols          #: (nnz,) gathered column indices
        self.offsets = offsets    #: (R,) start of each row's slice
        self.counts = counts      #: (R,) entries per row
        self.weights = weights    #: (nnz,) raw edge weights
        self.degrees = degrees    #: (R,) raw weight sums incl. self-loop


class DynamicGraph:
    """Symmetric weighted adjacency with cheap append and row gather."""

    def __init__(self, nodes: list[str], adjacency: np.ndarray):
        adjacency = np.asarray(adjacency, dtype=np.float64)
        if adjacency.shape != (len(nodes), len(nodes)):
            raise ValueError("adjacency must be square over the node list")
        self._index: dict[str, int] = {}
        self._names: list[str] = []
        self._neighbors: list[np.ndarray] = []
        self._weights: list[np.ndarray] = []
        self._degrees: list[float] = []
        for row, node in enumerate(nodes):
            if node in self._index:
                raise ValueError(f"duplicate node {node!r}")
            self._index[node] = row
            self._names.append(node)
            entries = adjacency[row].copy()
            entries[row] = 0.0  # the self-loop is implicit
            cols = np.flatnonzero(entries)
            self._neighbors.append(cols.astype(np.int64))
            self._weights.append(entries[cols])
            self._degrees.append(SELF_LOOP_WEIGHT + float(entries[cols].sum()))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Live node count (grows as attachments arrive)."""
        return len(self._neighbors)

    @property
    def index(self) -> dict[str, int]:
        """The live node -> row mapping (shared, treat as read-only)."""
        return self._index

    def __contains__(self, node: str) -> bool:
        return node in self._index

    def has_edge(self, source: str, target: str) -> bool:
        """True when the undirected edge already exists."""
        u, v = self._index.get(source), self._index.get(target)
        if u is None or v is None:
            return False
        return bool(np.isin(v, self._neighbors[u]).item()) if u != v else True

    @property
    def names(self) -> list[str]:
        """Nodes in row order (the live list — treat as read-only)."""
        return self._names

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def add_node(self, node: str) -> int:
        """Register ``node``; returns its (new or existing) row index."""
        row = self._index.get(node)
        if row is not None:
            return row
        row = len(self._neighbors)
        self._index[node] = row
        self._names.append(node)
        self._neighbors.append(np.empty(0, dtype=np.int64))
        self._weights.append(np.empty(0, dtype=np.float64))
        self._degrees.append(SELF_LOOP_WEIGHT)
        return row

    def add_edge(self, source: str, target: str,
                 weight: float = 1.0) -> bool:
        """Insert the undirected edge; returns False when already present.

        Both endpoints must exist (call :meth:`add_node` first); degree
        bookkeeping updates incrementally, so the GCN normalisation of
        every untouched row is bit-identical to a from-scratch build.
        """
        u, v = self._index[source], self._index[target]
        if u == v:
            raise ValueError("self-loops are implicit, not addable")
        if np.isin(v, self._neighbors[u]).item():
            return False
        weight = float(weight)
        self._neighbors[u] = np.append(self._neighbors[u], np.int64(v))
        self._weights[u] = np.append(self._weights[u], weight)
        self._neighbors[v] = np.append(self._neighbors[v], np.int64(u))
        self._weights[v] = np.append(self._weights[v], weight)
        self._degrees[u] += weight
        self._degrees[v] += weight
        return True

    # ------------------------------------------------------------------
    # CSR gathers
    # ------------------------------------------------------------------
    def gather(self, rows: np.ndarray, include_self: bool) -> CsrSlice:
        """The CSR slice for ``rows`` (``include_self`` per aggregator)."""
        rows = np.asarray(rows, dtype=np.int64)
        col_parts: list[np.ndarray] = []
        weight_parts: list[np.ndarray] = []
        counts = np.empty(len(rows), dtype=np.int64)
        degrees = np.empty(len(rows), dtype=np.float64)
        for slot, row in enumerate(rows):
            neighbors = self._neighbors[row]
            weights = self._weights[row]
            if include_self:
                col_parts.append(np.append(neighbors, np.int64(row)))
                weight_parts.append(np.append(weights, SELF_LOOP_WEIGHT))
            else:
                col_parts.append(neighbors)
                weight_parts.append(weights)
            counts[slot] = len(col_parts[-1])
            degrees[slot] = self._degrees[row]
        offsets = np.zeros(len(rows), dtype=np.int64)
        if len(rows) > 1:
            np.cumsum(counts[:-1], out=offsets[1:])
        cols = (np.concatenate(col_parts) if col_parts
                else np.empty(0, dtype=np.int64))
        weights = (np.concatenate(weight_parts) if weight_parts
                   else np.empty(0, dtype=np.float64))
        return CsrSlice(rows, cols, offsets, counts, weights, degrees)

    def expand_rows(self, rows: np.ndarray) -> np.ndarray:
        """``rows`` plus their undirected neighbourhood, sorted unique.

        One application per extra hop grows a dirty seed into the k-hop
        frontier whose layer-k outputs an incremental recompute must
        refresh.
        """
        parts = [np.asarray(rows, dtype=np.int64)]
        parts.extend(self._neighbors[row] for row in rows)
        return np.unique(np.concatenate(parts))

    # ------------------------------------------------------------------
    # flat CSR export / zero-copy attach
    # ------------------------------------------------------------------
    def export_csr(self) -> dict:
        """Flatten the adjacency into contiguous CSR slabs.

        Returns ``{"indptr", "cols", "weights", "degrees"}`` — the shape
        published into shared memory so worker processes can rebuild the
        graph with :meth:`from_csr` without touching the bundle on disk.
        Self-loops stay implicit, exactly as stored.
        """
        size = self.num_nodes
        indptr = np.zeros(size + 1, dtype=np.int64)
        np.cumsum([len(row) for row in self._neighbors], out=indptr[1:])
        cols = (np.concatenate(self._neighbors) if size
                else np.empty(0, dtype=np.int64)).astype(np.int64, copy=False)
        weights = (np.concatenate(self._weights) if size
                   else np.empty(0, dtype=np.float64)).astype(
                       np.float64, copy=False)
        return {
            "indptr": indptr, "cols": cols, "weights": weights,
            "degrees": np.asarray(self._degrees, dtype=np.float64),
        }

    @classmethod
    def from_csr(cls, nodes: list[str], csr: dict) -> "DynamicGraph":
        """Rebuild a graph whose per-node rows are *views* into CSR slabs.

        The slabs may be read-only shared-memory segments: row arrays are
        zero-copy slices, and the first :meth:`add_edge` touching a row
        replaces that row's arrays with private copies (``np.append``
        allocates), so growth never writes through the shared mapping.
        """
        graph = object.__new__(cls)
        indptr = csr["indptr"]
        cols = csr["cols"]
        weights = csr["weights"]
        graph._names = list(nodes)
        graph._index = {node: row for row, node in enumerate(graph._names)}
        if len(graph._index) != len(graph._names):
            raise ValueError("duplicate node names in CSR export")
        graph._neighbors = [cols[indptr[row]:indptr[row + 1]]
                            for row in range(len(graph._names))]
        graph._weights = [weights[indptr[row]:indptr[row + 1]]
                          for row in range(len(graph._names))]
        graph._degrees = [float(degree) for degree in csr["degrees"]]
        return graph

    # ------------------------------------------------------------------
    # export (parity oracle)
    # ------------------------------------------------------------------
    def dense_adjacency(self) -> np.ndarray:
        """Dense symmetric matrix with unit self-loops (float64)."""
        size = self.num_nodes
        adjacency = np.zeros((size, size), dtype=np.float64)
        for row in range(size):
            adjacency[row, self._neighbors[row]] = self._weights[row]
            adjacency[row, row] = SELF_LOOP_WEIGHT
        return adjacency
