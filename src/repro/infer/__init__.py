"""Inference-engine glue: the graph-free serving path over a fitted model.

:class:`InferenceEngine` compiles a fitted
:class:`~repro.core.HyponymyDetector` into pure-numpy float32 kernels
(:mod:`repro.nn.inference`) and serves ``score_pairs`` without touching
the autograd substrate.  Path selection:

* ``REPRO_INFERENCE=fast`` (default) routes ``predict_proba`` /
  ``score_pairs`` through the engine,
* ``REPRO_INFERENCE=autograd`` keeps the float64 ``Tensor`` path (the
  training substrate and parity oracle),
* per-detector override via ``HyponymyDetector.inference_mode``.
"""

from .engine import (
    INFERENCE_ENV, MODE_AUTOGRAD, MODE_FAST, EngineStats, InferenceEngine,
    default_inference_mode, resolve_inference_mode,
)

__all__ = [
    "INFERENCE_ENV", "MODE_AUTOGRAD", "MODE_FAST", "EngineStats",
    "InferenceEngine", "default_inference_mode", "resolve_inference_mode",
]
