"""Inference-engine glue: the graph-free serving path over a fitted model.

:class:`InferenceEngine` compiles a fitted
:class:`~repro.core.HyponymyDetector` into pure-numpy float32 kernels
(:mod:`repro.nn.inference`) and serves ``score_pairs`` without touching
the autograd substrate.  Path selection:

* ``REPRO_INFERENCE=fast`` (default) routes ``predict_proba`` /
  ``score_pairs`` through the engine,
* ``REPRO_INFERENCE=autograd`` keeps the float64 ``Tensor`` path (the
  training substrate and parity oracle),
* per-detector override via ``HyponymyDetector.inference_mode``.
"""

from .engine import (
    INFER_DTYPE_ENV, INFERENCE_ENV, MODE_AUTOGRAD, MODE_FAST, EngineStats,
    InferenceEngine, default_inference_mode, default_node_dtype,
    resolve_inference_mode,
)
from .graph import CsrSlice, DynamicGraph

__all__ = [
    "INFER_DTYPE_ENV", "INFERENCE_ENV", "MODE_AUTOGRAD", "MODE_FAST",
    "CsrSlice", "DynamicGraph", "EngineStats", "InferenceEngine",
    "default_inference_mode", "default_node_dtype",
    "resolve_inference_mode",
]
