"""The vectorized inference engine for the scoring hot path.

:class:`InferenceEngine` snapshots every weight a fitted
:class:`~repro.core.HyponymyDetector` needs into contiguous float32
arrays and executes scoring entirely through the fused kernels of
:mod:`repro.nn.inference` — zero ``Tensor`` allocation, no autograd
graph, no per-row Python input loops:

* template token ids are assembled from a per-concept token cache and
  padded with **length bucketing** (short pairs never pay long-pair
  attention cost; bucket widths are rounded up so workspace buffers
  recycle across calls),
* segment ids come from vectorized boundary arithmetic instead of a
  per-row fill loop,
* the structural representation is computed **by the engine itself**:
  GNN propagation runs through the CSR kernels of
  :class:`~repro.nn.inference.CompiledPropagation` over an engine-owned
  :class:`~repro.infer.graph.DynamicGraph`, filling a node-embedding
  matrix served as a vectorized gather (unknown concepts hit a zero
  fallback row, exactly like the autograd path),
* **incremental recompute**: :meth:`InferenceEngine.apply_attachments`
  merges streamed taxonomy attachments into the live graph and
  refreshes only the k-hop dirty frontier around the new edges, in
  place, under an epoch fence — no full rebuild, no artifact reload,
* single-concept embeddings are memoised in an LRU cache.

The engine is a pure function of the detector's weights plus the
attachment deltas applied since compilation: rebuild it
(``HyponymyDetector.compile_inference(force=True)``) after any
parameter update.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..nn.inference import (
    CompiledBert, CompiledClassifier, CompiledPropagation, SCORE_TOLERANCE,
)
from .graph import DynamicGraph

__all__ = [
    "INFERENCE_ENV", "INFER_DTYPE_ENV", "MODE_AUTOGRAD", "MODE_FAST",
    "EngineStats", "InferenceEngine", "default_inference_mode",
    "default_node_dtype", "resolve_inference_mode",
]

#: environment variable selecting the scoring execution path
INFERENCE_ENV = "REPRO_INFERENCE"

#: environment variable selecting the node-matrix *storage* dtype
#: (compute stays in the engine dtype; ``float16`` halves the resident
#: size of the structural matrix for large taxonomies)
INFER_DTYPE_ENV = "REPRO_INFER_DTYPE"

_NODE_DTYPE_ALIASES = {
    "float32": np.float32, "fp32": np.float32, "single": np.float32,
    "float16": np.float16, "fp16": np.float16, "half": np.float16,
}

#: pair token-id memo bound; the whole dict is dropped when exceeded
#: (entries are tiny lists — wholesale reset is cheaper than LRU churn)
_PAIR_CACHE_LIMIT = 65536
MODE_FAST = "fast"
MODE_AUTOGRAD = "autograd"

_MODE_ALIASES = {
    "fast": MODE_FAST, "engine": MODE_FAST, "float32": MODE_FAST,
    "autograd": MODE_AUTOGRAD, "reference": MODE_AUTOGRAD,
    "float64": MODE_AUTOGRAD,
}


def default_inference_mode() -> str:
    """The process-wide execution path from ``REPRO_INFERENCE``.

    Unknown values fall back to the fast path (serving should never die
    on a typo'd environment); ``resolve_inference_mode`` validates
    explicit programmatic choices strictly.
    """
    raw = os.environ.get(INFERENCE_ENV, MODE_FAST).strip().lower()
    return _MODE_ALIASES.get(raw, MODE_FAST)


def resolve_inference_mode(mode: str | None) -> str:
    """Normalise an explicit mode override; ``None`` means env default."""
    if mode is None:
        return default_inference_mode()
    normalized = _MODE_ALIASES.get(mode.strip().lower())
    if normalized is None:
        raise ValueError(
            f"unknown inference mode {mode!r}; expected one of "
            f"{sorted(set(_MODE_ALIASES))}")
    return normalized


def default_node_dtype(fallback=np.float32) -> np.dtype:
    """Node-matrix storage dtype from ``REPRO_INFER_DTYPE``.

    Unknown values fall back to ``fallback`` (serving should never die
    on a typo'd environment, mirroring ``default_inference_mode``).
    """
    raw = os.environ.get(INFER_DTYPE_ENV, "").strip().lower()
    return np.dtype(_NODE_DTYPE_ALIASES.get(raw, fallback))


@dataclass
class EngineStats:
    """Counters describing engine traffic since compilation."""

    batches: int = 0
    pairs_scored: int = 0
    sequences_encoded: int = 0
    concepts_encoded: int = 0
    concept_cache_hits: int = 0
    dtype: str = "float32"
    node_dtype: str = "float32"
    #: incremental-recompute fence: bumped once per applied delta
    structural_epoch: int = 0
    structural_nodes: int = 0
    recompute_batches: int = 0
    rows_recomputed: int = 0
    #: last ``structural_epoch`` a retrieval index cached row norms at
    #: (-1: no index has synced); lag behind ``structural_epoch`` means
    #: a stale candidate index
    norms_epoch: int = -1

    def as_dict(self) -> dict:
        """JSON/metrics-friendly snapshot."""
        return {
            "dtype": self.dtype,
            "node_dtype": self.node_dtype,
            "batches": self.batches,
            "pairs_scored": self.pairs_scored,
            "sequences_encoded": self.sequences_encoded,
            "concepts_encoded": self.concepts_encoded,
            "concept_cache_hits": self.concept_cache_hits,
            "structural_epoch": self.structural_epoch,
            "structural_nodes": self.structural_nodes,
            "recompute_batches": self.recompute_batches,
            "rows_recomputed": self.rows_recomputed,
            "norms_epoch": self.norms_epoch,
        }


class InferenceEngine:
    """Graph-free scoring over a fitted hyponymy detector.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.core.HyponymyDetector`; its relational
        and/or structural encoders and classifier head are exported.
    dtype:
        Kernel dtype (float32 by default; float64 reproduces the
        autograd path bit-for-bit and is useful for debugging parity).
    max_batch:
        Sequences per encoder call; longer inputs are chunked.  The
        default is tuned for cache locality — larger chunks spill the
        attention score tensor out of L2/L3 and run measurably slower.
    bucket_multiple:
        Padded widths are rounded up to this multiple so length buckets
        collapse onto few distinct shapes and scratch buffers recycle.
    concept_cache_size:
        LRU capacity of the single-concept embedding cache.
    node_dtype:
        Storage dtype of the node-embedding matrix (``None`` reads
        ``REPRO_INFER_DTYPE``, defaulting to the engine dtype).
        Propagation always computes in the engine dtype; ``float16``
        merely halves the resident matrix, trading ~1e-3 relative
        quantisation on the structural features.
    """

    #: headroom rows allocated beyond the current node count so streamed
    #: attachments rarely trigger a buffer reallocation
    _GROWTH_SLACK = 64

    def __init__(self, detector, dtype=np.float32, max_batch: int = 128,
                 bucket_multiple: int = 4, concept_cache_size: int = 4096,
                 node_dtype=None):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if bucket_multiple < 1:
            raise ValueError("bucket_multiple must be >= 1")
        self.dtype = np.dtype(dtype)
        self.max_batch = max_batch
        self.bucket_multiple = bucket_multiple
        self.concept_cache_size = concept_cache_size
        self.stats = EngineStats(dtype=str(self.dtype))
        self.score_tolerance = SCORE_TOLERANCE
        # The compiled encoder reuses scratch buffers across calls, so
        # scoring is serialised: concurrent callers (e.g. synchronous
        # BatchingScorer fallback on several HTTP threads) must not
        # interleave writes into the shared workspace.
        self._lock = threading.RLock()

        relational = detector.relational
        self._relational_dim = 0
        if relational is not None:
            self.bert = CompiledBert(relational.model, dtype=self.dtype)
            tok = relational.tokenizer
            self._tokenizer = tok
            self._use_template = bool(relational.use_template)
            from ..plm.relational import TEMPLATE_WORDS
            self._infix = [tok.token_to_id(w) for w in TEMPLATE_WORDS]
            self._cls_id = tok.cls_id
            self._sep_id = tok.sep_id
            self._pad_id = tok.pad_id
            self._max_len = relational.model.config.max_len
            self._relational_dim = relational.dim
            self._token_cache: dict[str, list[int]] = {}  # guarded-by: self._lock
            #: pair -> (template ids, segment boundary)
            self._pair_cache: dict = {}  # guarded-by: self._lock
            #: pair -> pooled concept vector (LRU)
            self._concept_cache: OrderedDict = OrderedDict()  # guarded-by: self._lock
        else:
            self.bert = None

        structural = detector.structural
        self._structural_dim = 0
        self._graph = None
        self._structural_epoch = 0
        # True only on engines built by attach_shared: structural buffers
        # are read-only shared-memory views until the first mutation
        # copies them private (_materialize_structural).
        self._shared_structural = False
        self.node_dtype = (np.dtype(node_dtype) if node_dtype is not None
                           else default_node_dtype(self.dtype))
        self.stats.node_dtype = str(self.node_dtype)
        if structural is not None:
            spec = structural.propagation_spec()
            self._gnn = CompiledPropagation(spec["layers"], dtype=self.dtype)
            self._graph = DynamicGraph(spec["nodes"], spec["adjacency"])
            self._num_nodes = self._graph.num_nodes
            self._hidden_dim = self._gnn.layers[-1].out_dim
            features = np.asarray(spec["features"], dtype=self.dtype)
            capacity = self._num_nodes + 1 + self._GROWTH_SLACK
            self._features = np.zeros((capacity, features.shape[1]),
                                      dtype=self.dtype)
            self._features[:self._num_nodes] = features
            # Per-hop hidden states are retained: an incremental
            # recompute of hop k reads hop k-1 values of the frontier's
            # neighbourhood without re-propagating the whole graph.
            self._hidden_layers = [
                np.zeros((capacity, layer.out_dim), dtype=self.dtype)
                for layer in self._gnn.layers]
            # Rows >= num_nodes stay zero, so row `num_nodes` is always
            # the zero fallback for concepts outside the graph — even as
            # the matrix grows in place.
            self._node_matrix = np.zeros(
                (capacity, self._hidden_dim), dtype=self.node_dtype)
            self.recompute_structural()
            self.stats.structural_nodes = self._num_nodes
            if structural.config.use_position:
                self._position_parent = np.asarray(
                    structural.position_parent.data, dtype=self.dtype)
                self._position_child = np.asarray(
                    structural.position_child.data, dtype=self.dtype)
            else:
                self._position_parent = None
                self._position_child = None
            self._structural_dim = structural.out_dim
        else:
            self._node_matrix = None

        self.classifier = CompiledClassifier(detector.classifier,
                                             dtype=self.dtype)
        self.feature_dim = self._relational_dim + self._structural_dim

    # ------------------------------------------------------------------
    # scoring (the hot path)
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Positive-class probabilities, float64, autograd-compatible."""
        if not pairs:
            return np.zeros(0)
        with self._lock:
            features = self.pair_features(pairs)
            probs = self.classifier.positive_probability(features)
            self.stats.batches += 1
            self.stats.pairs_scored += len(pairs)
        return np.asarray(probs, dtype=np.float64)

    def stats_snapshot(self) -> EngineStats:
        """An atomic copy of the counters taken under the engine lock."""
        with self._lock:
            return replace(self.stats)

    def mark_norms_cached(self, epoch: int | None) -> None:
        """Record that a retrieval index cached row norms at ``epoch``.

        Called by :class:`~repro.retrieval.refresh.CandidateRetriever`
        whenever it syncs with this engine; ``stats.norms_epoch`` then
        exposes index staleness (lag vs ``structural_epoch``) through
        ``/metrics``.  Monotonic — an older epoch never regresses the
        marker — and a ``None`` epoch is a no-op.
        """
        if epoch is None:
            return
        with self._lock:
            self.stats.norms_epoch = max(self.stats.norms_epoch,
                                         int(epoch))

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no scoring batch is executing in this engine.

        The hot-reload path calls this on the *outgoing* engine after
        swapping a new one in: in-flight batches keep their reference
        and finish on the old weights; once :meth:`drain` returns True
        the old engine is idle and safe to discard.  Returns False if
        the engine is still busy after ``timeout`` seconds (``None``
        waits forever).  Re-entrant: a thread that is itself scoring
        returns True immediately (the workspace ``RLock`` is held by
        it).
        """
        acquired = self._lock.acquire(
            timeout=-1 if timeout is None else timeout)
        if acquired:
            self._lock.release()
        return acquired

    def pair_features(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Eq. 14 edge features ``(len(pairs), feature_dim)`` in dtype."""
        with self._lock:
            n = len(pairs)
            features = np.empty((n, self.feature_dim), dtype=self.dtype)
            if self.bert is not None:
                self._encode_pair_cls(
                    pairs, out=features[:, :self._relational_dim])
            if self._node_matrix is not None:
                self._structural_features(
                    pairs, out=features[:, self._relational_dim:])
            return features

    # ------------------------------------------------------------------
    # relational fast path
    # ------------------------------------------------------------------
    def _concept_token_ids(self, concept: str) -> list[int]:
        # holds: self._lock
        ids = self._token_cache.get(concept)
        if ids is None:
            tok = self._tokenizer
            ids = [tok.token_to_id(t) for t in concept.split()]
            if len(self._token_cache) >= _PAIR_CACHE_LIMIT:
                # Arbitrary client strings reach this cache via /score;
                # wholesale reset keeps a long-running service bounded.
                self._token_cache.clear()
            self._token_cache[concept] = ids
        return ids

    def pair_token_ids(self, query: str, item: str) -> tuple[list[int], int]:
        """Template ids + segment boundary, mirroring
        :meth:`~repro.plm.RelationalEncoder.pair_ids` (truncation
        included); the boundary is the first segment-1 position.

        Assembled sequences are memoised per pair (the expansion
        traversal and repeated candidate sets revisit pairs constantly);
        the cache is wiped wholesale past ``_PAIR_CACHE_LIMIT`` entries.
        """
        # holds: self._lock
        key = (query, item)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        query_ids = self._concept_token_ids(query)
        item_ids = self._concept_token_ids(item)
        if self._use_template:
            ids = ([self._cls_id] + query_ids + self._infix
                   + item_ids + [self._sep_id])
            boundary = 1 + len(query_ids) + len(self._infix)
        else:
            ids = ([self._cls_id] + query_ids + [self._sep_id]
                   + item_ids + [self._sep_id])
            boundary = 2 + len(query_ids)
        if len(ids) > self._max_len:
            ids = ids[:self._max_len]
            ids[-1] = self._sep_id
            boundary = min(boundary, self._max_len)
        if len(self._pair_cache) >= _PAIR_CACHE_LIMIT:
            self._pair_cache.clear()
        self._pair_cache[key] = (ids, boundary)
        return ids, boundary

    def _bucket_width(self, length: int) -> int:
        multiple = self.bucket_multiple
        return min(self._max_len, -(-length // multiple) * multiple)

    def _pack_batch(self, sequences: list[list[int]],
                    boundaries: np.ndarray, width: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized pad + mask + segment assembly for one bucket."""
        lengths = np.fromiter((len(s) for s in sequences), dtype=np.int64,
                              count=len(sequences))
        positions = np.arange(width)
        valid = positions < lengths[:, None]
        ids = np.full((len(sequences), width), self._pad_id, dtype=np.int64)
        ids[valid] = np.concatenate(sequences) if sequences else []
        segments = ((positions >= boundaries[:, None]) & valid) \
            .astype(np.int64)
        return ids, valid.astype(self.dtype), segments

    def _encode_pair_cls(self, pairs: list[tuple[str, str]],
                         out: np.ndarray) -> None:
        """Write each pair's ``[CLS]`` representation into ``out`` rows."""
        n = len(pairs)
        sequences: list[list[int]] = [None] * n
        boundaries = np.empty(n, dtype=np.int64)
        lengths = np.empty(n, dtype=np.int64)
        for row, (query, item) in enumerate(pairs):
            ids, boundary = self.pair_token_ids(query, item)
            sequences[row] = ids
            boundaries[row] = boundary
            lengths[row] = len(ids)
        # Length-sorted processing: each chunk pads only to its own
        # (rounded) max, so short pairs skip long-pair attention cost.
        # A uniform-length chunk carries no padding at all, so the
        # attention mask (and its per-layer bias pass) is dropped.
        order = np.argsort(lengths, kind="stable")
        for start in range(0, n, self.max_batch):
            chunk = order[start:start + self.max_batch]
            shortest, longest = int(lengths[chunk[0]]), int(lengths[chunk[-1]])
            uniform = shortest == longest
            width = longest if uniform else self._bucket_width(longest)
            ids, mask, segments = self._pack_batch(
                [sequences[i] for i in chunk], boundaries[chunk], width)
            hidden = self.bert.encode(ids, None if uniform else mask,
                                      segments)
            out[chunk] = hidden[:, 0, :]
            self.stats.sequences_encoded += len(chunk)

    # ------------------------------------------------------------------
    # single-concept embeddings (cached)
    # ------------------------------------------------------------------
    def encode_concepts(self, concepts: list[str],
                        pool: str = "cls") -> np.ndarray:
        """``[CLS] u [SEP]`` concept embeddings with an LRU cache.

        Matches :meth:`~repro.plm.RelationalEncoder.encode_concepts`
        within float32 tolerance; repeated concepts are free.
        """
        if self.bert is None:
            raise RuntimeError("engine has no relational encoder")
        if pool not in ("cls", "mean"):
            raise ValueError("pool must be 'cls' or 'mean'")
        with self._lock:
            return self._encode_concepts_locked(concepts, pool)

    def concept_embedding_matrix(self, concepts: list[str],
                                 batch_size: int | None = None,
                                 pool: str = "cls") -> np.ndarray:
        """Drop-in for :meth:`RelationalEncoder.concept_embedding_matrix
        <repro.plm.RelationalEncoder.concept_embedding_matrix>`.

        Same float64 output contract (within float32 tolerance), but
        served through the compiled encoder with the LRU concept cache —
        the baselines' embedding tables build at engine speed.
        ``batch_size`` is accepted for signature compatibility; the
        engine chunks by its own ``max_batch``.
        """
        del batch_size
        return np.asarray(self.encode_concepts(concepts, pool=pool),
                          dtype=np.float64)

    def _encode_concepts_locked(self, concepts: list[str],
                                pool: str) -> np.ndarray:
        # holds: self._lock
        resolved: dict[str, np.ndarray] = {}
        missing: dict[str, None] = {}
        for concept in concepts:
            cached = self._concept_cache.get((concept, pool))
            if cached is not None:
                self._concept_cache.move_to_end((concept, pool))
                self.stats.concept_cache_hits += 1
                resolved[concept] = cached
            else:
                missing[concept] = None
        todo = list(missing)
        for start in range(0, len(todo), self.max_batch):
            chunk = todo[start:start + self.max_batch]
            embedded = self._encode_concept_chunk(chunk, pool)
            for concept, vector in zip(chunk, embedded):
                resolved[concept] = vector
                self._cache_concept((concept, pool), vector)
        out = np.empty((len(concepts), self._relational_dim),
                       dtype=self.dtype)
        for row, concept in enumerate(concepts):
            out[row] = resolved[concept]
        return out

    def _encode_concept_chunk(self, concepts: list[str],
                              pool: str) -> np.ndarray:
        sequences = []
        for concept in concepts:
            ids = ([self._cls_id] + self._concept_token_ids(concept)
                   + [self._sep_id])
            if len(ids) > self._max_len:
                ids = ids[:self._max_len]
                ids[-1] = self._sep_id
            sequences.append(ids)
        boundaries = np.fromiter((len(s) for s in sequences),
                                 dtype=np.int64, count=len(sequences))
        width = self._bucket_width(int(boundaries.max(initial=1)))
        ids, mask, _ = self._pack_batch(sequences, boundaries, width)
        hidden = self.bert.encode(ids, mask)  # no segments for concepts
        self.stats.concepts_encoded += len(concepts)
        if pool == "cls":
            return hidden[:, 0, :].copy()
        content = mask.copy()
        content[ids == self._cls_id] = 0.0
        content[ids == self._sep_id] = 0.0
        denom = np.maximum(content.sum(axis=1, keepdims=True), 1.0)
        return np.einsum("bsd,bs->bd", hidden,
                         (content / denom).astype(self.dtype))

    def _cache_concept(self, key: tuple[str, str],
                       vector: np.ndarray) -> None:
        # holds: self._lock
        if not self.concept_cache_size:
            return
        self._concept_cache[key] = vector
        self._concept_cache.move_to_end(key)
        while len(self._concept_cache) > self.concept_cache_size:
            self._concept_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # structural fast path (engine-owned GNN propagation)
    # ------------------------------------------------------------------
    @property
    def structural_epoch(self) -> int:
        """Monotone fence bumped by every applied attachment delta."""
        with self._lock:
            return self._structural_epoch

    def restore_structural_epoch(self, epoch: int) -> int:
        """Pin the epoch fence after a snapshot restore; returns it.

        A restore applies the whole attachment log as *one* batch, so
        the epoch would land lower than the uninterrupted run's (which
        bumped once per batch).  Raising the fence to the recorded value
        keeps epoch-tagged consumers (shared-memory delta protocol,
        metrics, parity tests) consistent across restarts.  Never lowers
        the fence.
        """
        with self._lock:
            if int(epoch) > self._structural_epoch:
                self._structural_epoch = int(epoch)
                self.stats.structural_epoch = self._structural_epoch
            return self._structural_epoch

    def structural_csr(self) -> dict | None:
        """JSON-friendly export of the live structural graph.

        Snapshot capture uses this to persist the engine's
        :class:`~repro.infer.graph.DynamicGraph` exactly — node order,
        CSR topology, weights, and the epoch fence — so recovery can
        verify that replaying the attachment log reproduced the
        pre-crash graph bit-for-bit.  Returns ``None`` when the engine
        has no structural graph (no GNN in the compiled model).
        """
        with self._lock:
            if self._graph is None:
                return None
            csr = self._graph.export_csr()
            return {
                "epoch": int(self._structural_epoch),
                "num_nodes": int(self._num_nodes),
                "names": list(self._graph.names),
                "indptr": [int(v) for v in csr["indptr"]],
                "cols": [int(v) for v in csr["cols"]],
                "weights": [float(v) for v in csr["weights"]],
                "degrees": [float(v) for v in csr["degrees"]],
            }

    def _pair_rows(self, pairs: list[tuple[str, str]]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Row indices of each pair's nodes in the *live* engine graph.

        Mirrors ``StructuralEncoder.pair_rows`` but over the engine's
        own (growing) index: concepts attached since compilation resolve
        to their recomputed rows; unknown concepts hit the zero fallback
        row at index ``num_nodes``.
        """
        index = self._graph.index
        fallback = self._num_nodes
        q_rows = np.fromiter((index.get(q, fallback) for q, _ in pairs),
                             dtype=np.int64, count=len(pairs))
        i_rows = np.fromiter((index.get(i, fallback) for _, i in pairs),
                             dtype=np.int64, count=len(pairs))
        return q_rows, i_rows

    def _structural_features(self, pairs: list[tuple[str, str]],
                             out: np.ndarray) -> None:
        """Vectorized gather over the engine-propagated node matrix.

        The fallback row for unknown concepts is the zero row at index
        ``num_nodes`` (rows past the live node count are never written),
        matching the autograd path's zero-embedding fallback.
        """
        q_rows, i_rows = self._pair_rows(pairs)
        hidden = self._hidden_dim
        if self._position_parent is None:
            out[:, :hidden] = self._node_matrix[q_rows]
            out[:, hidden:] = self._node_matrix[i_rows]
            return
        position = self._position_parent.shape[0]
        out[:, :hidden] = self._node_matrix[q_rows]
        out[:, hidden:hidden + position] = self._position_parent
        out[:, hidden + position:2 * hidden + position] = \
            self._node_matrix[i_rows]
        out[:, 2 * hidden + position:] = self._position_child

    # ------------------------------------------------------------------
    # GNN propagation + incremental recompute-on-ingest
    # ------------------------------------------------------------------
    def recompute_structural(self) -> int:
        """Full K-hop propagation into the node matrix.

        Returns the number of row recomputations performed (rows x
        hops).  This is the from-scratch baseline the dirty-frontier
        pass of :meth:`apply_attachments` is benchmarked against
        (``benchmarks/bench_incremental_recompute.py``).
        """
        with self._lock:
            if self._graph is None:
                return 0
            self._materialize_structural()
            rows = np.arange(self._num_nodes, dtype=np.int64)
            total, _final = self._propagate_rows(rows)
            return total

    def _propagate_rows(self, rows: np.ndarray
                        ) -> tuple[int, np.ndarray]:
        """Recompute hop outputs for ``rows``, widening one hop per layer.

        Hop 1 outputs change only for nodes whose adjacency row changed
        (``rows``); hop k+1 outputs change for those nodes plus their
        neighbourhood — so the frontier is expanded *between* hops, and
        the final-hop frontier is exactly the set of node-matrix rows
        that moved.  Returns ``(total rows recomputed, final frontier)``.
        Caller holds the engine lock.
        """
        total = 0
        count = self._num_nodes
        hidden_prev = self._features[:count]
        for k in range(self._gnn.num_hops):
            if k > 0 and len(rows) < count:
                rows = self._graph.expand_rows(rows)
            sub = self._graph.gather(rows, self._gnn.includes_self(k))
            out = self._gnn.propagate_rows(
                k, hidden_prev, rows, sub.cols, sub.offsets, sub.counts,
                sub.weights, sub.degrees)
            self._hidden_layers[k][rows] = out
            total += len(rows)
            hidden_prev = self._hidden_layers[k][:count]
        self._node_matrix[rows] = \
            self._hidden_layers[-1][rows].astype(self.node_dtype)
        return total, rows

    def apply_attachments(self, edges: list[tuple[str, str]]) -> dict:
        """Merge taxonomy attachments into the live structural graph.

        For each ``(parent, child)`` edge: unseen concepts join the
        graph (initial features from the engine's own C-BERT concept
        encoder; zeros without a relational encoder), the edge is added
        with taxonomy weight 1.0, and the k-hop neighbourhood around the
        touched nodes is recomputed in place under the engine lock — an
        **epoch fence**: scoring either sees the complete pre-delta or
        the complete post-delta matrix, never a torn mix.  Already-known
        edges are skipped, so re-applying a delta log (worker respawn,
        hot reload) is idempotent.

        Returns a JSON-friendly summary: ``epoch`` (post-apply fence
        value), ``new_nodes``, ``applied_edges``, ``rows_recomputed``
        and ``dirty_concepts`` — the concepts whose structural features
        moved, which is exactly the set serving caches must invalidate.
        """
        cleaned = [(str(parent), str(child)) for parent, child in edges]
        with self._lock:
            if self._graph is None:
                return {"applied": False, "reason": "engine has no "
                        "structural graph", "epoch": 0, "new_nodes": [],
                        "applied_edges": 0, "rows_recomputed": 0,
                        "dirty_concepts": []}
            graph = self._graph
            new_nodes: list[str] = []
            seen: set[str] = set()
            for parent, child in cleaned:
                for concept in (parent, child):
                    if concept not in graph and concept not in seen:
                        seen.add(concept)
                        new_nodes.append(concept)
            fresh = [pair for pair in cleaned
                     if not graph.has_edge(*pair) and pair[0] != pair[1]]
            if not fresh and not new_nodes:
                return {"applied": True, "epoch": self._structural_epoch,
                        "new_nodes": [], "applied_edges": 0,
                        "rows_recomputed": 0, "dirty_concepts": []}
            self._materialize_structural()
            features = self._new_node_features(new_nodes)
            self._ensure_node_capacity(self._num_nodes + len(new_nodes))
            for slot, concept in enumerate(new_nodes):
                row = graph.add_node(concept)
                self._features[row] = features[slot]
            self._num_nodes = graph.num_nodes
            touched: set[int] = {graph.index[c] for c in new_nodes}
            applied = 0
            for parent, child in fresh:
                if graph.add_edge(parent, child, weight=1.0):
                    applied += 1
                    touched.add(graph.index[parent])
                    touched.add(graph.index[child])
            rows = np.fromiter(sorted(touched), dtype=np.int64,
                               count=len(touched))
            total, final_rows = self._propagate_rows(rows)
            self._structural_epoch += 1
            self.stats.structural_epoch = self._structural_epoch
            self.stats.structural_nodes = self._num_nodes
            self.stats.recompute_batches += 1
            self.stats.rows_recomputed += total
            names = graph.names
            return {"applied": True, "epoch": self._structural_epoch,
                    "new_nodes": list(new_nodes), "applied_edges": applied,
                    "rows_recomputed": total,
                    "dirty_concepts": [names[row] for row in final_rows]}

    def _new_node_features(self, concepts: list[str]) -> np.ndarray:
        """Initial (hop-0) feature rows for freshly attached concepts.

        Uses the engine's cached C-BERT ``[CLS]`` concept embeddings —
        the same source the training pipeline seeds GNN features from —
        falling back to zero rows when the detector has no relational
        encoder (or its width differs, e.g. random-feature ablations).
        Caller holds the engine lock.
        """
        width = self._features.shape[1]
        out = np.zeros((len(concepts), width), dtype=self.dtype)
        if concepts and self.bert is not None \
                and self._relational_dim == width:
            out[:] = self._encode_concepts_locked(concepts, "cls")
        return out

    def _ensure_node_capacity(self, num_nodes: int) -> None:
        """Grow the per-node buffers to hold ``num_nodes`` + fallback row.

        Amortised doubling; freshly exposed rows are zero, preserving
        the invariant that the fallback row (index ``num_nodes``) reads
        as a zero embedding.  Caller holds the engine lock.
        """
        needed = num_nodes + 1
        if self._node_matrix.shape[0] >= needed:
            return
        capacity = max(needed + self._GROWTH_SLACK,
                       2 * self._node_matrix.shape[0])

        def grown(buffer: np.ndarray) -> np.ndarray:
            replacement = np.zeros((capacity, buffer.shape[1]),
                                   dtype=buffer.dtype)
            replacement[:self._num_nodes] = buffer[:self._num_nodes]
            return replacement

        self._features = grown(self._features)
        self._hidden_layers = [grown(layer) for layer in
                               self._hidden_layers]
        self._node_matrix = grown(self._node_matrix)

    def node_embedding_matrix(self) -> np.ndarray:
        """The live propagated node embeddings as float64 ``(N, hidden)``.

        Row order matches :meth:`structural_arrays`; compare against
        ``StructuralEncoder.from_arrays(...).node_embedding_matrix()``
        for incremental-recompute parity.
        """
        with self._lock:
            return np.asarray(self._node_matrix[:self._num_nodes],
                              dtype=np.float64)

    def structural_arrays(self) -> dict:
        """The engine's live structural state as autograd-oracle inputs.

        Feed the result to :meth:`repro.gnn.StructuralEncoder.from_arrays`
        (plus ``load_state_dict`` of the original encoder weights) to
        build a from-scratch float64 encoder over exactly the graph this
        engine has grown incrementally — the parity contract for
        recompute-on-ingest.
        """
        with self._lock:
            if self._graph is None:
                raise RuntimeError("engine has no structural graph")
            count = self._num_nodes
            return {
                "nodes": list(self._graph.names),
                "features": np.asarray(self._features[:count],
                                       dtype=np.float64),
                "adjacency": self._graph.dense_adjacency(),
            }

    # ------------------------------------------------------------------
    # zero-copy shared-memory export / attach
    # ------------------------------------------------------------------
    def shared_state(self) -> tuple[dict, dict]:
        """Flatten every read-only array into (picklable meta, array dict).

        The arrays dict is what a :class:`~repro.serving.shm.SharedArtifactStore`
        publishes into segments; :meth:`attach_shared` rebuilds an engine
        over the attached views with zero copies.  Node names travel as a
        JSON-encoded ``uint8`` array so the manifest itself stays tiny.
        """
        with self._lock:
            arrays: dict[str, np.ndarray] = {}
            meta: dict = {
                "engine": {
                    "dtype": self.dtype.str,
                    "node_dtype": np.dtype(self.node_dtype).str,
                    "max_batch": self.max_batch,
                    "bucket_multiple": self.bucket_multiple,
                    "concept_cache_size": self.concept_cache_size,
                    "relational_dim": self._relational_dim,
                    "structural_dim": self._structural_dim,
                    "structural_epoch": self._structural_epoch,
                },
            }
            if self.bert is not None:
                bert_meta, bert_arrays = self.bert.export_arrays()
                meta["bert"] = bert_meta
                meta["engine"]["use_template"] = self._use_template
                # Specials are re-prepended by WordTokenizer (mirrors the
                # bundle manifest), making attach_shared self-contained —
                # a worker attaches without touching the bundle on disk.
                tok = self._tokenizer
                meta["engine"]["tokenizer_vocab"] = [
                    tok.id_to_token(i) for i in range(tok.vocab_size)
                ][tok.num_special:]
                for name, array in bert_arrays.items():
                    arrays[f"bert.{name}"] = array
            clf_meta, clf_arrays = self.classifier.export_arrays()
            meta["classifier"] = clf_meta
            for name, array in clf_arrays.items():
                arrays[f"classifier.{name}"] = array
            if self._graph is not None:
                gnn_meta, gnn_arrays = self._gnn.export_arrays()
                meta["gnn"] = gnn_meta
                for name, array in gnn_arrays.items():
                    arrays[f"gnn.{name}"] = array
                count = self._num_nodes
                meta["structural"] = {
                    "num_nodes": count,
                    "hidden_dim": self._hidden_dim,
                    "use_position": self._position_parent is not None,
                }
                arrays["structural.features"] = self._features[:count]
                for k, hidden in enumerate(self._hidden_layers):
                    arrays[f"structural.hidden{k}"] = hidden[:count]
                # Row `count` is the zero fallback for unknown concepts;
                # exporting it keeps the attached gather path identical.
                arrays["structural.node_matrix"] = \
                    self._node_matrix[:count + 1]
                for name, slab in self._graph.export_csr().items():
                    arrays[f"graph.{name}"] = slab
                arrays["graph.names"] = np.frombuffer(
                    json.dumps(self._graph.names).encode("utf-8"),
                    dtype=np.uint8)
                if self._position_parent is not None:
                    arrays["structural.position_parent"] = \
                        self._position_parent
                    arrays["structural.position_child"] = \
                        self._position_child
            return meta, arrays

    @classmethod
    def attach_shared(cls, meta: dict, arrays: dict,
                      tokenizer=None) -> "InferenceEngine":
        """Build an engine whose weights are views over shared buffers.

        ``meta``/``arrays`` come from :meth:`shared_state` (the arrays
        typically re-materialised as read-only shared-memory views by
        :func:`repro.serving.shm.attach_manifest`).  No weight array is
        copied; only per-engine scratch (workspaces, caches, locks) is
        allocated.  Scores are bit-identical to an engine compiled from
        the same bundle because the attached arrays *are* that engine's
        arrays.  Structural buffers stay copy-on-write: the first
        ``apply_attachments``/``recompute_structural`` copies them into
        private memory before mutating.
        """
        def sub(prefix: str) -> dict:
            return {name[len(prefix):]: array
                    for name, array in arrays.items()
                    if name.startswith(prefix)}

        spec = meta["engine"]
        engine = cls.__new__(cls)
        engine.dtype = np.dtype(spec["dtype"])
        engine.max_batch = int(spec["max_batch"])
        engine.bucket_multiple = int(spec["bucket_multiple"])
        engine.concept_cache_size = int(spec["concept_cache_size"])
        engine.stats = EngineStats(dtype=str(engine.dtype))
        engine.score_tolerance = SCORE_TOLERANCE
        engine._lock = threading.RLock()

        engine._relational_dim = int(spec["relational_dim"])
        if "bert" in meta:
            if tokenizer is None and "tokenizer_vocab" in spec:
                from ..plm import WordTokenizer
                tokenizer = WordTokenizer(spec["tokenizer_vocab"])
            if tokenizer is None:
                raise ValueError("a tokenizer is required to attach a "
                                 "relational engine")
            engine.bert = CompiledBert.from_arrays(meta["bert"],
                                                   sub("bert."))
            engine._tokenizer = tokenizer
            engine._use_template = bool(spec["use_template"])
            from ..plm.relational import TEMPLATE_WORDS
            engine._infix = [tokenizer.token_to_id(w)
                             for w in TEMPLATE_WORDS]
            engine._cls_id = tokenizer.cls_id
            engine._sep_id = tokenizer.sep_id
            engine._pad_id = tokenizer.pad_id
            engine._max_len = engine.bert.max_len
            engine._token_cache = {}
            engine._pair_cache = {}
            engine._concept_cache = OrderedDict()
        else:
            engine.bert = None

        engine._structural_dim = int(spec["structural_dim"])
        engine._graph = None
        engine._structural_epoch = int(spec["structural_epoch"])
        engine._shared_structural = False
        engine.node_dtype = np.dtype(spec["node_dtype"])
        engine.stats.node_dtype = str(engine.node_dtype)
        engine.stats.structural_epoch = engine._structural_epoch
        if "structural" in meta:
            structural = meta["structural"]
            engine._gnn = CompiledPropagation.from_arrays(meta["gnn"],
                                                          sub("gnn."))
            names = json.loads(bytes(arrays["graph.names"])
                               .decode("utf-8"))
            engine._graph = DynamicGraph.from_csr(names, sub("graph."))
            engine._num_nodes = int(structural["num_nodes"])
            engine._hidden_dim = int(structural["hidden_dim"])
            engine._features = arrays["structural.features"]
            engine._hidden_layers = [
                arrays[f"structural.hidden{k}"]
                for k in range(engine._gnn.num_hops)]
            engine._node_matrix = arrays["structural.node_matrix"]
            engine._shared_structural = True
            engine.stats.structural_nodes = engine._num_nodes
            if structural["use_position"]:
                engine._position_parent = \
                    arrays["structural.position_parent"]
                engine._position_child = \
                    arrays["structural.position_child"]
            else:
                engine._position_parent = None
                engine._position_child = None
        else:
            engine._node_matrix = None

        engine.classifier = CompiledClassifier.from_arrays(
            meta["classifier"], sub("classifier."))
        engine.feature_dim = engine._relational_dim \
            + engine._structural_dim
        return engine

    def _materialize_structural(self) -> None:
        """Copy shared structural views into private, growable buffers.

        Copy-on-write: an attached engine serves directly off the shared
        segments until its first mutation (streamed attachment or full
        recompute); this copies features, per-hop hidden states, and the
        node matrix — with fresh growth slack and a zero fallback row —
        so no write ever lands on a shared mapping.  The shared weight
        arrays (BERT/classifier/GNN) are never mutated and stay shared
        for the engine's lifetime.  Caller holds the engine lock.
        """
        if not self._shared_structural:
            return
        count = self._num_nodes
        capacity = count + 1 + self._GROWTH_SLACK

        def private(buffer: np.ndarray) -> np.ndarray:
            replacement = np.zeros((capacity, buffer.shape[1]),
                                   dtype=buffer.dtype)
            replacement[:count] = buffer[:count]
            return replacement

        self._features = private(self._features)
        self._hidden_layers = [private(hidden)
                               for hidden in self._hidden_layers]
        self._node_matrix = private(self._node_matrix)
        self._shared_structural = False
