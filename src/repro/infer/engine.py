"""The vectorized inference engine for the scoring hot path.

:class:`InferenceEngine` snapshots every weight a fitted
:class:`~repro.core.HyponymyDetector` needs into contiguous float32
arrays and executes scoring entirely through the fused kernels of
:mod:`repro.nn.inference` — zero ``Tensor`` allocation, no autograd
graph, no per-row Python input loops:

* template token ids are assembled from a per-concept token cache and
  padded with **length bucketing** (short pairs never pay long-pair
  attention cost; bucket widths are rounded up so workspace buffers
  recycle across calls),
* segment ids come from vectorized boundary arithmetic instead of a
  per-row fill loop,
* the structural representation is a precomputed node-embedding matrix
  served as a vectorized gather (unknown concepts hit a zero fallback
  row, exactly like the autograd path),
* single-concept embeddings are memoised in an LRU cache.

The engine is a pure function of the detector's weights: rebuild it
(``HyponymyDetector.compile_inference(force=True)``) after any
parameter update.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from ..nn.inference import (
    CompiledBert, CompiledClassifier, SCORE_TOLERANCE,
)

__all__ = [
    "INFERENCE_ENV", "MODE_AUTOGRAD", "MODE_FAST", "EngineStats",
    "InferenceEngine", "default_inference_mode", "resolve_inference_mode",
]

#: environment variable selecting the scoring execution path
INFERENCE_ENV = "REPRO_INFERENCE"

#: pair token-id memo bound; the whole dict is dropped when exceeded
#: (entries are tiny lists — wholesale reset is cheaper than LRU churn)
_PAIR_CACHE_LIMIT = 65536
MODE_FAST = "fast"
MODE_AUTOGRAD = "autograd"

_MODE_ALIASES = {
    "fast": MODE_FAST, "engine": MODE_FAST, "float32": MODE_FAST,
    "autograd": MODE_AUTOGRAD, "reference": MODE_AUTOGRAD,
    "float64": MODE_AUTOGRAD,
}


def default_inference_mode() -> str:
    """The process-wide execution path from ``REPRO_INFERENCE``.

    Unknown values fall back to the fast path (serving should never die
    on a typo'd environment); ``resolve_inference_mode`` validates
    explicit programmatic choices strictly.
    """
    raw = os.environ.get(INFERENCE_ENV, MODE_FAST).strip().lower()
    return _MODE_ALIASES.get(raw, MODE_FAST)


def resolve_inference_mode(mode: str | None) -> str:
    """Normalise an explicit mode override; ``None`` means env default."""
    if mode is None:
        return default_inference_mode()
    normalized = _MODE_ALIASES.get(mode.strip().lower())
    if normalized is None:
        raise ValueError(
            f"unknown inference mode {mode!r}; expected one of "
            f"{sorted(set(_MODE_ALIASES))}")
    return normalized


@dataclass
class EngineStats:
    """Counters describing engine traffic since compilation."""

    batches: int = 0
    pairs_scored: int = 0
    sequences_encoded: int = 0
    concepts_encoded: int = 0
    concept_cache_hits: int = 0
    dtype: str = "float32"

    def as_dict(self) -> dict:
        """JSON/metrics-friendly snapshot."""
        return {
            "dtype": self.dtype,
            "batches": self.batches,
            "pairs_scored": self.pairs_scored,
            "sequences_encoded": self.sequences_encoded,
            "concepts_encoded": self.concepts_encoded,
            "concept_cache_hits": self.concept_cache_hits,
        }


class InferenceEngine:
    """Graph-free scoring over a fitted hyponymy detector.

    Parameters
    ----------
    detector:
        A fitted :class:`~repro.core.HyponymyDetector`; its relational
        and/or structural encoders and classifier head are exported.
    dtype:
        Kernel dtype (float32 by default; float64 reproduces the
        autograd path bit-for-bit and is useful for debugging parity).
    max_batch:
        Sequences per encoder call; longer inputs are chunked.  The
        default is tuned for cache locality — larger chunks spill the
        attention score tensor out of L2/L3 and run measurably slower.
    bucket_multiple:
        Padded widths are rounded up to this multiple so length buckets
        collapse onto few distinct shapes and scratch buffers recycle.
    concept_cache_size:
        LRU capacity of the single-concept embedding cache.
    """

    def __init__(self, detector, dtype=np.float32, max_batch: int = 128,
                 bucket_multiple: int = 4, concept_cache_size: int = 4096):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if bucket_multiple < 1:
            raise ValueError("bucket_multiple must be >= 1")
        self.dtype = np.dtype(dtype)
        self.max_batch = max_batch
        self.bucket_multiple = bucket_multiple
        self.concept_cache_size = concept_cache_size
        self.stats = EngineStats(dtype=str(self.dtype))
        self.score_tolerance = SCORE_TOLERANCE
        # The compiled encoder reuses scratch buffers across calls, so
        # scoring is serialised: concurrent callers (e.g. synchronous
        # BatchingScorer fallback on several HTTP threads) must not
        # interleave writes into the shared workspace.
        self._lock = threading.RLock()

        relational = detector.relational
        self._relational_dim = 0
        if relational is not None:
            self.bert = CompiledBert(relational.model, dtype=self.dtype)
            tok = relational.tokenizer
            self._tokenizer = tok
            self._use_template = bool(relational.use_template)
            from ..plm.relational import TEMPLATE_WORDS
            self._infix = [tok.token_to_id(w) for w in TEMPLATE_WORDS]
            self._cls_id = tok.cls_id
            self._sep_id = tok.sep_id
            self._pad_id = tok.pad_id
            self._max_len = relational.model.config.max_len
            self._relational_dim = relational.dim
            self._token_cache: dict[str, list[int]] = {}
            self._pair_cache: dict[tuple[str, str],
                                   tuple[list[int], int]] = {}
            self._concept_cache: OrderedDict[tuple[str, str], np.ndarray] = \
                OrderedDict()
        else:
            self.bert = None

        structural = detector.structural
        self._structural_dim = 0
        if structural is not None:
            nodes = structural.node_embedding_matrix()
            hidden_dim = nodes.shape[1]
            # Row N is the zero fallback for concepts outside the graph.
            matrix = np.zeros((nodes.shape[0] + 1, hidden_dim),
                              dtype=self.dtype)
            matrix[:-1] = nodes
            self._node_matrix = matrix
            self._pair_rows = structural.pair_rows
            self._hidden_dim = hidden_dim
            if structural.config.use_position:
                self._position_parent = np.asarray(
                    structural.position_parent.data, dtype=self.dtype)
                self._position_child = np.asarray(
                    structural.position_child.data, dtype=self.dtype)
            else:
                self._position_parent = None
                self._position_child = None
            self._structural_dim = structural.out_dim
        else:
            self._node_matrix = None

        self.classifier = CompiledClassifier(detector.classifier,
                                             dtype=self.dtype)
        self.feature_dim = self._relational_dim + self._structural_dim

    # ------------------------------------------------------------------
    # scoring (the hot path)
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Positive-class probabilities, float64, autograd-compatible."""
        if not pairs:
            return np.zeros(0)
        with self._lock:
            features = self.pair_features(pairs)
            probs = self.classifier.positive_probability(features)
            self.stats.batches += 1
            self.stats.pairs_scored += len(pairs)
        return np.asarray(probs, dtype=np.float64)

    def stats_snapshot(self) -> EngineStats:
        """An atomic copy of the counters taken under the engine lock."""
        with self._lock:
            return replace(self.stats)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait until no scoring batch is executing in this engine.

        The hot-reload path calls this on the *outgoing* engine after
        swapping a new one in: in-flight batches keep their reference
        and finish on the old weights; once :meth:`drain` returns True
        the old engine is idle and safe to discard.  Returns False if
        the engine is still busy after ``timeout`` seconds (``None``
        waits forever).  Re-entrant: a thread that is itself scoring
        returns True immediately (the workspace ``RLock`` is held by
        it).
        """
        acquired = self._lock.acquire(
            timeout=-1 if timeout is None else timeout)
        if acquired:
            self._lock.release()
        return acquired

    def pair_features(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Eq. 14 edge features ``(len(pairs), feature_dim)`` in dtype."""
        with self._lock:
            n = len(pairs)
            features = np.empty((n, self.feature_dim), dtype=self.dtype)
            if self.bert is not None:
                self._encode_pair_cls(
                    pairs, out=features[:, :self._relational_dim])
            if self._node_matrix is not None:
                self._structural_features(
                    pairs, out=features[:, self._relational_dim:])
            return features

    # ------------------------------------------------------------------
    # relational fast path
    # ------------------------------------------------------------------
    def _concept_token_ids(self, concept: str) -> list[int]:
        ids = self._token_cache.get(concept)
        if ids is None:
            tok = self._tokenizer
            ids = [tok.token_to_id(t) for t in concept.split()]
            if len(self._token_cache) >= _PAIR_CACHE_LIMIT:
                # Arbitrary client strings reach this cache via /score;
                # wholesale reset keeps a long-running service bounded.
                self._token_cache.clear()
            self._token_cache[concept] = ids
        return ids

    def pair_token_ids(self, query: str, item: str) -> tuple[list[int], int]:
        """Template ids + segment boundary, mirroring
        :meth:`~repro.plm.RelationalEncoder.pair_ids` (truncation
        included); the boundary is the first segment-1 position.

        Assembled sequences are memoised per pair (the expansion
        traversal and repeated candidate sets revisit pairs constantly);
        the cache is wiped wholesale past ``_PAIR_CACHE_LIMIT`` entries.
        """
        key = (query, item)
        cached = self._pair_cache.get(key)
        if cached is not None:
            return cached
        query_ids = self._concept_token_ids(query)
        item_ids = self._concept_token_ids(item)
        if self._use_template:
            ids = ([self._cls_id] + query_ids + self._infix
                   + item_ids + [self._sep_id])
            boundary = 1 + len(query_ids) + len(self._infix)
        else:
            ids = ([self._cls_id] + query_ids + [self._sep_id]
                   + item_ids + [self._sep_id])
            boundary = 2 + len(query_ids)
        if len(ids) > self._max_len:
            ids = ids[:self._max_len]
            ids[-1] = self._sep_id
            boundary = min(boundary, self._max_len)
        if len(self._pair_cache) >= _PAIR_CACHE_LIMIT:
            self._pair_cache.clear()
        self._pair_cache[key] = (ids, boundary)
        return ids, boundary

    def _bucket_width(self, length: int) -> int:
        multiple = self.bucket_multiple
        return min(self._max_len, -(-length // multiple) * multiple)

    def _pack_batch(self, sequences: list[list[int]],
                    boundaries: np.ndarray, width: int
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized pad + mask + segment assembly for one bucket."""
        lengths = np.fromiter((len(s) for s in sequences), dtype=np.int64,
                              count=len(sequences))
        positions = np.arange(width)
        valid = positions < lengths[:, None]
        ids = np.full((len(sequences), width), self._pad_id, dtype=np.int64)
        ids[valid] = np.concatenate(sequences) if sequences else []
        segments = ((positions >= boundaries[:, None]) & valid) \
            .astype(np.int64)
        return ids, valid.astype(self.dtype), segments

    def _encode_pair_cls(self, pairs: list[tuple[str, str]],
                         out: np.ndarray) -> None:
        """Write each pair's ``[CLS]`` representation into ``out`` rows."""
        n = len(pairs)
        sequences: list[list[int]] = [None] * n
        boundaries = np.empty(n, dtype=np.int64)
        lengths = np.empty(n, dtype=np.int64)
        for row, (query, item) in enumerate(pairs):
            ids, boundary = self.pair_token_ids(query, item)
            sequences[row] = ids
            boundaries[row] = boundary
            lengths[row] = len(ids)
        # Length-sorted processing: each chunk pads only to its own
        # (rounded) max, so short pairs skip long-pair attention cost.
        # A uniform-length chunk carries no padding at all, so the
        # attention mask (and its per-layer bias pass) is dropped.
        order = np.argsort(lengths, kind="stable")
        for start in range(0, n, self.max_batch):
            chunk = order[start:start + self.max_batch]
            shortest, longest = int(lengths[chunk[0]]), int(lengths[chunk[-1]])
            uniform = shortest == longest
            width = longest if uniform else self._bucket_width(longest)
            ids, mask, segments = self._pack_batch(
                [sequences[i] for i in chunk], boundaries[chunk], width)
            hidden = self.bert.encode(ids, None if uniform else mask,
                                      segments)
            out[chunk] = hidden[:, 0, :]
            self.stats.sequences_encoded += len(chunk)

    # ------------------------------------------------------------------
    # single-concept embeddings (cached)
    # ------------------------------------------------------------------
    def encode_concepts(self, concepts: list[str],
                        pool: str = "cls") -> np.ndarray:
        """``[CLS] u [SEP]`` concept embeddings with an LRU cache.

        Matches :meth:`~repro.plm.RelationalEncoder.encode_concepts`
        within float32 tolerance; repeated concepts are free.
        """
        if self.bert is None:
            raise RuntimeError("engine has no relational encoder")
        if pool not in ("cls", "mean"):
            raise ValueError("pool must be 'cls' or 'mean'")
        with self._lock:
            return self._encode_concepts_locked(concepts, pool)

    def _encode_concepts_locked(self, concepts: list[str],
                                pool: str) -> np.ndarray:
        resolved: dict[str, np.ndarray] = {}
        missing: dict[str, None] = {}
        for concept in concepts:
            cached = self._concept_cache.get((concept, pool))
            if cached is not None:
                self._concept_cache.move_to_end((concept, pool))
                self.stats.concept_cache_hits += 1
                resolved[concept] = cached
            else:
                missing[concept] = None
        todo = list(missing)
        for start in range(0, len(todo), self.max_batch):
            chunk = todo[start:start + self.max_batch]
            embedded = self._encode_concept_chunk(chunk, pool)
            for concept, vector in zip(chunk, embedded):
                resolved[concept] = vector
                self._cache_concept((concept, pool), vector)
        out = np.empty((len(concepts), self._relational_dim),
                       dtype=self.dtype)
        for row, concept in enumerate(concepts):
            out[row] = resolved[concept]
        return out

    def _encode_concept_chunk(self, concepts: list[str],
                              pool: str) -> np.ndarray:
        sequences = []
        for concept in concepts:
            ids = ([self._cls_id] + self._concept_token_ids(concept)
                   + [self._sep_id])
            if len(ids) > self._max_len:
                ids = ids[:self._max_len]
                ids[-1] = self._sep_id
            sequences.append(ids)
        boundaries = np.fromiter((len(s) for s in sequences),
                                 dtype=np.int64, count=len(sequences))
        width = self._bucket_width(int(boundaries.max(initial=1)))
        ids, mask, _ = self._pack_batch(sequences, boundaries, width)
        hidden = self.bert.encode(ids, mask)  # no segments for concepts
        self.stats.concepts_encoded += len(concepts)
        if pool == "cls":
            return hidden[:, 0, :].copy()
        content = mask.copy()
        content[ids == self._cls_id] = 0.0
        content[ids == self._sep_id] = 0.0
        denom = np.maximum(content.sum(axis=1, keepdims=True), 1.0)
        return np.einsum("bsd,bs->bd", hidden,
                         (content / denom).astype(self.dtype))

    def _cache_concept(self, key: tuple[str, str],
                       vector: np.ndarray) -> None:
        if not self.concept_cache_size:
            return
        self._concept_cache[key] = vector
        self._concept_cache.move_to_end(key)
        while len(self._concept_cache) > self.concept_cache_size:
            self._concept_cache.popitem(last=False)

    # ------------------------------------------------------------------
    # structural fast path
    # ------------------------------------------------------------------
    def _structural_features(self, pairs: list[tuple[str, str]],
                             out: np.ndarray) -> None:
        """Vectorized gather over the precomputed node-embedding matrix.

        Row lookup delegates to ``StructuralEncoder.pair_rows`` (the
        default fallback row is the zero row appended to the matrix), so
        unknown-concept handling cannot drift between the two paths.
        """
        q_rows, i_rows = self._pair_rows(pairs)
        hidden = self._hidden_dim
        if self._position_parent is None:
            out[:, :hidden] = self._node_matrix[q_rows]
            out[:, hidden:] = self._node_matrix[i_rows]
            return
        position = self._position_parent.shape[0]
        out[:, :hidden] = self._node_matrix[q_rows]
        out[:, hidden:hidden + position] = self._position_parent
        out[:, hidden + position:2 * hidden + position] = \
            self._node_matrix[i_rows]
        out[:, 2 * hidden + position:] = self._position_child
