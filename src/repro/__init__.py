"""repro — reproduction of "Learning What You Need from What You Did:
Product Taxonomy Expansion with User Behaviors Supervision" (ICDE 2022).

Subpackages
-----------
``repro.taxonomy``
    Tree-structured taxonomy substrate, concept vocabulary, headword logic.
``repro.synthetic``
    Synthetic e-commerce world: taxonomies, items, click logs, UGC.
``repro.nn``
    Numpy autograd engine, layers, optimizers, losses.
``repro.plm``
    MiniBert language model with token-/concept-level masked pretraining and
    the template-based relational representation.
``repro.gnn``
    Edge-weighted GCN/GAT/GraphSAGE, contrastive pretraining, structural
    pair representations.
``repro.graph``
    User-click-graph construction with IF/IQF weighting.
``repro.core``
    The paper's framework: adaptively self-supervised data generation,
    hyponymy detector, top-down taxonomy expansion pipeline.
``repro.baselines``
    The ten comparison methods from Table V.
``repro.eval``
    Metrics, term-extraction statistics, oracle annotators, and the offline
    query-rewriting user study.
``repro.infer``
    Graph-free vectorized inference engine: the scoring hot path compiled
    to contiguous float32 arrays and fused pure-numpy kernels, bypassing
    the autograd substrate entirely.
``repro.serving``
    Online serving layer: artifact bundles decoupling training from
    serving, micro-batched cached scoring, streaming click-log ingestion,
    and the stdlib HTTP taxonomy service (``repro serve``).
"""

__version__ = "1.0.0"
