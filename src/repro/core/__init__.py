"""Core framework: self-supervision, detection, expansion, pipeline."""

from .selfsup import (
    LabeledPair, SelfSupConfig, SelfSupDataset, generate_dataset,
    PATTERN_HEAD, PATTERN_OTHER, PATTERN_SHUFFLE, PATTERN_REPLACE,
)
from .classifier import EdgeClassifier
from .detector import DetectorConfig, HyponymyDetector
from .expansion import ExpansionConfig, ExpansionResult, expand_taxonomy
from .pipeline import PipelineConfig, TaxonomyExpansionPipeline, candidate_map
from .incremental import IncrementalExpander, IngestReport

__all__ = [
    "LabeledPair", "SelfSupConfig", "SelfSupDataset", "generate_dataset",
    "PATTERN_HEAD", "PATTERN_OTHER", "PATTERN_SHUFFLE", "PATTERN_REPLACE",
    "EdgeClassifier",
    "DetectorConfig", "HyponymyDetector",
    "ExpansionConfig", "ExpansionResult", "expand_taxonomy",
    "PipelineConfig", "TaxonomyExpansionPipeline", "candidate_map",
    "IncrementalExpander", "IngestReport",
]
