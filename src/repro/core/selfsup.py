"""Adaptively self-supervised dataset generation (paper §III-C-1).

The existing taxonomy is heavily skewed toward headword-detectable edges
(~93%).  Training on it as-is overfits to the headword shortcut (Table XI /
Figure 4).  The adaptive strategy rebalances:

* **positives** — keep every "others"-pattern edge; keep a headword edge
  only with the probability needed to reach the target head:other ratio
  (3:7 in Table III), preferring headword edges that also appear in the
  user click logs;
* **negatives** — per positive ``(q, i)``, alternately (a) *shuffle* the
  order to ``(i, q)`` or (b) *replace* the item with a concept sampled from
  the click logs that is neither an ancestor nor a descendant of ``q``;
* 1:1 positive:negative overall, split 60/20/20 into train/val/test.

``adaptive=False`` reproduces the "previous" self-supervision of earlier
work (keep all edges), used as the comparison setting in Tables XI-XII.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..taxonomy import Taxonomy, is_headword_detectable

__all__ = ["LabeledPair", "SelfSupConfig", "SelfSupDataset",
           "generate_dataset"]

PATTERN_HEAD = "head"
PATTERN_OTHER = "other"
PATTERN_SHUFFLE = "shuffle"
PATTERN_REPLACE = "replace"


@dataclass(frozen=True)
class LabeledPair:
    """One supervised example: does ``query`` subsume ``item``?"""

    query: str
    item: str
    label: int
    #: head | other (positives), shuffle | replace (negatives)
    pattern: str

    @property
    def pair(self) -> tuple[str, str]:
        return (self.query, self.item)


@dataclass(frozen=True)
class SelfSupConfig:
    """Generation knobs (defaults reproduce Table III's proportions)."""

    seed: int = 0
    #: target head:other ratio among positives (paper: 3:7)
    head_other_ratio: tuple[int, int] = (3, 7)
    #: negatives generated per positive
    negatives_per_positive: int = 1
    split: tuple[float, float, float] = (0.6, 0.2, 0.2)
    #: False = "previous" setting: keep every edge, no rebalancing
    adaptive: bool = True

    def __post_init__(self):
        if abs(sum(self.split) - 1.0) > 1e-9:
            raise ValueError("split must sum to 1")
        if self.negatives_per_positive < 1:
            raise ValueError("negatives_per_positive must be >= 1")


@dataclass
class SelfSupDataset:
    """Generated dataset with the statistics Table III reports."""

    train: list[LabeledPair] = field(default_factory=list)
    val: list[LabeledPair] = field(default_factory=list)
    test: list[LabeledPair] = field(default_factory=list)

    @property
    def all_pairs(self) -> list[LabeledPair]:
        return self.train + self.val + self.test

    def count(self, pattern: str) -> int:
        return sum(1 for p in self.all_pairs if p.pattern == pattern)

    def statistics(self) -> dict[str, int]:
        """The Table III columns."""
        pairs = self.all_pairs
        return {
            "E_All": len(pairs),
            "E_Positive": sum(1 for p in pairs if p.label == 1),
            "E_Negative": sum(1 for p in pairs if p.label == 0),
            "E_Head": self.count(PATTERN_HEAD),
            "E_Others": self.count(PATTERN_OTHER),
            "E_Shuffle": self.count(PATTERN_SHUFFLE),
            "E_Replace": self.count(PATTERN_REPLACE),
            "E_Train": len(self.train),
            "E_Val": len(self.val),
            "E_Test": len(self.test),
        }


def _select_positives(taxonomy: Taxonomy,
                      click_pairs: set[tuple[str, str]],
                      config: SelfSupConfig,
                      rng: np.random.Generator) -> list[LabeledPair]:
    head_edges: list[tuple[str, str]] = []
    other_edges: list[tuple[str, str]] = []
    for parent, child in sorted(taxonomy.edges()):
        if is_headword_detectable(parent, child):
            head_edges.append((parent, child))
        else:
            other_edges.append((parent, child))

    positives = [LabeledPair(p, c, 1, PATTERN_OTHER) for p, c in other_edges]
    if not config.adaptive:
        positives += [LabeledPair(p, c, 1, PATTERN_HEAD)
                      for p, c in head_edges]
        return positives

    head_quota = int(round(len(other_edges)
                           * config.head_other_ratio[0]
                           / config.head_other_ratio[1]))
    head_quota = min(head_quota, len(head_edges))
    # Prefer headword edges corroborated by user clicks (paper: selected
    # "with a probability when the hyponymy relation appears in the user
    # click data"), then fill from the rest at random.
    clicked = [e for e in head_edges if e in click_pairs]
    unclicked = [e for e in head_edges if e not in click_pairs]
    rng.shuffle(clicked)
    rng.shuffle(unclicked)
    kept = (clicked + unclicked)[:head_quota]
    positives += [LabeledPair(p, c, 1, PATTERN_HEAD) for p, c in kept]
    return positives


def _sample_replacement(query: str, taxonomy: Taxonomy,
                        global_pool: list[str],
                        query_pool: dict[str, list[str]],
                        rng: np.random.Generator) -> str | None:
    """A clicked concept that is neither ancestor nor descendant of ``query``.

    Prefers concepts clicked *under this very query* (hard negatives that
    mirror the intention-drift noise the classifier must reject at inference
    time), falling back to the global click pool.
    """
    local = query_pool.get(query, ())
    pools: list[list[str]] = []
    if local and rng.random() < 0.6:
        pools = [list(local), global_pool]
    else:
        pools = [global_pool]
    for pool in pools:
        if not pool:
            continue
        for _ in range(50):
            candidate = pool[int(rng.integers(0, len(pool)))]
            if candidate == query:
                continue
            if taxonomy.is_ancestor(query, candidate):
                continue
            if taxonomy.is_ancestor(candidate, query):
                continue
            return candidate
    return None


def generate_dataset(taxonomy: Taxonomy,
                     click_pairs: set[tuple[str, str]] | None = None,
                     config: SelfSupConfig | None = None) -> SelfSupDataset:
    """Generate the self-supervised dataset from ``taxonomy``.

    ``click_pairs`` are the (query concept, item concept) pairs observed in
    the click logs; they steer both the headword-positive preference and the
    replacement-negative pool, per the paper.
    """
    config = config or SelfSupConfig()
    click_pairs = click_pairs or set()
    rng = np.random.default_rng(config.seed)

    positives = _select_positives(taxonomy, click_pairs, config, rng)

    # Replacement pools: concepts seen in click logs that are taxonomy
    # nodes, globally and per query, falling back to all taxonomy nodes
    # when click data is absent.
    clicked_concepts = sorted({c for _, c in click_pairs if c in taxonomy})
    pool = clicked_concepts or sorted(taxonomy.nodes)
    query_pool: dict[str, list[str]] = {}
    for q, c in sorted(click_pairs):
        if c in taxonomy:
            query_pool.setdefault(q, []).append(c)

    samples: list[LabeledPair] = list(positives)
    seen: set[tuple[str, str, int]] = {
        (p.query, p.item, p.label) for p in positives}
    for index, positive in enumerate(positives):
        for k in range(config.negatives_per_positive):
            use_shuffle = (index + k) % 2 == 0
            if use_shuffle:
                negative = LabeledPair(positive.item, positive.query, 0,
                                       PATTERN_SHUFFLE)
            else:
                replacement = _sample_replacement(
                    positive.query, taxonomy, pool, query_pool, rng)
                if replacement is None:
                    negative = LabeledPair(positive.item, positive.query, 0,
                                           PATTERN_SHUFFLE)
                else:
                    negative = LabeledPair(positive.query, replacement, 0,
                                           PATTERN_REPLACE)
            key = (negative.query, negative.item, negative.label)
            if key in seen:
                continue
            seen.add(key)
            samples.append(negative)

    order = rng.permutation(len(samples))
    shuffled = [samples[i] for i in order]
    n = len(shuffled)
    train_end = int(n * config.split[0])
    val_end = train_end + int(n * config.split[1])
    return SelfSupDataset(
        train=shuffled[:train_end],
        val=shuffled[train_end:val_end],
        test=shuffled[val_end:],
    )
