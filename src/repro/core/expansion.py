"""Top-down taxonomy expansion (paper §III-C-3, Figure 2).

The existing taxonomy is traversed level by level.  For each concept acting
as a query in the click logs, its candidate item concepts are classified;
accepted hyponyms are attached.  Newly attached concepts join the frontier
and are processed when the next layer is reached, so expansion grows both
width and depth in a single traversal.  Finally, edges implied by longer
paths are pruned (transitive reduction).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from ..taxonomy import Taxonomy, transitive_reduction

__all__ = ["ExpansionConfig", "ExpansionResult", "expand_taxonomy"]


class Scorer(Protocol):
    """Anything mapping candidate pairs to positive-class probabilities."""

    def __call__(self, pairs: list[tuple[str, str]]) -> np.ndarray: ...


@dataclass(frozen=True)
class ExpansionConfig:
    """Knobs for the inference-time traversal."""

    threshold: float = 0.5
    #: safety valve against degenerate scorers; generous by default
    max_children_per_node: int = 200
    prune_transitive: bool = True


@dataclass
class ExpansionResult:
    """Outcome of one expansion run."""

    taxonomy: Taxonomy
    #: every (parent, child) edge the model attached, pre-pruning
    attached_edges: list[tuple[str, str]] = field(default_factory=list)
    #: every scored candidate with its probability
    scored_pairs: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def num_attached(self) -> int:
        return len(self.attached_edges)


def expand_taxonomy(scorer: Scorer | Callable,
                    existing: Taxonomy,
                    candidates_by_query: dict[str, list[str]],
                    config: ExpansionConfig | None = None) -> ExpansionResult:
    """Run the top-down expansion.

    Parameters
    ----------
    scorer:
        Maps a list of (query, item) pairs to positive probabilities.
    existing:
        The taxonomy T0 to expand (not mutated).
    candidates_by_query:
        Query concept -> item concepts observed under it in the click
        logs, or a callable ``provider(query) -> iterable of items``
        (e.g. a retrieval index's top-k neighbours) evaluated lazily
        per frontier node.  Unknown queries simply have no candidates.
    """
    config = config or ExpansionConfig()
    if callable(candidates_by_query):
        lookup = candidates_by_query
    else:
        lookup = lambda node: candidates_by_query.get(node, ())  # noqa: E731
    expanded = existing.copy()
    result = ExpansionResult(taxonomy=expanded)

    # Level-order frontier; newly attached nodes are queued for the level
    # below their parent, matching Figure 2's layer-by-layer sweep.
    queue: deque[str] = deque()
    queued: set[str] = set()
    for level in existing.level_order():
        for node in level:
            queue.append(node)
            queued.add(node)

    while queue:
        node = queue.popleft()
        candidates = [c for c in lookup(node)
                      if c != node
                      and not expanded.has_edge(node, c)
                      and not expanded.is_ancestor(c, node)]
        if not candidates:
            continue
        pairs = [(node, c) for c in candidates]
        probs = np.asarray(scorer(pairs), dtype=np.float64)
        ranked = sorted(zip(candidates, probs), key=lambda x: (-x[1], x[0]))
        attached = 0
        for candidate, prob in ranked:
            result.scored_pairs[(node, candidate)] = float(prob)
            if prob < config.threshold:
                continue
            if attached >= config.max_children_per_node:
                break
            if expanded.is_ancestor(candidate, node):
                continue  # attaching would create a cycle
            expanded.add_edge(node, candidate)
            result.attached_edges.append((node, candidate))
            attached += 1
            if candidate not in queued:
                queue.append(candidate)
                queued.add(candidate)

    if config.prune_transitive:
        result.taxonomy = transitive_reduction(expanded)
    return result
