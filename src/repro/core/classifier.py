"""Edge-classification MLP (paper Eq. 15).

``f(c_q, c_i) = softmax( W2 * sigmoid( W1 * e + B1 ) + B2 )`` over two
classes.  Training minimises binary cross-entropy on the positive-class
probability (Eq. 16), which for a two-way softmax equals two-class
cross-entropy.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, Module, Tensor

__all__ = ["EdgeClassifier"]


class EdgeClassifier(Module):
    """One-hidden-layer MLP over concatenated edge representations."""

    def __init__(self, in_dim: int, hidden_dim: int = 32,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.hidden = Linear(in_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, 2, rng=rng)

    def forward(self, edge_representation: Tensor) -> Tensor:
        """Edge representations ``(batch, in_dim)`` -> logits ``(batch, 2)``."""
        return self.output(self.hidden(edge_representation).sigmoid())

    def positive_probability(self, edge_representation: Tensor) -> Tensor:
        """Softmax probability of the hyponymy class, shape ``(batch,)``."""
        return self.forward(edge_representation).softmax(axis=-1)[:, 1]
