"""End-to-end taxonomy-expansion pipeline (paper Figure 1).

Wires every stage together:

1. build the heterogeneous click graph from the existing taxonomy and logs,
2. pretrain C-BERT on UGC with concept-level masking,
3. contrastively pretrain node features, build the structural encoder,
4. generate the adaptively self-supervised dataset,
5. train the hyponymy detector (relational ⊕ structural -> MLP),
6. expand the taxonomy top-down.

Every design choice exercised by the paper's ablations (Tables VI, VIII, IX)
is a field of :class:`PipelineConfig`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace

import numpy as np

from ..gnn import (
    ContrastiveConfig, StructuralConfig, StructuralEncoder,
    contrastive_pretrain,
)
from ..graph import ConceptMatcher, GraphConstructionResult, HeteroGraph, \
    build_heterograph, collect_concept_clicks
from ..plm import (
    BertConfig, DictSegmenter, MiniBert, PretrainConfig, RelationalEncoder,
    WordTokenizer, pretrain_mlm,
)
from ..synthetic.clicklogs import ClickLog
from ..taxonomy import ConceptVocabulary, Taxonomy
from .detector import DetectorConfig, HyponymyDetector
from .expansion import ExpansionConfig, ExpansionResult, expand_taxonomy
from .selfsup import SelfSupConfig, SelfSupDataset, generate_dataset

__all__ = ["PipelineConfig", "TaxonomyExpansionPipeline", "candidate_map"]


@dataclass(frozen=True)
class PipelineConfig:
    """All framework knobs in one place.

    Ablation switches (paper table in parentheses):

    * ``pretrain.strategy`` = "token"  -> "- Concept-level Masking" (VIII)
    * ``use_template=False``           -> "- Template" (VIII)
    * ``detector.finetune_plm=False``  -> "- Finetune" (VIII)
    * ``structural.use_edge_weights=False`` -> "- Edge Attribute" (VIII)
    * ``use_click_graph=False``        -> "- User Click Graph" (VIII)
    * ``use_contrastive=False``        -> "- Contrastive Learning" (VIII)
    * ``structural.use_position=False``-> "- Position Embedding" (VIII)
    * ``detector.use_relational/use_structural`` -> feature ablation (VI)
    * ``structural.num_hops/aggregator``, ``contrastive.negative_rate`` (IX)
    * ``random_features=True``         -> S_Random in Table VI
    """

    seed: int = 0
    bert_dim: int = 32
    bert_layers: int = 2
    bert_heads: int = 4
    bert_ffn: int = 64
    bert_max_len: int = 24
    pretrain: PretrainConfig = field(default_factory=lambda: PretrainConfig(
        steps=1200, batch_size=16, lr=3e-3, strategy="concept"))
    contrastive: ContrastiveConfig = field(
        default_factory=lambda: ContrastiveConfig(steps=100))
    structural: StructuralConfig = field(default_factory=StructuralConfig)
    selfsup: SelfSupConfig = field(default_factory=SelfSupConfig)
    detector: DetectorConfig = field(default_factory=lambda: DetectorConfig(
        epochs=20, batch_size=16, lr=3e-3, plm_lr=3e-4))
    expansion: ExpansionConfig = field(default_factory=ExpansionConfig)
    use_template: bool = True
    use_click_graph: bool = True
    use_contrastive: bool = True
    #: replace C-BERT node features with random vectors (S_Random)
    random_features: bool = False
    #: add self-supervised "q is a i" sentences from existing-taxonomy
    #: edges (train-side only) to the C-BERT pretraining corpus.  This is a
    #: scale substitution (DESIGN.md §2): web-scale BERT arrives knowing the
    #: "is a" construction; our from-scratch MiniBert must be taught it from
    #: the same self-supervision source the dataset generator uses.
    isa_pretraining: bool = True
    #: how many template sentences per usable taxonomy edge
    isa_sentences_per_edge: int = 3


def candidate_map(click_log: ClickLog, vocabulary: ConceptVocabulary
                  ) -> dict[str, list[str]]:
    """Query concept -> identified item concepts, over the whole log.

    Unlike graph construction (which only keeps existing-taxonomy queries),
    this map also covers queries that are *new* concepts, so the top-down
    traversal can keep expanding below freshly attached nodes.
    """
    matcher = ConceptMatcher(vocabulary)
    by_query: dict[str, set[str]] = defaultdict(set)
    for (query, item), _count in click_log.counts.items():
        concept = matcher(item)
        if concept is not None and concept != query:
            by_query[query].add(concept)
    return {query: sorted(items) for query, items in by_query.items()}


class TaxonomyExpansionPipeline:
    """Orchestrates training and inference for one domain world."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        # Populated by fit():
        self.tokenizer: WordTokenizer | None = None
        self.segmenter: DictSegmenter | None = None
        self.bert: MiniBert | None = None
        self.relational: RelationalEncoder | None = None
        self.structural: StructuralEncoder | None = None
        self.detector: HyponymyDetector | None = None
        self.graph_result: GraphConstructionResult | None = None
        self.dataset: SelfSupDataset | None = None
        self.visible_taxonomy = None
        self.pretrain_history: list[float] = []
        self.contrastive_history: list[float] = []

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, existing: Taxonomy, vocabulary: ConceptVocabulary,
            click_log: ClickLog, ugc: list[str]) -> "TaxonomyExpansionPipeline":
        """Run stages 1-5; returns self for chaining."""
        config = self.config

        # Stage 4 is pulled forward: the self-supervised dataset must exist
        # before graph construction and pretraining so that the val/test
        # positive edges can be hidden from every training-time input
        # (no leakage into evaluation).
        click_pairs = set(collect_concept_clicks(
            existing, vocabulary, click_log).concept_clicks)
        self.dataset = generate_dataset(existing, click_pairs, config.selfsup)
        held_out_edges = {s.pair for s in self.dataset.val + self.dataset.test
                          if s.label == 1}
        self.visible_taxonomy = existing.copy()
        for parent, child in held_out_edges:
            if self.visible_taxonomy.has_edge(parent, child):
                self.visible_taxonomy.remove_edge(parent, child)

        # Stage 1 — heterogeneous graph over the training-visible taxonomy.
        self.graph_result = build_heterograph(
            self.visible_taxonomy, vocabulary, click_log)
        graph = self.graph_result.graph
        if not config.use_click_graph:
            taxonomy_only = HeteroGraph()
            for node in graph.nodes:
                taxonomy_only.add_node(node)
            for source, target, etype, weight in graph.edges(
                    HeteroGraph.TAXONOMY):
                taxonomy_only.add_edge(source, target, etype, weight)
            graph = taxonomy_only

        # Stage 2 — C-BERT pretraining on UGC (+ optional isa curriculum).
        corpus = list(ugc)
        if config.isa_pretraining:
            usable = sorted(self.visible_taxonomy.edges())
            for parent, child in usable:
                corpus.extend([f"{parent} is a {child}"]
                              * config.isa_sentences_per_edge)
        concept_tokens = sorted({t for c in vocabulary for t in c.split()})
        self.tokenizer = WordTokenizer.from_corpus(
            corpus, extra_words=concept_tokens)
        self.segmenter = DictSegmenter(vocabulary)
        self.bert = MiniBert(BertConfig(
            vocab_size=self.tokenizer.vocab_size, dim=config.bert_dim,
            num_layers=config.bert_layers, num_heads=config.bert_heads,
            ffn_dim=config.bert_ffn, max_len=config.bert_max_len,
            seed=config.seed))
        self.pretrain_history = pretrain_mlm(
            self.bert, corpus, self.tokenizer, self.segmenter,
            config.pretrain)
        self.relational = RelationalEncoder(
            self.bert, self.tokenizer, use_template=config.use_template)

        # Stage 3 — node features + structural encoder.
        nodes = graph.nodes
        if config.random_features:
            rng = np.random.default_rng(config.seed)
            features = rng.normal(0.0, 0.1, size=(len(nodes), config.bert_dim))
        else:
            features = self.relational.concept_embedding_matrix(nodes)
        if config.use_contrastive:
            features, self.contrastive_history = contrastive_pretrain(
                graph, features, config.contrastive)
        self.structural = StructuralEncoder(graph, features,
                                            config.structural)

        # Stage 5 — detector training.
        self.detector = HyponymyDetector(self.relational, self.structural,
                                         config.detector)
        self.detector.fit(self.dataset.train, self.dataset.val)
        return self

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Positive-class probabilities from the trained detector.

        Routed through the graph-free float32 inference engine by
        default (see :mod:`repro.infer`); set ``REPRO_INFERENCE=autograd``
        or :meth:`set_inference_mode` to keep the float64 Tensor path.
        """
        if self.detector is None:
            raise RuntimeError("pipeline not fitted")
        return self.detector.predict_proba(pairs)

    def compile_inference(self, force: bool = False):
        """Eagerly compile the detector's inference engine (see
        :meth:`~repro.core.HyponymyDetector.compile_inference`)."""
        if self.detector is None:
            raise RuntimeError("pipeline not fitted")
        return self.detector.compile_inference(force=force)

    def set_inference_mode(self, mode: str | None) -> None:
        """Pin ``score_pairs`` to ``"fast"`` or ``"autograd"``
        (``None`` restores the ``REPRO_INFERENCE`` env default)."""
        if self.detector is None:
            raise RuntimeError("pipeline not fitted")
        from ..infer import resolve_inference_mode
        if mode is not None:
            resolve_inference_mode(mode)  # validate eagerly
        self.detector.inference_mode = mode

    def expand(self, existing: Taxonomy, click_log: ClickLog,
               vocabulary: ConceptVocabulary) -> ExpansionResult:
        """Stage 6 — top-down expansion of ``existing``."""
        candidates = candidate_map(click_log, vocabulary)
        return expand_taxonomy(self.score_pairs, existing, candidates,
                               self.config.expansion)

    def concept_embedding_matrix(self, concepts: list[str],
                                 pool: str = "cls") -> np.ndarray:
        """Frozen C-BERT concept embeddings, shape ``(len(concepts), dim)``.

        The embedding source for the distance/TaxoExpan/TMN/STEAM
        baselines.  Routed through the compiled engine's cached concept
        encoder on the fast path (same dispatch rules as
        :meth:`score_pairs`); the float64 autograd encoder otherwise.
        """
        if self.relational is None:
            raise RuntimeError("pipeline not fitted")
        from ..infer import MODE_FAST, resolve_inference_mode
        if self.detector is not None and resolve_inference_mode(
                self.detector.inference_mode) == MODE_FAST:
            engine = self.detector.compile_inference()
            if engine.bert is not None:
                return engine.concept_embedding_matrix(concepts, pool=pool)
        return self.relational.concept_embedding_matrix(concepts, pool=pool)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "PipelineConfig":
        """A copy of the config with fields replaced (ablation helper)."""
        return replace(self.config, **kwargs)
