"""Hyponymy detector (paper §III-B): fuses relational and structural
representations and classifies candidate edges.

The edge representation is ``e = [r_{q,i} ⊕ s_{q,i}]`` (Eq. 14); either
component can be disabled for the Table VI feature ablation.  ``finetune_plm``
controls whether gradients flow into C-BERT during edge training (the
"- Finetune" row of Table VIII).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..gnn import StructuralEncoder
from ..nn import Adam, Tensor, clip_grad_norm, cross_entropy, no_grad
from ..plm import RelationalEncoder
from .classifier import EdgeClassifier
from .selfsup import LabeledPair

__all__ = ["DetectorConfig", "HyponymyDetector"]


@dataclass(frozen=True)
class DetectorConfig:
    """Training and composition knobs for the detector."""

    use_relational: bool = True
    use_structural: bool = True
    finetune_plm: bool = True
    epochs: int = 5
    batch_size: int = 32
    lr: float = 2e-3
    #: learning rate applied to the PLM when finetuning (smaller than the
    #: head lr, the usual BERT-finetuning recipe)
    plm_lr: float = 2e-4
    weight_decay: float = 1e-4
    hidden_dim: int = 32
    grad_clip: float = 5.0
    seed: int = 0

    def __post_init__(self):
        if not (self.use_relational or self.use_structural):
            raise ValueError("at least one representation must be enabled")


class HyponymyDetector:
    """Trainable edge classifier over (relational ⊕ structural) features."""

    def __init__(self, relational: RelationalEncoder | None,
                 structural: StructuralEncoder | None,
                 config: DetectorConfig | None = None):
        self.config = config or DetectorConfig()
        if self.config.use_relational and relational is None:
            raise ValueError("relational encoder required by config")
        if self.config.use_structural and structural is None:
            raise ValueError("structural encoder required by config")
        self.relational = relational if self.config.use_relational else None
        self.structural = structural if self.config.use_structural else None

        in_dim = 0
        if self.relational is not None:
            in_dim += self.relational.dim
        if self.structural is not None:
            in_dim += self.structural.out_dim
        rng = np.random.default_rng(self.config.seed)
        self.classifier = EdgeClassifier(in_dim, self.config.hidden_dim,
                                         rng=rng)
        self.history: list[float] = []
        # Node embeddings are fixed once training ends; cache them across
        # predict_proba calls (the top-down traversal makes thousands).
        self._node_cache = None
        #: execution-path override for predict_proba: "fast" | "autograd" |
        #: None (= process default from the REPRO_INFERENCE env var)
        self.inference_mode: str | None = None
        self._engine = None
        self._engine_lock = threading.Lock()

    # ------------------------------------------------------------------
    # feature assembly
    # ------------------------------------------------------------------
    def edge_features(self, pairs: list[tuple[str, str]],
                      node_embeddings: Tensor | None = None) -> Tensor:
        """Eq. 14 edge representations for a batch of pairs."""
        parts: list[Tensor] = []
        if self.relational is not None:
            rel = self.relational.encode_pairs(pairs)
            if not self.config.finetune_plm:
                rel = rel.detach()
            parts.append(rel)
        if self.structural is not None:
            parts.append(self.structural.pair_representation(
                pairs, node_embeddings))
        if len(parts) == 1:
            return parts[0]
        return Tensor.concatenate(parts, axis=1)

    def _optimizers(self) -> list[Adam]:
        head_params = list(self.classifier.parameters())
        if self.structural is not None:
            head_params += self.structural.parameters()
        optimizers = [Adam(head_params, lr=self.config.lr,
                           weight_decay=self.config.weight_decay)]
        if self.relational is not None and self.config.finetune_plm:
            optimizers.append(Adam(self.relational.model.parameters(),
                                   lr=self.config.plm_lr,
                                   weight_decay=self.config.weight_decay))
        return optimizers

    # ------------------------------------------------------------------
    # training / inference
    # ------------------------------------------------------------------
    def _snapshot(self) -> dict:
        state = {"classifier": self.classifier.state_dict()}
        if self.structural is not None:
            state["structural"] = self.structural.state_dict()
        if self.relational is not None and self.config.finetune_plm:
            state["plm"] = self.relational.model.state_dict()
        return state

    def _restore(self, state: dict) -> None:
        self.classifier.load_state_dict(state["classifier"])
        if "structural" in state:
            self.structural.load_state_dict(state["structural"])
        if "plm" in state:
            self.relational.model.load_state_dict(state["plm"])

    def _val_accuracy(self, val: list[LabeledPair]) -> float:
        self._node_cache = None  # parameters just changed this epoch
        pairs = [s.pair for s in val]
        labels = np.array([s.label for s in val])
        # Model selection always uses the float64 autograd oracle: weights
        # change every epoch (compiling an engine per epoch is waste) and
        # the chosen epoch must not depend on the serving dtype.
        predictions = (self._predict_autograd(pairs) >= 0.5).astype(np.int64)
        return float((predictions == labels).mean())

    def fit(self, train: list[LabeledPair],
            val: list[LabeledPair] | None = None) -> list[float]:
        """Train on labelled pairs; returns per-epoch mean loss history.

        When a validation split is given, the epoch with the best validation
        accuracy is restored at the end (standard model selection).
        """
        if not train:
            raise ValueError("empty training set")
        self._node_cache = None
        self._engine = None  # weights are about to change
        rng = np.random.default_rng(self.config.seed)
        optimizers = self._optimizers()
        best_val, best_state = -1.0, None
        if self.relational is not None:
            self.relational.model.train()
        for _ in range(self.config.epochs):
            order = rng.permutation(len(train))
            epoch_losses: list[float] = []
            for start in range(0, len(train), self.config.batch_size):
                batch = [train[i] for i in order[start:start
                                                 + self.config.batch_size]]
                pairs = [s.pair for s in batch]
                labels = np.array([s.label for s in batch], dtype=np.int64)
                for optimizer in optimizers:
                    optimizer.zero_grad()
                logits = self.classifier(self.edge_features(pairs))
                loss = cross_entropy(logits, labels)
                loss.backward()
                for optimizer in optimizers:
                    clip_grad_norm(optimizer.parameters,
                                   self.config.grad_clip)
                    optimizer.step()
                epoch_losses.append(loss.item())
            self.history.append(float(np.mean(epoch_losses)))
            if val:
                score = self._val_accuracy(val)
                if score > best_val:
                    best_val, best_state = score, self._snapshot()
        if best_state is not None:
            self._restore(best_state)
        self._node_cache = None
        self._engine = None  # stale snapshot of pre-training weights
        if self.relational is not None:
            self.relational.model.eval()
        return self.history

    # ------------------------------------------------------------------
    # inference-engine integration
    # ------------------------------------------------------------------
    def compile_inference(self, force: bool = False):
        """The fitted detector as a graph-free float32 engine (cached).

        ``fit`` invalidates the cached engine automatically; pass
        ``force=True`` after any other in-place weight mutation.
        """
        with self._engine_lock:
            if self._engine is None or force:
                from ..infer import InferenceEngine
                self._engine = InferenceEngine(self)
            return self._engine

    @property
    def inference_engine(self):
        """The compiled engine, or ``None`` if not compiled yet."""
        return self._engine

    def predict_proba(self, pairs: list[tuple[str, str]],
                      batch_size: int = 128) -> np.ndarray:
        """Positive-class probabilities for candidate pairs.

        Dispatches on :attr:`inference_mode` (falling back to the
        ``REPRO_INFERENCE`` env default): the ``fast`` path runs the
        vectorized float32 engine, ``autograd`` the float64 ``Tensor``
        path.  Scores agree within the engine's documented tolerance
        with identical rankings.  ``batch_size`` applies to the autograd
        path only; the engine bounds peak memory by its own ``max_batch``
        (pass one to :class:`~repro.infer.InferenceEngine` to change it).
        """
        from ..infer import MODE_FAST, resolve_inference_mode
        if resolve_inference_mode(self.inference_mode) == MODE_FAST:
            return self.compile_inference().score_pairs(
                [(str(q), str(i)) for q, i in pairs])
        return self._predict_autograd(pairs, batch_size)

    def _predict_autograd(self, pairs: list[tuple[str, str]],
                          batch_size: int = 128) -> np.ndarray:
        """The original float64 autograd scoring path (parity oracle)."""
        if not pairs:
            return np.zeros(0)
        probs: list[np.ndarray] = []
        with no_grad():
            if self.structural is None:
                node_embeddings = None
            else:
                if self._node_cache is None:
                    self._node_cache = \
                        self.structural.node_embeddings().detach()
                node_embeddings = self._node_cache
            for start in range(0, len(pairs), batch_size):
                chunk = pairs[start:start + batch_size]
                features = self.edge_features(chunk, node_embeddings)
                probs.append(
                    self.classifier.positive_probability(features).data)
        return np.concatenate(probs)

    def predict(self, pairs: list[tuple[str, str]],
                threshold: float = 0.5) -> np.ndarray:
        """Binary decisions at ``threshold``."""
        return (self.predict_proba(pairs) >= threshold).astype(np.int64)
