"""Incremental expansion over growing click logs (paper §I).

"The most remarkable advantage is that our methods can continuously
update the existing taxonomy as user behavior information grows day by
day."  This module operationalises that claim: an
:class:`IncrementalExpander` holds a trained scorer and an evolving
taxonomy; each call to :meth:`ingest` merges a new batch of click logs
and re-runs the top-down expansion over the *delta* candidates only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synthetic.clicklogs import ClickLog
from ..taxonomy import ConceptVocabulary, Taxonomy
from .expansion import ExpansionConfig, Scorer, expand_taxonomy
from .pipeline import candidate_map

__all__ = ["IncrementalExpander", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one incremental batch."""

    batch_index: int
    new_candidate_queries: int
    attached_edges: list[tuple[str, str]] = field(default_factory=list)
    taxonomy_edges_after: int = 0

    @property
    def num_attached(self) -> int:
        return len(self.attached_edges)


class IncrementalExpander:
    """Continuously grow a taxonomy as click-log batches arrive."""

    def __init__(self, scorer: Scorer, taxonomy: Taxonomy,
                 vocabulary: ConceptVocabulary,
                 config: ExpansionConfig | None = None):
        self.scorer = scorer
        self.taxonomy = taxonomy.copy()
        self.vocabulary = vocabulary
        self.config = config or ExpansionConfig()
        self._accumulated = ClickLog()
        self._seen_candidates: set[tuple[str, str]] = set()
        self._batches = 0

    @property
    def num_batches(self) -> int:
        return self._batches

    @property
    def accumulated_log(self) -> ClickLog:
        """Every ingested click record, merged across batches.

        Repeated (query, item) pairs accumulate evidence here even though
        they are never re-scored; the serving layer reports these totals in
        its ``/taxonomy`` statistics.  Treat the returned log as read-only.
        """
        return self._accumulated

    def export_state(self) -> dict:
        """JSON-serialisable incremental state for snapshot capture.

        Covers everything :meth:`ingest` accumulates *besides* the
        taxonomy itself: the merged click counts with provenance, the
        seen-candidate dedup set, and the batch counter.  Encodings are
        sorted so identical state always serialises identically (stable
        snapshot CRCs).  The taxonomy is deliberately excluded — the
        serving layer snapshots it separately alongside the engine state.
        """
        return {
            "batches": self._batches,
            "counts": [[query, item, int(count)] for (query, item), count
                       in sorted(self._accumulated.counts.items())],
            "provenance": dict(sorted(
                self._accumulated.provenance.items())),
            "seen_candidates": [list(pair) for pair
                                in sorted(self._seen_candidates)],
        }

    def restore_state(self, state: dict) -> None:
        """Replace accumulated state with an :meth:`export_state` dict.

        After restoring, subsequent ingests dedupe and report exactly as
        if the original batches had streamed through this instance.
        """
        log = ClickLog()
        for query, item, count in state.get("counts", []):
            log.counts[(str(query), str(item))] += int(count)
        for item, concept in (state.get("provenance") or {}).items():
            log.provenance.setdefault(
                str(item), None if concept is None else str(concept))
        self._accumulated = log
        self._seen_candidates = {
            (str(query), str(item))
            for query, item in state.get("seen_candidates", [])}
        self._batches = int(state.get("batches", 0))

    def ingest(self, batch: ClickLog) -> IngestReport:
        """Merge one log batch and expand over its *new* candidates.

        Already-scored (query, item) pairs are not re-scored; growing
        evidence for an existing pair would require retraining the scorer,
        which is out of scope for inference-time updates.
        """
        self._batches += 1
        for key, count in batch.counts.items():
            self._accumulated.counts[key] += count
        for item, concept in batch.provenance.items():
            self._accumulated.provenance.setdefault(item, concept)

        candidates = candidate_map(batch, self.vocabulary)
        fresh: dict[str, list[str]] = {}
        for query, items in candidates.items():
            new_items = [item for item in items
                         if (query, item) not in self._seen_candidates]
            if new_items:
                fresh[query] = new_items
                self._seen_candidates.update(
                    (query, item) for item in new_items)

        result = expand_taxonomy(self.scorer, self.taxonomy, fresh,
                                 self.config)
        self.taxonomy = result.taxonomy
        return IngestReport(
            batch_index=self._batches,
            new_candidate_queries=len(fresh),
            attached_edges=result.attached_edges,
            taxonomy_edges_after=self.taxonomy.num_edges,
        )
