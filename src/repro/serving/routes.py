"""Transport-independent dispatch core shared by every HTTP front end.

Both servers — the classic thread-per-connection transport in
:mod:`repro.serving.http` and the asyncio transport in
:mod:`repro.serving.async_http` — dispatch the *same* declarative route
table (:data:`repro.api.ROUTES`) onto the same
:class:`~repro.serving.TaxonomyService` facade.  This module holds
everything that must not fork between them:

* the ``/v1`` handler functions (one per ``RouteSpec.handler`` name),
  each taking ``(service, body, params)`` and returning
  ``(status, payload)`` with the payload already normalised through the
  route's response model,
* the legacy unversioned alias handlers with their historical
  permissive semantics,
* the path-matching route index built from the route table, and
* the request-body byte cap (:data:`MAX_BODY_BYTES`).

Because dispatch is shared, the contract — schemas, the canonical error
envelope, journaling side effects, ``/v1/openapi.json`` — is byte-for-
byte identical whichever transport a deployment picks.
"""

from __future__ import annotations

from ..api import errors as api_errors
from ..api import schemas
from ..api.errors import ApiError
from ..api.openapi import ROUTES, build_openapi
from .service import TaxonomyService

__all__ = [
    "BoundRoute",
    "LEGACY_HANDLERS",
    "MAX_BODY_BYTES",
    "OPENAPI_DOC",
    "ROUTE_INDEX",
    "V1_HANDLERS",
    "require_started",
    "resolve_route",
]

#: request bodies above this many bytes are rejected header-first (413)
MAX_BODY_BYTES = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# /v1 handlers — named by RouteSpec.handler; each takes
# (service, body, params) and returns (status, payload) with payload
# already validated/normalised through the route's response model.
# ----------------------------------------------------------------------
def require_started(service: TaxonomyService) -> None:
    """Raise ``not_ready`` (503) unless the service workers are up."""
    if not service.started:
        raise api_errors.not_ready(
            "service workers are not running yet; retry shortly")


def _handle_health(service, body, params):
    payload = schemas.HealthResponse.parse(
        service.health(), allow_extra=True).as_payload()
    return 200, payload


def _handle_taxonomy(service, body, params):
    payload = schemas.TaxonomyResponse.parse(
        service.taxonomy_state(), allow_extra=True).as_payload()
    return 200, payload


#: the document is static for the life of the process (ROUTES and the
#: schema models are module constants), so build it once at import
OPENAPI_DOC = build_openapi()


def _handle_openapi(service, body, params):
    return 200, OPENAPI_DOC


def _handle_score(service, body, params):
    request = schemas.ScoreRequest.parse(body)
    require_started(service)
    return 200, schemas.ScoreResponse.parse(
        service.score(request), allow_extra=True).as_payload()


def _handle_suggest(service, body, params):
    request = schemas.SuggestRequest.parse(body)
    require_started(service)
    return 200, schemas.SuggestResponse.parse(
        service.suggest(request), allow_extra=True).as_payload()


def _handle_expand(service, body, params):
    request = schemas.ExpandRequest.parse(body)
    require_started(service)
    return 200, schemas.ExpandResponse.parse(
        service.expand(request), allow_extra=True).as_payload()


def _handle_ingest(service, body, params):
    request = schemas.IngestRequest.parse(body)
    require_started(service)
    result = service.ingest(request)
    if not result.get("accepted"):
        # Bounded-queue rejection is backpressure (retryable), not an
        # outage: 429 + Retry-After, distinct from 503 not_ready.
        raise api_errors.backpressure(
            "ingest queue is full; retry after the worker drains it",
            retry_after=1.0,
            detail={"pending_batches": result.get("pending_batches")})
    return 202, schemas.IngestResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_reload(service, body, params):
    request = schemas.ReloadRequest.parse(body)
    try:
        result = service.reload(request.artifacts, wait=False)
    except ApiError:
        raise
    except Exception as error:
        # Stable code for any rejected swap (missing bundle, smoke-test
        # or pool-parity failure); the previous model keeps serving.
        raise api_errors.reload_failed(repr(error)) from error
    return 200, schemas.ReloadResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_snapshot(service, body, params):
    try:
        result = service.snapshot()
    except ApiError:
        raise
    except Exception as error:
        # Stable code whether the store is missing or the capture
        # failed; serving state is untouched either way.
        raise api_errors.snapshot_failed(repr(error)) from error
    return 200, schemas.SnapshotResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_job_snapshot(service, body, params):
    require_started(service)

    def run():
        try:
            return service.snapshot()
        except ApiError:
            raise
        except Exception as error:
            raise api_errors.snapshot_failed(repr(error)) from error

    snapshot = service.jobs.submit("snapshot", run)
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_expand(service, body, params):
    request = schemas.ExpandRequest.parse(body)
    require_started(service)
    snapshot = service.jobs.submit(
        "expand", lambda: service.expand(request))
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_reload(service, body, params):
    request = schemas.ReloadRequest.parse(body)
    require_started(service)

    def run():
        try:
            return service.reload(request.artifacts)
        except ApiError:
            raise
        except Exception as error:
            raise api_errors.reload_failed(repr(error)) from error

    snapshot = service.jobs.submit("reload", run)
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_list(service, body, params):
    return 200, schemas.JobListResponse.parse(
        {"jobs": service.jobs.list()}).as_payload()


def _handle_job_get(service, body, params):
    snapshot = service.jobs.get(params["job_id"])
    return 200, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


# ----------------------------------------------------------------------
# legacy alias handlers — historical permissive semantics, raw service
# response shapes.  Deliberately thin: new behaviour goes to /v1 only.
# ----------------------------------------------------------------------
def _legacy_health(service, body, params):
    # raw shape: no schema normalisation (e.g. "journal" stays absent
    # without a journal, as pre-/v1 monitoring expects)
    return 200, service.health()


def _legacy_taxonomy(service, body, params):
    return 200, service.taxonomy_state()


def _legacy_score(service, body, params):
    return 200, service.score(body.get("pairs", []))


def _legacy_expand(service, body, params):
    return 200, service.expand(body.get("candidates", {}))


def _legacy_ingest(service, body, params):
    result = service.ingest(body.get("records", []),
                            body.get("provenance"),
                            sync=bool(body.get("sync", False)))
    return (202 if result["accepted"] else 503), result


def _legacy_reload(service, body, params):
    return 200, service.reload(body.get("artifacts"))


#: ``RouteSpec.handler`` name -> /v1 handler callable
V1_HANDLERS = {
    "health": _handle_health,
    "taxonomy": _handle_taxonomy,
    "openapi": _handle_openapi,
    "score": _handle_score,
    "suggest": _handle_suggest,
    "expand": _handle_expand,
    "ingest": _handle_ingest,
    "reload": _handle_reload,
    "snapshot": _handle_snapshot,
    "job_expand": _handle_job_expand,
    "job_reload": _handle_job_reload,
    "job_snapshot": _handle_job_snapshot,
    "job_list": _handle_job_list,
    "job_get": _handle_job_get,
    # "metrics" is text/plain and handled inline by each transport
}

#: ``RouteSpec.handler`` name -> legacy alias handler callable
LEGACY_HANDLERS = {
    "health": _legacy_health,
    "taxonomy": _legacy_taxonomy,
    "score": _legacy_score,
    "expand": _legacy_expand,
    "ingest": _legacy_ingest,
    "reload": _legacy_reload,
}

#: handlers whose work is CPU-bound or otherwise slow — the asyncio
#: transport runs these off-loop and applies admission control to them;
#: everything else (health, metrics, job polling, the static OpenAPI
#: document) stays cheap and is always admitted so operators can still
#: observe a saturated server.
HEAVY_HANDLERS = frozenset({
    "score", "suggest", "expand", "ingest", "reload", "snapshot",
    "job_expand", "job_reload", "job_snapshot",
})


class BoundRoute:
    """One dispatchable (method, path template) -> handler binding."""

    __slots__ = ("spec", "segments", "legacy")

    def __init__(self, spec, path: str, legacy: bool):
        self.spec = spec
        self.segments = tuple(path.strip("/").split("/"))
        self.legacy = legacy

    def match(self, segments: tuple) -> dict | None:
        """Path params when ``segments`` matches this template."""
        if len(segments) != len(self.segments):
            return None
        params = {}
        for template, actual in zip(self.segments, segments):
            if template.startswith("{") and template.endswith("}"):
                params[template[1:-1]] = actual
            elif template != actual:
                return None
        return params


def build_route_index() -> dict:
    """``{method: [BoundRoute, ...]}`` from the declarative table."""
    index: dict[str, list] = {}
    for spec in ROUTES:
        index.setdefault(spec.method, []).append(
            BoundRoute(spec, spec.path, legacy=False))
        if spec.legacy_alias:
            index.setdefault(spec.method, []).append(
                BoundRoute(spec, spec.legacy_alias, legacy=True))
    return index


#: the one shared route index both transports dispatch on
ROUTE_INDEX = build_route_index()


def resolve_route(method: str, path: str) -> tuple:
    """Match ``(method, path)`` against the route index.

    Returns ``(bound_route, path_params)``; ``(None, None)`` when no
    route matches.  ``path`` must already be stripped of its query
    string.
    """
    segments = tuple(path.strip("/").split("/"))
    for candidate in ROUTE_INDEX.get(method, ()):
        params = candidate.match(segments)
        if params is not None:
            return candidate, params
    return None, None
