"""Shared-memory artifact store: one weight copy shared by every worker.

The :class:`SharedArtifactStore` owns the lifecycle of a family of
``multiprocessing.shared_memory`` segments.  The serving parent publishes
every read-only model array (compiled BERT/classifier/GNN weights, the
node-embedding matrix, graph CSR slabs, the retrieval embedding slab) into
segments exactly once; pool workers attach the segments zero-copy and build
numpy views over the mapped buffers instead of re-reading the bundle from
disk.  Hot reload becomes a two-phase segment swap: the parent publishes a
new *generation* of segments, broadcasts the new manifest, and retires the
old generation once every worker has re-attached.

Lifecycle guarantees:

* Segments are unlinked exactly once — ``unlink`` is idempotent, guarded by
  an owner-pid check so forked children never tear down the parent's
  segments, and wired into ``atexit`` plus a chained ``SIGTERM`` handler so
  crash paths do not leak ``/dev/shm`` entries.
* Attachers running their *own* stdlib ``resource_tracker`` (spawned or
  unrelated processes) immediately unregister their mapping (bpo-38119):
  before Python 3.13 every attach is otherwise auto-registered and the
  attacher's tracker would both warn about "leaked" segments and unlink
  them behind the owner's back.  Same-process and forked attachers share
  the owner's tracker and leave its registration alone — it doubles as a
  crash-proof backstop.
"""

from __future__ import annotations

import atexit
import os
import secrets
import signal
import threading
import weakref

import numpy as np

from multiprocessing import resource_tracker, shared_memory

__all__ = ["SharedArtifactStore", "SharedArrayView", "attach_manifest"]

#: default manifest label for engine/model arrays
DEFAULT_LABEL = "engine"

# ---------------------------------------------------------------------------
# Process-wide cleanup registry


_REGISTRY_LOCK = threading.Lock()
_LIVE_STORES: "weakref.WeakSet[SharedArtifactStore]" = weakref.WeakSet()
_CLEANUP_INSTALLED = False
_PREVIOUS_SIGTERM = None


def _cleanup_all() -> None:
    """Unlink every live store owned by this process (idempotent)."""
    for store in list(_LIVE_STORES):
        try:
            store.unlink()
        except Exception:  # pragma: no cover - cleanup must never raise; repro-lint: disable=RL006
            pass


def _sigterm_cleanup(signum, frame):  # pragma: no cover - exercised in subprocess tests
    """Chained SIGTERM handler: unlink segments, then defer to the old handler."""
    _cleanup_all()
    previous = _PREVIOUS_SIGTERM
    if callable(previous):
        previous(signum, frame)
    else:
        # Re-raise with the default disposition so the exit status still
        # reports death-by-SIGTERM to the parent.
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_cleanup() -> None:
    """Register the atexit hook and chain SIGTERM, once per process."""
    global _CLEANUP_INSTALLED, _PREVIOUS_SIGTERM
    with _REGISTRY_LOCK:
        if _CLEANUP_INSTALLED:
            return
        atexit.register(_cleanup_all)
        try:
            current = signal.getsignal(signal.SIGTERM)
            if current is not _sigterm_cleanup:
                _PREVIOUS_SIGTERM = current
                signal.signal(signal.SIGTERM, _sigterm_cleanup)
        except (ValueError, OSError):
            # Not the main thread (or signals unavailable): atexit plus the
            # stdlib resource_tracker still cover the exit paths.
            pass
        _CLEANUP_INSTALLED = True


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop an attached segment from the stdlib resource_tracker.

    Attaching registers the segment with the tracker on Python < 3.13
    (bpo-38119), which makes the *attacher's* tracker unlink it on exit and
    spam "leaked shared_memory" warnings.  Only the creating process should
    keep a tracker registration.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary; repro-lint: disable=RL006
        pass


# Whether this process inherited an already-running resource_tracker from
# its parent.  Multiprocessing children — fork AND spawn alike — write to
# the *parent's* tracker pipe (fork inherits the fd; ``spawn.prepare``
# hands it over explicitly), so their attach-time auto-registration lands
# in the shared set and *unregistering would strip the owner's entry* —
# the owner's later unlink would then double-unregister and the tracker
# would log KeyError tracebacks.  A genuinely unrelated process starts a
# private tracker, which WOULD unlink the segments out from under the
# owner at exit — it must unregister.  ``register_at_fork`` catches raw
# ``os.fork`` children; ``_tracker_inherited`` adds the spawn case.
_TRACKER_INHERITED = False


def _note_fork() -> None:  # pragma: no cover - runs only inside fork children
    global _TRACKER_INHERITED
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    _TRACKER_INHERITED = getattr(tracker, "_fd", None) is not None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_note_fork)


def _tracker_inherited() -> bool:
    """True when this process shares its parent's resource tracker."""
    if _TRACKER_INHERITED:
        return True
    try:
        import multiprocessing
        return multiprocessing.parent_process() is not None
    except Exception:  # pragma: no cover - defensive; repro-lint: disable=RL006
        return False


# ---------------------------------------------------------------------------
# Attach side


class SharedArrayView:
    """Read-only numpy views over an attached manifest's segments.

    Holds the mapped :class:`~multiprocessing.shared_memory.SharedMemory`
    handles alive for as long as the views are in use; ``close`` drops the
    views and unmaps best-effort (an outstanding external reference to a
    view keeps the mapping valid — POSIX keeps unlinked segments readable
    until the last map goes away).
    """

    def __init__(self, manifest, segments, arrays):
        self._segments = list(segments)
        self._arrays = dict(arrays)
        self.label = manifest.get("label", DEFAULT_LABEL)
        self.generation = int(manifest.get("generation", 0))
        self.meta = manifest.get("meta")
        self._closed = False

    @property
    def arrays(self) -> dict:
        """Mapping of logical array name to read-only shared view."""
        return self._arrays

    def array(self, name: str) -> np.ndarray:
        """Return the read-only view registered under ``name``."""
        return self._arrays[name]

    def nbytes(self) -> int:
        """Total bytes mapped by this view."""
        return int(sum(arr.nbytes for arr in self._arrays.values()))

    def close(self) -> None:
        """Drop the views and unmap the segments (idempotent, best-effort)."""
        if self._closed:
            return
        self._closed = True
        self._arrays = {}
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:
                # A caller still holds a view; the mapping stays alive until
                # that reference dies, which is exactly what we want.
                pass
            except Exception:  # pragma: no cover - close must never raise; repro-lint: disable=RL006
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # repro-lint: disable=RL006 - GC-time close
            pass


def attach_manifest(manifest) -> SharedArrayView:
    """Attach every segment named by ``manifest`` and return read-only views.

    Raises if any segment is missing or its size no longer matches the
    manifest — callers treat that as "fall back to a private bundle load".
    """
    segments = []
    arrays = {}
    # Same-process attach (tests, single-process fallback) and
    # multiprocessing children share the creator's tracker registration
    # set, so unregistering here would strip the creator's entry and its
    # unlink would then double-unregister.  Only a process with its *own*
    # tracker (an unrelated attacher) must drop its registration.
    foreign = (os.getpid() != int(manifest.get("owner_pid", -1))
               and not _tracker_inherited())
    try:
        for logical, spec in manifest["arrays"].items():
            segment = shared_memory.SharedMemory(name=spec["segment"])
            if foreign:
                _untrack(segment)
            segments.append(segment)
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            expected = int(spec["nbytes"])
            if segment.size < expected:
                raise ValueError(
                    f"segment {spec['segment']!r} holds {segment.size} bytes, "
                    f"manifest expects {expected}"
                )
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf[:expected])
            view.flags.writeable = False
            arrays[logical] = view
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except Exception:  # repro-lint: disable=RL006 - cleanup before re-raise
                pass
        raise
    return SharedArrayView(manifest, segments, arrays)


# ---------------------------------------------------------------------------
# Owner side


class SharedArtifactStore:
    """Create, publish, and retire shared-memory segments for model arrays.

    One store manages any number of *labels* (independent artifact families
    such as ``"engine"`` and ``"retrieval"``); each ``publish`` under a label
    creates a new *generation* of segments and returns a picklable manifest
    that attachers pass to :func:`attach_manifest`.  Old generations stay
    mapped by workers mid-rollout and are reclaimed with ``retire_before``
    once every worker has re-attached.
    """

    def __init__(self, prefix: str | None = None):
        if prefix is None:
            prefix = f"rp{os.getpid():x}-{secrets.token_hex(3)}"
        self.prefix = prefix
        self._owner_pid = os.getpid()
        # RLock: unlink may re-enter from a signal handler that interrupts a
        # publish on the same (main) thread.
        self._lock = threading.RLock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._by_label: dict[str, dict[int, list[str]]] = {}
        self._manifests: dict[str, dict] = {}
        self._generations: dict[str, int] = {}
        self._views: dict[str, dict[str, np.ndarray]] = {}
        self._closed = False
        _LIVE_STORES.add(self)
        _install_cleanup()

    # -- publishing ---------------------------------------------------------

    def publish(self, arrays, meta=None, label: str = DEFAULT_LABEL) -> dict:
        """Copy ``arrays`` into a fresh generation of segments.

        ``arrays`` maps logical names to numpy arrays; each is copied once
        into its own segment.  Returns the manifest for the new generation
        (also retrievable via :meth:`manifest`).  The previous generation is
        *not* unlinked — call :meth:`retire_before` after the rollout.
        """
        if meta is None:
            meta = {}
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedArtifactStore is closed")
            generation = self._generations.get(label, 0) + 1
            segment_names: list[str] = []
            specs: dict[str, dict] = {}
            views: dict[str, np.ndarray] = {}
            try:
                for index, (logical, array) in enumerate(arrays.items()):
                    source = np.ascontiguousarray(array)
                    name = f"{self.prefix}-{label[:4]}{generation}-{index}"
                    segment = shared_memory.SharedMemory(
                        create=True, name=name, size=max(1, source.nbytes)
                    )
                    self._segments[name] = segment
                    segment_names.append(name)
                    view = np.ndarray(
                        source.shape, dtype=source.dtype,
                        buffer=segment.buf[: source.nbytes],
                    )
                    view[...] = source
                    view.flags.writeable = False
                    views[logical] = view
                    specs[logical] = {
                        "segment": name,
                        "dtype": source.dtype.str,
                        "shape": [int(dim) for dim in source.shape],
                        "nbytes": int(source.nbytes),
                    }
            except BaseException:
                for name in segment_names:
                    self._unlink_segment(name)
                raise
            manifest = {
                "store": self.prefix,
                "owner_pid": self._owner_pid,
                "label": label,
                "generation": generation,
                "arrays": specs,
                "meta": meta,
            }
            self._by_label.setdefault(label, {})[generation] = segment_names
            self._manifests[label] = manifest
            self._generations[label] = generation
            self._views[label] = views
            return manifest

    def republish(self, arrays, meta=None, label: str = DEFAULT_LABEL) -> dict:
        """Publish a new generation and immediately retire every older one.

        The single-step generation swap used when no mid-rollout
        attacher needs draining — e.g. republishing the parent engine's
        post-snapshot state so future worker respawns attach current
        arrays instead of replaying a long delta log.  Live workers are
        unaffected: POSIX keeps their retired mappings readable until
        the last attacher unmaps them.  Returns the new manifest.
        """
        manifest = self.publish(arrays, meta=meta, label=label)
        self.retire_before(int(manifest["generation"]), label=label)
        return manifest

    def manifest(self, label: str = DEFAULT_LABEL) -> dict | None:
        """Current manifest for ``label`` (None if nothing published)."""
        with self._lock:
            return self._manifests.get(label)

    def generation(self, label: str = DEFAULT_LABEL) -> int:
        """Current generation number for ``label`` (0 if never published)."""
        with self._lock:
            return self._generations.get(label, 0)

    def views(self, label: str = DEFAULT_LABEL) -> dict:
        """Owner-side read-only views over the current generation's arrays."""
        with self._lock:
            return dict(self._views.get(label, {}))

    # -- retirement ---------------------------------------------------------

    def retire_before(self, generation: int, label: str = DEFAULT_LABEL) -> int:
        """Unlink every generation of ``label`` older than ``generation``.

        Safe while workers still map the old segments: POSIX keeps an
        unlinked segment readable until the last attacher unmaps it.
        Returns the number of segments unlinked.
        """
        removed = 0
        with self._lock:
            generations = self._by_label.get(label, {})
            for old in [g for g in generations if g < generation]:
                for name in generations.pop(old):
                    self._unlink_segment(name)
                    removed += 1
        return removed

    # -- stats --------------------------------------------------------------

    def segment_stats(self) -> dict:
        """Snapshot of live segment count, total bytes, and generations."""
        with self._lock:
            total = sum(seg.size for seg in self._segments.values())
            return {
                "segments": len(self._segments),
                "bytes": int(total),
                "generations": dict(self._generations),
            }

    def live_segment_names(self) -> list[str]:
        """Names of every segment this store still owns (for tests/metrics)."""
        with self._lock:
            return sorted(self._segments)

    @property
    def closed(self) -> bool:
        """True once :meth:`unlink` has torn the store down."""
        return self._closed

    # -- teardown -----------------------------------------------------------

    def _unlink_segment(self, name: str) -> None:
        segment = self._segments.pop(name, None)
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            # Owner-side views still referenced; unlink works regardless and
            # the mapping is reclaimed when the last view dies.
            pass
        except Exception:  # pragma: no cover; repro-lint: disable=RL006
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover; repro-lint: disable=RL006
            pass

    def unlink(self) -> None:
        """Unlink every segment exactly once (idempotent, owner-only).

        A forked child that inherits the store object is a no-op here: only
        the creating process may tear the segments down.
        """
        if os.getpid() != self._owner_pid:
            return
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._views.clear()
            self._manifests.clear()
            self._by_label.clear()
            for name in list(self._segments):
                self._unlink_segment(name)

    close = unlink

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.unlink()
        except Exception:  # repro-lint: disable=RL006 - atexit cleanup
            pass
