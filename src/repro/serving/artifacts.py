"""Artifact bundles: persist a *fitted* pipeline for the serving path.

Training and serving are decoupled processes (paper §I deploys the expanded
taxonomy online while training keeps consuming fresh behaviour data).  An
:class:`ArtifactBundle` snapshots everything inference needs — tokenizer
vocabulary, segmenter lexicon, C-BERT weights, structural-encoder state,
detector MLP, the full :class:`~repro.core.PipelineConfig`, plus the
taxonomy and concept vocabulary to serve — into one directory, and rebuilds
a pipeline whose ``score_pairs`` output matches the original bit-for-bit
(all arrays round-trip as float64 ``.npz``).

Bundle layout::

    manifest.json           format version, configs, tokenizer vocabulary
    bert.npz                MiniBert parameters (post-finetuning)
    structural.npz          StructuralEncoder parameters
    structural_arrays.npz   node features + weighted adjacency
    classifier.npz          detector MLP parameters
    taxonomy.json           taxonomy to serve (expanded or existing)
    vocabulary.json         clean concept vocabulary
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass

import numpy as np

from ..core.detector import DetectorConfig, HyponymyDetector
from ..core.expansion import ExpansionConfig
from ..core.pipeline import PipelineConfig, TaxonomyExpansionPipeline
from ..core.selfsup import SelfSupConfig
from ..gnn import ContrastiveConfig, StructuralConfig, StructuralEncoder
from ..nn import load_module, save_module
from ..plm import (
    BertConfig, DictSegmenter, MiniBert, PretrainConfig, RelationalEncoder,
    WordTokenizer,
)
from ..taxonomy import (
    ConceptVocabulary, Taxonomy, load_taxonomy, save_taxonomy,
)

__all__ = ["ArtifactBundle", "SharedBundleView", "pipeline_config_to_dict",
           "pipeline_config_from_dict"]

FORMAT_VERSION = 1

MANIFEST = "manifest.json"
BERT_WEIGHTS = "bert.npz"
STRUCTURAL_WEIGHTS = "structural.npz"
STRUCTURAL_ARRAYS = "structural_arrays.npz"
CLASSIFIER_WEIGHTS = "classifier.npz"
TAXONOMY_FILE = "taxonomy.json"
VOCABULARY_FILE = "vocabulary.json"

#: nested dataclass fields of PipelineConfig, in reconstruction order
_NESTED_CONFIGS = {
    "pretrain": PretrainConfig,
    "contrastive": ContrastiveConfig,
    "structural": StructuralConfig,
    "selfsup": SelfSupConfig,
    "detector": DetectorConfig,
    "expansion": ExpansionConfig,
}


def pipeline_config_to_dict(config: PipelineConfig) -> dict:
    """A JSON-serialisable snapshot of a :class:`PipelineConfig`."""
    return asdict(config)


def _rebuild(cls, payload: dict):
    """Instantiate a config dataclass, restoring tuple-typed fields that
    JSON round-tripped as lists."""
    fields = {}
    for key, value in payload.items():
        if isinstance(value, list):
            value = tuple(value)
        fields[key] = value
    return cls(**fields)


def pipeline_config_from_dict(payload: dict) -> PipelineConfig:
    """Rebuild a :class:`PipelineConfig` from
    :func:`pipeline_config_to_dict` output."""
    fields = dict(payload)
    for name, cls in _NESTED_CONFIGS.items():
        fields[name] = _rebuild(cls, fields[name])
    return PipelineConfig(**fields)


@dataclass
class ArtifactBundle:
    """A fitted pipeline plus the taxonomy and vocabulary it serves.

    Create one with :meth:`export` (training side) or :meth:`load`
    (serving side); the two are exact inverses for scoring purposes.
    """

    pipeline: TaxonomyExpansionPipeline
    taxonomy: Taxonomy
    vocabulary: ConceptVocabulary
    directory: str | None = None

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    @classmethod
    def export(cls, pipeline: TaxonomyExpansionPipeline, directory: str,
               taxonomy: Taxonomy | None = None,
               vocabulary: ConceptVocabulary | None = None
               ) -> "ArtifactBundle":
        """Write every serving artifact of ``pipeline`` to ``directory``.

        ``taxonomy`` defaults to the pipeline's training-visible taxonomy;
        pass the expanded one to serve post-expansion state.  ``vocabulary``
        defaults to the segmenter's lexicon.
        """
        if pipeline.detector is None or pipeline.bert is None:
            raise RuntimeError("cannot export an unfitted pipeline")
        if taxonomy is None:
            taxonomy = pipeline.visible_taxonomy
        if taxonomy is None:
            raise ValueError("no taxonomy to export")
        if vocabulary is None:
            vocabulary = pipeline.segmenter.vocabulary
        os.makedirs(directory, exist_ok=True)

        tokenizer = pipeline.tokenizer
        vocab_words = [tokenizer.id_to_token(i)
                       for i in range(tokenizer.vocab_size)]
        manifest = {
            "format_version": FORMAT_VERSION,
            "pipeline_config": pipeline_config_to_dict(pipeline.config),
            "bert_config": asdict(pipeline.bert.config),
            # Specials are re-prepended by WordTokenizer; store only the rest.
            "tokenizer_vocab": vocab_words[tokenizer.num_special:],
            "has_structural": pipeline.structural is not None,
        }
        with open(os.path.join(directory, MANIFEST), "w",
                  encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)

        save_module(pipeline.bert, os.path.join(directory, BERT_WEIGHTS))
        save_module(pipeline.detector.classifier,
                    os.path.join(directory, CLASSIFIER_WEIGHTS))
        if pipeline.structural is not None:
            save_module(pipeline.structural,
                        os.path.join(directory, STRUCTURAL_WEIGHTS))
            arrays = pipeline.structural.export_arrays()
            np.savez(os.path.join(directory, STRUCTURAL_ARRAYS),
                     nodes=np.asarray(arrays["nodes"], dtype=object),
                     features=arrays["features"],
                     adjacency=arrays["adjacency"])
        save_taxonomy(taxonomy, os.path.join(directory, TAXONOMY_FILE))
        with open(os.path.join(directory, VOCABULARY_FILE), "w",
                  encoding="utf-8") as handle:
            json.dump({"concepts": vocabulary.concepts()}, handle, indent=1)
        return cls(pipeline=pipeline, taxonomy=taxonomy,
                   vocabulary=vocabulary, directory=directory)

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, directory: str) -> "ArtifactBundle":
        """Rebuild a serving-ready pipeline from an exported bundle."""
        with open(os.path.join(directory, MANIFEST),
                  encoding="utf-8") as handle:
            manifest = json.load(handle)
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported bundle format version: {version!r}")
        config = pipeline_config_from_dict(manifest["pipeline_config"])

        tokenizer = WordTokenizer(manifest["tokenizer_vocab"])
        bert = MiniBert(BertConfig(**manifest["bert_config"]))
        load_module(bert, os.path.join(directory, BERT_WEIGHTS))
        bert.eval()
        relational = RelationalEncoder(bert, tokenizer,
                                       use_template=config.use_template)

        structural = None
        if manifest.get("has_structural"):
            with np.load(os.path.join(directory, STRUCTURAL_ARRAYS),
                         allow_pickle=True) as arrays:
                nodes = [str(node) for node in arrays["nodes"]]
                features = arrays["features"]
                adjacency = arrays["adjacency"]
            structural = StructuralEncoder.from_arrays(
                nodes, features, adjacency, config.structural)
            load_module(structural,
                        os.path.join(directory, STRUCTURAL_WEIGHTS))

        detector = HyponymyDetector(relational, structural, config.detector)
        load_module(detector.classifier,
                    os.path.join(directory, CLASSIFIER_WEIGHTS))

        with open(os.path.join(directory, VOCABULARY_FILE),
                  encoding="utf-8") as handle:
            vocabulary = ConceptVocabulary(
                json.load(handle)["concepts"])
        taxonomy = load_taxonomy(os.path.join(directory, TAXONOMY_FILE))

        pipeline = TaxonomyExpansionPipeline(config)
        pipeline.tokenizer = tokenizer
        pipeline.segmenter = DictSegmenter(vocabulary)
        pipeline.bert = bert
        pipeline.relational = relational
        pipeline.structural = structural
        pipeline.detector = detector
        pipeline.visible_taxonomy = taxonomy

        # Compile the graph-free inference engine at load time so the
        # first request never pays compilation cost; BatchingScorer,
        # StreamingIngestor, and the HTTP API all inherit the fast path.
        from ..infer import MODE_FAST, default_inference_mode
        if default_inference_mode() == MODE_FAST:
            detector.compile_inference()
        return cls(pipeline=pipeline, taxonomy=taxonomy,
                   vocabulary=vocabulary, directory=directory)

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Positive-class probabilities from the bundled detector."""
        return self.pipeline.score_pairs(pairs)


class _AttachedDetector:
    """Duck-typed detector shim exposing an attached inference engine."""

    __slots__ = ("inference_engine",)

    def __init__(self, engine):
        self.inference_engine = engine


class _AttachedPipeline:
    """Duck-typed pipeline shim over an attached inference engine."""

    __slots__ = ("detector",)

    def __init__(self, engine):
        self.detector = _AttachedDetector(engine)


class SharedBundleView:
    """A worker-side bundle served entirely from shared-memory segments.

    The zero-copy counterpart of :meth:`ArtifactBundle.load` for pool
    workers: instead of re-reading weights from disk and compiling its own
    engine, the worker attaches the parent's published segments
    (:func:`repro.serving.shm.attach_manifest`) and rebuilds an
    :class:`~repro.infer.InferenceEngine` whose weight arrays are read-only
    views over the shared buffers — scores are bit-identical to a
    privately loaded bundle because the views *are* the parent engine's
    arrays.  Exposes the same ``score_pairs`` /
    ``pipeline.detector.inference_engine`` surface the worker loop uses,
    so the private :class:`ArtifactBundle` fallback stays a drop-in swap.
    """

    mode = "shared"

    def __init__(self, engine, view, directory: str | None = None):
        self.engine = engine
        self.view = view
        self.directory = directory
        self.pipeline = _AttachedPipeline(engine)

    @classmethod
    def attach(cls, manifest: dict,
               directory: str | None = None) -> "SharedBundleView":
        """Attach a published manifest and build the view-backed engine.

        Raises when any segment is missing or incompatible — the worker
        loop treats that as "fall back to ``ArtifactBundle.load``".
        """
        from ..infer.engine import InferenceEngine
        from .shm import attach_manifest
        view = attach_manifest(manifest)
        try:
            engine = InferenceEngine.attach_shared(view.meta, view.arrays)
        except BaseException:
            view.close()
            raise
        return cls(engine, view, directory=directory)

    def score_pairs(self, pairs: list[tuple[str, str]]) -> np.ndarray:
        """Positive-class probabilities from the attached engine."""
        return self.engine.score_pairs(pairs)

    def close(self) -> None:
        """Unmap the attached segments (best-effort, idempotent)."""
        self.view.close()
