"""Durable write-ahead journal for the streaming-ingest path.

A server restart used to lose every incrementally-attached edge: the
accumulated click log, the seen-candidate set, and the live taxonomy all
existed only in memory.  :class:`IngestJournal` fixes that with the
smallest durable log that does the job — an **append-only JSONL file
set** that :class:`~repro.serving.StreamingIngestor` (and synchronous
``/expand``) writes *before* applying a mutation, and that
``repro serve --journal-dir`` replays on startup to rebuild exactly the
pre-crash state (scores are recomputed, and the engine is deterministic,
so replay converges on the same attachments).

Record format — one JSON object per line::

    {"seq": 7, "type": "ingest", "data": {...}, "crc": "89abcdef"}

``crc`` is the CRC-32 of the canonical JSON encoding of
``[seq, type, data]`` (sorted keys, compact separators), so any
truncated or bit-flipped line is detected on replay.  Three record types
exist today: ``ingest`` (one click-log batch in wire format), ``expand``
(one synchronous candidate map), and ``reload`` (an artifact-bundle swap;
replay re-applies it best-effort).

Durability and corruption policy:

* **fsync batching** — every append is flushed to the OS immediately;
  ``fsync`` runs once per ``fsync_every`` records (and on
  :meth:`flush` / :meth:`close`), trading a bounded tail-loss window for
  far fewer disk round-trips under bursty ingest.
* **segment rotation** — the journal rolls to a new
  ``journal-NNNNNNNN.jsonl`` segment once the active one exceeds
  ``max_segment_bytes``, keeping individual files small enough to ship
  or prune.
* **recovery** — a torn final record (the classic crash-mid-write) is
  truncated away on open with a :class:`JournalCorruptionWarning`; a CRC
  mismatch or undecodable line mid-stream stops reading *that segment*
  at its last good record (the rest of the segment cannot be trusted to
  be ordered) and replay continues with the next segment; empty segment
  files are skipped with a warning.  Corruption never raises out of
  :meth:`replay`.
* **snapshot-aware replay and retention** — a ``journal-index.json``
  sidecar records each sealed segment's ``[first_seq, last_seq]`` span
  plus a ``compacted_through_seq`` high-water mark.  ``replay(after_seq=S)``
  skips any segment whose span ends at or before ``S`` *without opening
  it*, and :meth:`compact` deletes (or archives) sealed segments once a
  snapshot covers them.  The index is advisory: a missing or stale entry
  just means the segment is scanned the slow way, never that records are
  lost.  Sequence numbers stay monotonic across full compaction because
  recovery seeds ``next_seq`` from the marker.
"""

from __future__ import annotations

import io
import json
import os
import warnings
import zlib
import threading
from dataclasses import dataclass, replace

__all__ = [
    "IngestJournal", "JournalCorruptionWarning", "JournalRecord",
    "JournalStats",
]

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".jsonl"
#: sidecar with per-segment seq spans + the compaction high-water mark
#: (suffix deliberately not ``.jsonl`` so segment listing ignores it)
INDEX_NAME = "journal-index.json"
INDEX_FORMAT_VERSION = 1


class JournalCorruptionWarning(UserWarning):
    """Raised as a *warning* whenever replay/recovery meets bad bytes.

    The journal never crashes the server over corruption: a torn tail is
    truncated, a mid-stream mismatch stops replay at the last good
    record, and the operator learns about it from this warning (and the
    ``corrupt_records`` counter in :class:`JournalStats`).
    """


@dataclass(frozen=True)
class JournalRecord:
    """One durable journal entry: a sequence number, a type tag, and an
    arbitrary JSON-serialisable payload."""

    seq: int
    type: str
    data: dict

    def encode(self) -> bytes:
        """The CRC-stamped single-line wire encoding (newline included)."""
        line = json.dumps(
            {"seq": self.seq, "type": self.type, "data": self.data,
             "crc": _crc(self.seq, self.type, self.data)},
            ensure_ascii=False, separators=(",", ":"))
        return line.encode("utf-8") + b"\n"

    @classmethod
    def decode(cls, line: bytes) -> "JournalRecord":
        """Parse and CRC-verify one wire line; raises ``ValueError`` on
        any corruption (bad JSON, missing fields, CRC mismatch)."""
        try:
            payload = json.loads(line.decode("utf-8"))
            seq = payload["seq"]
            kind = payload["type"]
            data = payload["data"]
            crc = payload["crc"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError) as error:
            raise ValueError(f"undecodable journal line: {error}") from None
        if crc != _crc(seq, kind, data):
            raise ValueError(f"CRC mismatch on record seq={seq}")
        return cls(seq=int(seq), type=str(kind), data=data)


def _crc(seq: int, kind: str, data: dict) -> str:
    canonical = json.dumps([seq, kind, data], ensure_ascii=False,
                           sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")


@dataclass
class JournalStats:
    """Counters describing journal activity since construction."""

    appended: int = 0
    fsyncs: int = 0
    rotations: int = 0
    replayed: int = 0
    corrupt_records: int = 0
    truncated_bytes: int = 0
    compacted_segments: int = 0
    skipped_segments: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON/metrics-friendly snapshot."""
        return {
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "replayed": self.replayed,
            "corrupt_records": self.corrupt_records,
            "truncated_bytes": self.truncated_bytes,
            "compacted_segments": self.compacted_segments,
            "skipped_segments": self.skipped_segments,
        }


class IngestJournal:
    """Append-only, CRC'd, segment-rotated JSONL journal.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Segments are named
        ``journal-NNNNNNNN.jsonl`` and replayed in lexicographic order.
    max_segment_bytes:
        Rotation threshold for the active segment.
    fsync_every:
        ``fsync`` once per this many appends (1 = every append is
        durable before :meth:`append` returns; 0 disables fsync and
        relies on OS write-back).  :meth:`flush` always forces a sync of
        anything pending.

    Thread-safety: all public methods are serialised by an internal
    lock, so the ingest worker and synchronous ``/expand`` handlers can
    share one journal.
    """

    def __init__(self, directory: str,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 fsync_every: int = 8):
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.fsync_every = fsync_every
        self.stats = JournalStats()
        self._lock = threading.Lock()
        self._handle: io.BufferedWriter | None = None
        self._pending_sync = 0
        self._closed = False
        # Recovery and replay both scan segments; a given corruption must
        # be warned about and counted once per instance, not per scan.
        self._seen_corruptions: set[tuple[str, int]] = set()
        # basename -> (first_seq, last_seq) for every segment with at
        # least one valid record; the active segment's entry is updated
        # in memory on each append and persisted when the segment seals.
        self._ranges: dict[str, tuple[int, int]] = {}
        self._compacted_through = -1
        os.makedirs(directory, exist_ok=True)
        self._next_seq, self._segment_index = self._recover()
        with self._lock:
            self._persist_index()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, kind: str, data: dict) -> JournalRecord:
        """Durably append one record; returns it with its sequence number.

        The line is written and flushed to the OS before returning;
        ``fsync`` happens per the ``fsync_every`` batching policy.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("journal is closed")
            record = JournalRecord(seq=self._next_seq, type=str(kind),
                                   data=data)
            handle = self._active_handle()
            handle.write(record.encode())
            handle.flush()
            name = os.path.basename(self._segment_path(self._segment_index))
            first = self._ranges.get(name, (record.seq, record.seq))[0]
            self._ranges[name] = (first, record.seq)
            self._next_seq += 1
            self.stats.appended += 1
            self._pending_sync += 1
            if self.fsync_every and self._pending_sync >= self.fsync_every:
                self._fsync()
            if handle.tell() >= self.max_segment_bytes:
                self._rotate()
            return record

    def flush(self) -> None:
        """Force anything pending to disk (flush + fsync); idempotent."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                if self._pending_sync:
                    self._fsync()

    def close(self) -> None:
        """Flush, fsync, and release the active segment; idempotent."""
        with self._lock:
            already_closed = self._closed
            self._closed = True
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                if self._pending_sync:
                    self._fsync()
                self._handle.close()
            self._handle = None
            if not already_closed:
                self._persist_index()

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def segments(self) -> list[str]:
        """Absolute segment paths in replay order."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith(SEGMENT_PREFIX)
            and name.endswith(SEGMENT_SUFFIX))
        return [os.path.join(self.directory, name) for name in names]

    def replay(self, after_seq: int = -1):
        """Yield every valid :class:`JournalRecord` with ``seq > after_seq``,
        oldest first.

        Reads straight from disk, so it reflects records appended by a
        previous process.  Corruption warns (see
        :class:`JournalCorruptionWarning`) and stops the affected
        segment at its last good record instead of raising; empty
        segments are skipped with a warning.

        ``after_seq`` is the snapshot hook: a segment whose indexed span
        ends at or before it is skipped *without being opened* (counted
        in ``stats.skipped_segments``), so startup replay cost is bounded
        by the tail written since the covering snapshot, not by total
        ingest history.
        """
        for path in self.segments():
            with self._lock:
                span = self._ranges.get(os.path.basename(path))
                if span is not None and span[1] <= after_seq:
                    self.stats.skipped_segments += 1
                    continue
            if os.path.getsize(path) == 0:
                warnings.warn(
                    f"empty journal segment {os.path.basename(path)}; "
                    f"skipping", JournalCorruptionWarning, stacklevel=2)
                continue
            for record, _offset in self._scan_segment(path):
                if record.seq <= after_seq:
                    continue
                with self._lock:
                    self.stats.replayed += 1
                yield record

    def compact(self, up_to_seq: int,
                archive_dir: str | None = None) -> dict:
        """Drop (or archive) sealed segments fully covered by a snapshot.

        A segment is removed only when it is **sealed** (not the active
        write target) and its indexed span proves every record in it has
        ``seq <= up_to_seq``; a segment with no known span — empty, fully
        corrupt, or unindexed — is never deleted.  With ``archive_dir``
        set, covered segments are moved there instead of unlinked.

        Returns ``{"removed": [names], "archived": bool,
        "compacted_through": seq}`` and advances the persisted
        ``compacted_through_seq`` marker, which recovery uses both to
        keep sequence numbers monotonic and to detect (loudly) a
        snapshot older than the surviving journal tail.
        """
        removed: list[str] = []
        with self._lock:
            active = os.path.basename(self._segment_path(self._segment_index))
            for path in self.segments():
                name = os.path.basename(path)
                if name == active:
                    continue
                span = self._ranges.get(name)
                if span is None or span[1] > up_to_seq:
                    continue
                if archive_dir is not None:
                    os.makedirs(archive_dir, exist_ok=True)
                    os.replace(path, os.path.join(archive_dir, name))
                else:
                    os.remove(path)
                self._ranges.pop(name, None)
                self._compacted_through = max(self._compacted_through,
                                              span[1])
                self.stats.compacted_segments += 1
                removed.append(name)
            if removed:
                self._persist_index()
            return {"removed": removed,
                    "archived": archive_dir is not None,
                    "compacted_through": self._compacted_through}

    def first_seq_on_disk(self) -> int | None:
        """Lowest sequence number still present in any segment (``None``
        when no segment holds a valid record)."""
        with self._lock:
            names = {os.path.basename(p) for p in self.segments()}
            spans = [span for name, span in self._ranges.items()
                     if name in names]
        return min(span[0] for span in spans) if spans else None

    @property
    def compacted_through(self) -> int:
        """Highest sequence number removed by :meth:`compact` across the
        journal's lifetime (``-1`` if compaction never ran)."""
        with self._lock:
            return self._compacted_through

    def size_bytes(self) -> int:
        """Total on-disk size of all segments (scheduling input)."""
        total = 0
        for path in self.segments():
            try:
                total += os.path.getsize(path)
            except OSError:
                continue
        return total

    def stats_snapshot(self) -> JournalStats:
        """An atomic copy of the activity counters."""
        with self._lock:
            return replace(self.stats)

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will receive."""
        with self._lock:
            return self._next_seq

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan_segment(self, path: str):
        """Yield ``(record, end_offset)`` for each valid line; warn and
        stop at the first corrupt one."""
        with open(path, "rb") as handle:
            offset = 0
            for line in handle:
                end = offset + len(line)
                if not line.endswith(b"\n"):
                    self._warn_corrupt(
                        path, offset,
                        "truncated final record (no trailing newline)")
                    return
                stripped = line.strip()
                if stripped:
                    try:
                        record = JournalRecord.decode(stripped)
                    except ValueError as error:
                        self._warn_corrupt(path, offset, str(error))
                        return
                    yield record, end
                offset = end

    def _warn_corrupt(self, path: str, offset: int, reason: str) -> None:
        key = (os.path.basename(path), offset)
        with self._lock:
            if key in self._seen_corruptions:
                return  # already counted and warned by this instance
            self._seen_corruptions.add(key)
            self.stats.corrupt_records += 1
        warnings.warn(
            f"journal corruption in {os.path.basename(path)} at byte "
            f"{offset}: {reason}; this segment stops at its last good "
            f"record",
            JournalCorruptionWarning, stacklevel=3)

    def _recover(self) -> tuple[int, int]:
        """Scan existing segments; truncate a torn tail on the last one.

        Returns ``(next_seq, next_segment_index)``.  Only the *final*
        segment is repaired — a corrupt record there is the expected
        shape of a crash mid-write.  Earlier-segment corruption is left
        untouched (replay warns and stops there).

        Sealed segments with a persisted index entry are trusted without
        being re-scanned (the cold-start win); the final segment is
        always scanned because it may hold a torn tail.  ``next_seq``
        additionally respects the compaction marker so sequence numbers
        never repeat after every covered segment has been dropped.
        """
        indexed, self._compacted_through = self._load_index()
        paths = self.segments()
        last_seq = self._compacted_through
        for path in paths:
            name = os.path.basename(path)
            if path != paths[-1] and name in indexed:
                self._ranges[name] = indexed[name]
                last_seq = max(last_seq, indexed[name][1])
                continue
            valid_end = 0
            first: int | None = None
            last = -1
            for record, end in self._scan_segment(path):
                if first is None:
                    first = record.seq
                last = max(last, record.seq)
                last_seq = max(last_seq, record.seq)
                valid_end = end
            if first is not None:
                self._ranges[name] = (first, last)
            if path == paths[-1]:
                size = os.path.getsize(path)
                if size > valid_end:
                    with self._lock:
                        self.stats.truncated_bytes += size - valid_end
                    warnings.warn(
                        f"truncating {size - valid_end} torn byte(s) from "
                        f"{os.path.basename(path)}",
                        JournalCorruptionWarning, stacklevel=2)
                    with open(path, "rb+") as handle:
                        handle.truncate(valid_end)
        index = 0
        if paths:
            index = self._segment_number(paths[-1])
        return last_seq + 1, index

    def _load_index(self) -> tuple[dict[str, tuple[int, int]], int]:
        """Parse the sidecar index; any defect degrades to 'no index'."""
        path = os.path.join(self.directory, INDEX_NAME)
        try:
            with open(path, "rb") as handle:
                payload = json.loads(handle.read().decode("utf-8"))
            if payload.get("format_version") != INDEX_FORMAT_VERSION:
                return {}, -1
            segments = {
                str(name): (int(span[0]), int(span[1]))
                for name, span in payload.get("segments", {}).items()}
            return segments, int(payload.get("compacted_through_seq", -1))
        except (OSError, ValueError, KeyError, TypeError, IndexError,
                AttributeError):
            return {}, -1

    def _persist_index(self) -> None:
        """Atomically write the sidecar index.  Lock held.

        Best-effort: an index write failure only costs the next open a
        full scan, so it must never take the journal down with it.
        """
        payload = {
            "format_version": INDEX_FORMAT_VERSION,
            "compacted_through_seq": self._compacted_through,
            "segments": {name: list(span) for name, span
                         in sorted(self._ranges.items())},
        }
        path = os.path.join(self.directory, INDEX_NAME)
        tmp = path + ".tmp"
        try:
            with open(tmp, "wb") as handle:
                handle.write(json.dumps(
                    payload, ensure_ascii=False,
                    separators=(",", ":")).encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as error:
            warnings.warn(
                f"failed to persist journal index: {error}; the next "
                f"recovery will scan all segments",
                JournalCorruptionWarning, stacklevel=2)

    @staticmethod
    def _segment_number(path: str) -> int:
        name = os.path.basename(path)
        return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory,
                            f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}")

    def _active_handle(self) -> io.BufferedWriter:
        """The open append handle for the active segment.  Lock held."""
        if self._handle is None or self._handle.closed:
            self._handle = open(self._segment_path(self._segment_index),
                                "ab")
        return self._handle

    def _rotate(self) -> None:
        """Seal the active segment and start the next one.  Lock held.

        Sealing persists the index so the sealed segment's span survives
        a crash — recovery then trusts it instead of re-scanning.
        """
        if self._pending_sync:
            self._fsync()
        self._handle.close()
        self._handle = None
        self._segment_index += 1
        self.stats.rotations += 1
        self._persist_index()

    def _fsync(self) -> None:
        """fsync the active handle.  Lock held, handle open."""
        os.fsync(self._handle.fileno())
        self.stats.fsyncs += 1
        self._pending_sync = 0
