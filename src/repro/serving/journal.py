"""Durable write-ahead journal for the streaming-ingest path.

A server restart used to lose every incrementally-attached edge: the
accumulated click log, the seen-candidate set, and the live taxonomy all
existed only in memory.  :class:`IngestJournal` fixes that with the
smallest durable log that does the job — an **append-only JSONL file
set** that :class:`~repro.serving.StreamingIngestor` (and synchronous
``/expand``) writes *before* applying a mutation, and that
``repro serve --journal-dir`` replays on startup to rebuild exactly the
pre-crash state (scores are recomputed, and the engine is deterministic,
so replay converges on the same attachments).

Record format — one JSON object per line::

    {"seq": 7, "type": "ingest", "data": {...}, "crc": "89abcdef"}

``crc`` is the CRC-32 of the canonical JSON encoding of
``[seq, type, data]`` (sorted keys, compact separators), so any
truncated or bit-flipped line is detected on replay.  Three record types
exist today: ``ingest`` (one click-log batch in wire format), ``expand``
(one synchronous candidate map), and ``reload`` (an artifact-bundle swap;
replay re-applies it best-effort).

Durability and corruption policy:

* **fsync batching** — every append is flushed to the OS immediately;
  ``fsync`` runs once per ``fsync_every`` records (and on
  :meth:`flush` / :meth:`close`), trading a bounded tail-loss window for
  far fewer disk round-trips under bursty ingest.
* **segment rotation** — the journal rolls to a new
  ``journal-NNNNNNNN.jsonl`` segment once the active one exceeds
  ``max_segment_bytes``, keeping individual files small enough to ship
  or prune.
* **recovery** — a torn final record (the classic crash-mid-write) is
  truncated away on open with a :class:`JournalCorruptionWarning`; a CRC
  mismatch or undecodable line mid-stream stops reading *that segment*
  at its last good record (the rest of the segment cannot be trusted to
  be ordered) and replay continues with the next segment; empty segment
  files are skipped with a warning.  Corruption never raises out of
  :meth:`replay`.
"""

from __future__ import annotations

import io
import json
import os
import warnings
import zlib
from dataclasses import dataclass, replace
from threading import Lock

__all__ = [
    "IngestJournal", "JournalCorruptionWarning", "JournalRecord",
    "JournalStats",
]

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".jsonl"


class JournalCorruptionWarning(UserWarning):
    """Raised as a *warning* whenever replay/recovery meets bad bytes.

    The journal never crashes the server over corruption: a torn tail is
    truncated, a mid-stream mismatch stops replay at the last good
    record, and the operator learns about it from this warning (and the
    ``corrupt_records`` counter in :class:`JournalStats`).
    """


@dataclass(frozen=True)
class JournalRecord:
    """One durable journal entry: a sequence number, a type tag, and an
    arbitrary JSON-serialisable payload."""

    seq: int
    type: str
    data: dict

    def encode(self) -> bytes:
        """The CRC-stamped single-line wire encoding (newline included)."""
        line = json.dumps(
            {"seq": self.seq, "type": self.type, "data": self.data,
             "crc": _crc(self.seq, self.type, self.data)},
            ensure_ascii=False, separators=(",", ":"))
        return line.encode("utf-8") + b"\n"

    @classmethod
    def decode(cls, line: bytes) -> "JournalRecord":
        """Parse and CRC-verify one wire line; raises ``ValueError`` on
        any corruption (bad JSON, missing fields, CRC mismatch)."""
        try:
            payload = json.loads(line.decode("utf-8"))
            seq = payload["seq"]
            kind = payload["type"]
            data = payload["data"]
            crc = payload["crc"]
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError,
                TypeError) as error:
            raise ValueError(f"undecodable journal line: {error}") from None
        if crc != _crc(seq, kind, data):
            raise ValueError(f"CRC mismatch on record seq={seq}")
        return cls(seq=int(seq), type=str(kind), data=data)


def _crc(seq: int, kind: str, data: dict) -> str:
    canonical = json.dumps([seq, kind, data], ensure_ascii=False,
                           sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")


@dataclass
class JournalStats:
    """Counters describing journal activity since construction."""

    appended: int = 0
    fsyncs: int = 0
    rotations: int = 0
    replayed: int = 0
    corrupt_records: int = 0
    truncated_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON/metrics-friendly snapshot."""
        return {
            "appended": self.appended,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "replayed": self.replayed,
            "corrupt_records": self.corrupt_records,
            "truncated_bytes": self.truncated_bytes,
        }


class IngestJournal:
    """Append-only, CRC'd, segment-rotated JSONL journal.

    Parameters
    ----------
    directory:
        Journal directory (created if missing).  Segments are named
        ``journal-NNNNNNNN.jsonl`` and replayed in lexicographic order.
    max_segment_bytes:
        Rotation threshold for the active segment.
    fsync_every:
        ``fsync`` once per this many appends (1 = every append is
        durable before :meth:`append` returns; 0 disables fsync and
        relies on OS write-back).  :meth:`flush` always forces a sync of
        anything pending.

    Thread-safety: all public methods are serialised by an internal
    lock, so the ingest worker and synchronous ``/expand`` handlers can
    share one journal.
    """

    def __init__(self, directory: str,
                 max_segment_bytes: int = 4 * 1024 * 1024,
                 fsync_every: int = 8):
        if max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be >= 1")
        if fsync_every < 0:
            raise ValueError("fsync_every must be >= 0")
        self.directory = directory
        self.max_segment_bytes = max_segment_bytes
        self.fsync_every = fsync_every
        self.stats = JournalStats()
        self._lock = Lock()
        self._handle: io.BufferedWriter | None = None
        self._pending_sync = 0
        self._closed = False
        # Recovery and replay both scan segments; a given corruption must
        # be warned about and counted once per instance, not per scan.
        self._seen_corruptions: set[tuple[str, int]] = set()
        os.makedirs(directory, exist_ok=True)
        self._next_seq, self._segment_index = self._recover()

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, kind: str, data: dict) -> JournalRecord:
        """Durably append one record; returns it with its sequence number.

        The line is written and flushed to the OS before returning;
        ``fsync`` happens per the ``fsync_every`` batching policy.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("journal is closed")
            record = JournalRecord(seq=self._next_seq, type=str(kind),
                                   data=data)
            handle = self._active_handle()
            handle.write(record.encode())
            handle.flush()
            self._next_seq += 1
            self.stats.appended += 1
            self._pending_sync += 1
            if self.fsync_every and self._pending_sync >= self.fsync_every:
                self._fsync()
            if handle.tell() >= self.max_segment_bytes:
                self._rotate()
            return record

    def flush(self) -> None:
        """Force anything pending to disk (flush + fsync); idempotent."""
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                if self._pending_sync:
                    self._fsync()

    def close(self) -> None:
        """Flush, fsync, and release the active segment; idempotent."""
        with self._lock:
            self._closed = True
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
                if self._pending_sync:
                    self._fsync()
                self._handle.close()
            self._handle = None

    def __enter__(self) -> "IngestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def segments(self) -> list[str]:
        """Absolute segment paths in replay order."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith(SEGMENT_PREFIX)
            and name.endswith(SEGMENT_SUFFIX))
        return [os.path.join(self.directory, name) for name in names]

    def replay(self):
        """Yield every valid :class:`JournalRecord`, oldest first.

        Reads straight from disk, so it reflects records appended by a
        previous process.  Corruption warns (see
        :class:`JournalCorruptionWarning`) and stops the affected
        segment at its last good record instead of raising; empty
        segments are skipped with a warning.
        """
        for path in self.segments():
            if os.path.getsize(path) == 0:
                warnings.warn(
                    f"empty journal segment {os.path.basename(path)}; "
                    f"skipping", JournalCorruptionWarning, stacklevel=2)
                continue
            for record, _offset in self._scan_segment(path):
                with self._lock:
                    self.stats.replayed += 1
                yield record

    def stats_snapshot(self) -> JournalStats:
        """An atomic copy of the activity counters."""
        with self._lock:
            return replace(self.stats)

    @property
    def next_seq(self) -> int:
        """Sequence number the next appended record will receive."""
        with self._lock:
            return self._next_seq

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _scan_segment(self, path: str):
        """Yield ``(record, end_offset)`` for each valid line; warn and
        stop at the first corrupt one."""
        with open(path, "rb") as handle:
            offset = 0
            for line in handle:
                end = offset + len(line)
                if not line.endswith(b"\n"):
                    self._warn_corrupt(
                        path, offset,
                        "truncated final record (no trailing newline)")
                    return
                stripped = line.strip()
                if stripped:
                    try:
                        record = JournalRecord.decode(stripped)
                    except ValueError as error:
                        self._warn_corrupt(path, offset, str(error))
                        return
                    yield record, end
                offset = end

    def _warn_corrupt(self, path: str, offset: int, reason: str) -> None:
        key = (os.path.basename(path), offset)
        with self._lock:
            if key in self._seen_corruptions:
                return  # already counted and warned by this instance
            self._seen_corruptions.add(key)
            self.stats.corrupt_records += 1
        warnings.warn(
            f"journal corruption in {os.path.basename(path)} at byte "
            f"{offset}: {reason}; this segment stops at its last good "
            f"record",
            JournalCorruptionWarning, stacklevel=3)

    def _recover(self) -> tuple[int, int]:
        """Scan existing segments; truncate a torn tail on the last one.

        Returns ``(next_seq, next_segment_index)``.  Only the *final*
        segment is repaired — a corrupt record there is the expected
        shape of a crash mid-write.  Earlier-segment corruption is left
        untouched (replay warns and stops there).
        """
        paths = self.segments()
        last_seq = -1
        for path in paths:
            valid_end = 0
            for record, end in self._scan_segment(path):
                last_seq = max(last_seq, record.seq)
                valid_end = end
            if path == paths[-1]:
                size = os.path.getsize(path)
                if size > valid_end:
                    with self._lock:
                        self.stats.truncated_bytes += size - valid_end
                    warnings.warn(
                        f"truncating {size - valid_end} torn byte(s) from "
                        f"{os.path.basename(path)}",
                        JournalCorruptionWarning, stacklevel=2)
                    with open(path, "rb+") as handle:
                        handle.truncate(valid_end)
        index = 0
        if paths:
            index = self._segment_number(paths[-1])
        return last_seq + 1, index

    @staticmethod
    def _segment_number(path: str) -> int:
        name = os.path.basename(path)
        return int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory,
                            f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}")

    def _active_handle(self) -> io.BufferedWriter:
        """The open append handle for the active segment.  Lock held."""
        if self._handle is None or self._handle.closed:
            self._handle = open(self._segment_path(self._segment_index),
                                "ab")
        return self._handle

    def _rotate(self) -> None:
        """Seal the active segment and start the next one.  Lock held."""
        if self._pending_sync:
            self._fsync()
        self._handle.close()
        self._handle = None
        self._segment_index += 1
        self.stats.rotations += 1

    def _fsync(self) -> None:
        """fsync the active handle.  Lock held, handle open."""
        os.fsync(self._handle.fileno())
        self.stats.fsyncs += 1
        self._pending_sync = 0
