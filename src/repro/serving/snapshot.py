"""Snapshot + compaction layer over the ingest journal.

The write-ahead journal makes ingest durable, but full-history replay
makes restart cost grow without bound: every journaled click batch is
re-scored through the model on startup.  A **snapshot** caps that tail.
:class:`SnapshotStore` persists the service's complete recovered state —
the live taxonomy, the incremental expander's accumulated click log and
dedup set, the ordered attachment log, and the inference engine's
:class:`~repro.infer.graph.DynamicGraph` CSR — keyed by the journal
sequence number it covers.  Startup recovery becomes *load latest valid
snapshot + replay only the journal tail after its sequence*, and
:meth:`IngestJournal.compact <repro.serving.journal.IngestJournal.compact>`
drops the segments the snapshot covers.

File format — one JSON document per snapshot::

    snapshot-0000000000000042.json
    {"format_version": 1, "seq": 41, "state": {...}, "crc": "89abcdef"}

The filename embeds ``seq + 1`` zero-padded so lexicographic order is
recovery order.  ``crc`` is the CRC-32 of the canonical JSON encoding of
``{format_version, seq, state}`` (sorted keys, compact separators), so a
truncated or bit-flipped snapshot is detected before anything trusts it.

Durability and corruption policy:

* **atomic writes** — the document is written to a ``.tmp`` sibling,
  fsynced, and ``os.replace``'d into place (the directory is fsynced
  too), so a crash mid-write leaves either the previous snapshot set
  intact or the new file complete — never a half-written live snapshot.
* **fallback on load** — :meth:`load_latest` walks newest-first and
  skips any snapshot that is truncated, CRC-corrupt, or from an unknown
  format version with a :class:`SnapshotCorruptionWarning`; an older
  valid snapshot (plus a longer journal tail) then takes over.
* **retention** — :meth:`prune` keeps the newest ``keep`` snapshots so
  one bad write never destroys the only recovery point.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import dataclass

__all__ = [
    "SnapshotCorruptionWarning", "SnapshotInfo", "SnapshotStats",
    "SnapshotStore",
]

SNAPSHOT_PREFIX = "snapshot-"
SNAPSHOT_SUFFIX = ".json"
FORMAT_VERSION = 1


class SnapshotCorruptionWarning(UserWarning):
    """Raised as a *warning* whenever a snapshot on disk cannot be
    trusted (truncated, CRC mismatch, undecodable, unknown version).

    Like the journal's corruption policy, a bad snapshot never crashes
    recovery by itself — :meth:`SnapshotStore.load_latest` falls back to
    the next older valid snapshot and the operator learns about the
    defect from this warning (and the ``corrupt_skipped`` counter).
    """


@dataclass(frozen=True)
class SnapshotInfo:
    """Metadata for one snapshot file on disk."""

    #: absolute path of the snapshot document
    path: str
    #: highest journal sequence number the snapshot covers (``-1`` when
    #: the service ran without a journal)
    seq: int
    #: size of the encoded document in bytes
    nbytes: int
    #: file modification time (``os.path.getmtime``, epoch seconds)
    created: float
    #: on-disk format version of the document
    format_version: int


@dataclass
class SnapshotStats:
    """Counters describing snapshot-store activity since construction."""

    written: int = 0
    pruned: int = 0
    corrupt_skipped: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON/metrics-friendly snapshot of the counters."""
        return {
            "written": self.written,
            "pruned": self.pruned,
            "corrupt_skipped": self.corrupt_skipped,
        }


def _snapshot_crc(format_version: int, seq: int, state: dict) -> str:
    """CRC-32 over the canonical encoding of the protected fields."""
    canonical = json.dumps(
        {"format_version": format_version, "seq": seq, "state": state},
        ensure_ascii=False, sort_keys=True, separators=(",", ":"))
    return format(zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF, "08x")


class SnapshotStore:
    """Atomically-written, CRC'd, versioned snapshot files with keep-N
    retention.

    Parameters
    ----------
    directory:
        Snapshot directory (created if missing).  Files are named
        ``snapshot-NNNNNNNNNNNNNNNN.json`` where ``N`` encodes
        ``seq + 1``, so name order is sequence order.
    keep:
        How many snapshots :meth:`prune` retains (newest first).  Must
        be >= 1: the latest valid snapshot is never at risk, and keeping
        at least one older generation means a single corrupted write
        still leaves a recovery point.

    The store is deliberately state-light: every read lists the
    directory, so multiple processes (a service and an offline
    inspection tool) can share one snapshot directory safely.
    """

    def __init__(self, directory: str, keep: int = 2):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = directory
        self.keep = keep
        self.stats = SnapshotStats()
        os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write(self, seq: int, state: dict) -> SnapshotInfo:
        """Persist ``state`` as the snapshot covering journal ``seq``.

        The write is atomic (tmp + fsync + rename + directory fsync) and
        prunes older snapshots beyond the ``keep`` budget before
        returning.  ``state`` must be JSON-serialisable.
        """
        seq = int(seq)
        payload = {"format_version": FORMAT_VERSION, "seq": seq,
                   "state": state,
                   "crc": _snapshot_crc(FORMAT_VERSION, seq, state)}
        blob = json.dumps(payload, ensure_ascii=False,
                          separators=(",", ":")).encode("utf-8")
        path = os.path.join(
            self.directory,
            f"{SNAPSHOT_PREFIX}{seq + 1:016d}{SNAPSHOT_SUFFIX}")
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._fsync_directory()
        self.stats.written += 1
        self.prune()
        return SnapshotInfo(path=path, seq=seq, nbytes=len(blob),
                            created=os.path.getmtime(path),
                            format_version=FORMAT_VERSION)

    def prune(self, keep: int | None = None) -> list[str]:
        """Remove all but the newest ``keep`` snapshots; returns the
        basenames removed.  Leftover ``.tmp`` files (a crash mid-write)
        are always cleaned up."""
        budget = self.keep if keep is None else int(keep)
        if budget < 1:
            raise ValueError("keep must be >= 1")
        removed: list[str] = []
        for name in os.listdir(self.directory):
            if name.startswith(SNAPSHOT_PREFIX) and name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:
                    pass
        paths = self.snapshots()
        for path in paths[:-budget] if len(paths) > budget else []:
            try:
                os.remove(path)
            except OSError:
                continue
            removed.append(os.path.basename(path))
            self.stats.pruned += 1
        return removed

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshots(self) -> list[str]:
        """Absolute snapshot paths, oldest first (name order == seq
        order)."""
        names = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith(SNAPSHOT_PREFIX)
            and name.endswith(SNAPSHOT_SUFFIX))
        return [os.path.join(self.directory, name) for name in names]

    def load_latest(self) -> tuple[dict, SnapshotInfo] | None:
        """The newest valid ``(state, info)`` pair, or ``None``.

        Walks snapshots newest-first, skipping any defective file with a
        :class:`SnapshotCorruptionWarning` — recovery then runs from an
        older snapshot with a longer journal tail rather than failing.
        """
        for path in reversed(self.snapshots()):
            loaded = self._load(path)
            if loaded is not None:
                return loaded
        return None

    def latest_seq(self) -> int | None:
        """Sequence covered by the newest *valid* snapshot, or ``None``."""
        loaded = self.load_latest()
        return loaded[1].seq if loaded is not None else None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _load(self, path: str) -> tuple[dict, SnapshotInfo] | None:
        """Decode and verify one snapshot file; warn + ``None`` on any
        defect."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
            payload = json.loads(blob.decode("utf-8"))
            version = payload["format_version"]
            seq = int(payload["seq"])
            state = payload["state"]
            crc = payload["crc"]
        except (OSError, UnicodeDecodeError, json.JSONDecodeError,
                KeyError, TypeError, ValueError) as error:
            self._warn_corrupt(path, f"undecodable snapshot: {error}")
            return None
        if version != FORMAT_VERSION:
            self._warn_corrupt(path, f"unknown format version {version!r}")
            return None
        if crc != _snapshot_crc(version, seq, state):
            self._warn_corrupt(path, "CRC mismatch")
            return None
        if not isinstance(state, dict):
            self._warn_corrupt(path, "state is not an object")
            return None
        info = SnapshotInfo(path=path, seq=seq, nbytes=len(blob),
                            created=os.path.getmtime(path),
                            format_version=version)
        return state, info

    def _warn_corrupt(self, path: str, reason: str) -> None:
        self.stats.corrupt_skipped += 1
        warnings.warn(
            f"snapshot {os.path.basename(path)} is unusable ({reason}); "
            f"falling back to an older snapshot + longer journal tail",
            SnapshotCorruptionWarning, stacklevel=3)

    def _fsync_directory(self) -> None:
        """fsync the snapshot directory so the rename itself is durable."""
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)
