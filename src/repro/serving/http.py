"""Stdlib HTTP front-end for :class:`~repro.serving.TaxonomyService`.

No web framework — a :class:`http.server.ThreadingHTTPServer` routes the
JSON endpoints onto the service facade:

========  =============  =================================================
method    path           body / response
========  =============  =================================================
GET       /healthz       liveness, worker state, scorer statistics
GET       /metrics       Prometheus text-format counters and gauges
GET       /taxonomy      live taxonomy snapshot + ingestion statistics
POST      /score         ``{"pairs": [[parent, child], ...]}``
POST      /expand        ``{"candidates": {query: [item, ...]}}``
POST      /ingest        ``{"records": [[query, item, count?], ...],
                         "provenance": {...}?, "sync": bool?}``
POST      /admin/reload  ``{"artifacts": path?}`` — hot-swap the bundle
                         (defaults to re-reading the current directory)
========  =============  =================================================

Errors return ``{"error": ...}`` with 400 (bad request), 404 (unknown
route), 503 (backpressure rejection) or 500 (scoring/reload failure).
``repro serve`` additionally installs a SIGHUP handler that triggers the
same reload as ``POST /admin/reload`` with no body (see :func:`serve`).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import TaxonomyService

__all__ = ["TaxonomyHTTPServer", "install_sighup_reload", "make_server",
           "serve"]

MAX_BODY_BYTES = 16 * 1024 * 1024


class TaxonomyHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`TaxonomyService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: TaxonomyService,
                 quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    """Routes JSON requests onto ``self.server.service``."""

    server: TaxonomyHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply_text(self, status: int, text: str,
                    content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may leave the request body unread; under
            # HTTP/1.1 keep-alive those bytes would be parsed as the next
            # request, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError("request body too large")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as e:
            status, payload = 400, {"error": str(e)}
        except Exception as e:  # scoring/ingest failure — keep serving
            status, payload = 500, {"error": repr(e)}
        self._reply(status, payload)

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._dispatch(lambda: (200, service.health()))
        elif path == "/metrics":
            try:
                text = service.metrics_text()
            except Exception as e:  # keep the scrape endpoint alive
                self._reply(500, {"error": repr(e)})
            else:
                self._reply_text(
                    200, text, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/taxonomy":
            self._dispatch(lambda: (200, service.taxonomy_state()))
        else:
            self._reply(404, {"error": f"unknown route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/score":
            self._dispatch(lambda: (
                200, service.score(self._read_json().get("pairs", []))))
        elif path == "/expand":
            self._dispatch(lambda: (
                200,
                service.expand(self._read_json().get("candidates", {}))))
        elif path == "/ingest":
            def run():
                body = self._read_json()
                result = service.ingest(body.get("records", []),
                                        body.get("provenance"),
                                        sync=bool(body.get("sync", False)))
                return (202 if result["accepted"] else 503), result
            self._dispatch(run)
        elif path == "/admin/reload":
            self._dispatch(lambda: (
                200, service.reload(self._read_json().get("artifacts"))))
        else:
            self._reply(404, {"error": f"unknown route {path!r}"})


def make_server(service: TaxonomyService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> TaxonomyHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks an ephemeral one.

    The bound address is available as ``server.server_address``.
    """
    return TaxonomyHTTPServer((host, port), service, quiet=quiet)


def install_sighup_reload(service: TaxonomyService) -> bool:
    """Make SIGHUP hot-reload the service's bundle (classic daemon UX).

    The reload runs on a short-lived thread so the signal handler —
    which executes on the main thread, between ``serve_forever`` polls —
    never blocks the accept loop behind a bundle load.  Returns False on
    platforms without SIGHUP (Windows) or off the main thread, where
    ``signal.signal`` is unavailable; ``POST /admin/reload`` covers
    those.
    """
    if not hasattr(signal, "SIGHUP"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def handler(_signum, _frame):
        def run():
            try:
                outcome = service.reload()
                print(f"SIGHUP reload ok: {outcome}")
            except Exception as error:
                print(f"SIGHUP reload failed: {error!r}")
        threading.Thread(target=run, name="sighup-reload",
                         daemon=True).start()

    signal.signal(signal.SIGHUP, handler)
    return True


def serve(service: TaxonomyService, host: str = "127.0.0.1",
          port: int = 8631, quiet: bool = False,
          sighup_reload: bool = True) -> None:
    """Start the service workers and serve until interrupted.

    With ``sighup_reload`` (default), ``kill -HUP <pid>`` hot-swaps the
    artifact bundle exactly like ``POST /admin/reload``.
    """
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    service.start()
    if sighup_reload:
        install_sighup_reload(service)
    print(f"repro serving on http://{bound_host}:{bound_port} "
          f"(endpoints: /healthz /metrics /taxonomy /score /expand "
          f"/ingest /admin/reload)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.stop()
