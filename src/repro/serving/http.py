"""Threaded stdlib HTTP transport for :class:`~repro.serving.TaxonomyService`.

No web framework — a :class:`http.server.ThreadingHTTPServer` dispatches
the declarative route table from :data:`repro.api.ROUTES` onto the
service facade.  The transport owns *no* parsing logic of its own: the
handlers, route index and body-size cap live in
:mod:`repro.serving.routes` and are shared verbatim with the asyncio
transport (:mod:`repro.serving.async_http`), so the two servers expose a
byte-identical contract:

* request bodies are validated by the typed models in
  :mod:`repro.api.schemas` (one ``Model.parse`` per route),
* failures are rendered as the canonical error envelope from
  :mod:`repro.api.errors` with stable codes and correct statuses
  (400/404/413/429/503/500) plus a ``Retry-After`` header where the
  condition is transient,
* every response — success or error — carries an ``X-Request-Id``
  header echoed inside error envelopes,
* ``GET /v1/openapi.json`` serves the API description generated from
  the *same* route table this module dispatches on.

All endpoints live under ``/v1/...``; the pre-versioning paths
(``/score``, ``/ingest``, ...) remain as thin deprecated aliases that
keep their historical semantics (permissive defaults, raw service
response shapes, 503 on ingest backpressure) and emit ``Deprecation``
and ``Link: rel="successor-version"`` headers.  ``repro serve``
additionally installs a SIGHUP handler that triggers the same reload as
``POST /v1/admin/reload`` with no body, and a SIGTERM handler that
drains gracefully — stop accepting, finish in-flight requests up to a
deadline, then close (see :func:`serve`).
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import errors as api_errors
from ..api.errors import ApiError
from .routes import (LEGACY_HANDLERS, MAX_BODY_BYTES, V1_HANDLERS,
                     resolve_route)
from .service import TaxonomyService

__all__ = ["MAX_BODY_BYTES", "TaxonomyHTTPServer", "install_sighup_reload",
           "install_sigterm_drain", "make_server", "serve"]


class TaxonomyHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`TaxonomyService`.

    Tracks in-flight requests so shutdown can drain instead of cutting
    responses mid-write: :meth:`drain` stops the accept loop, waits for
    the in-flight count to reach zero (bounded by a timeout), and flags
    every handler to close its keep-alive connection after the response
    in progress.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: TaxonomyService,
                 quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet
        self.draining = False
        self._inflight = 0
        self._inflight_cond = threading.Condition()

    def request_began(self) -> None:
        """Count one request entering dispatch (called by the handler)."""
        with self._inflight_cond:
            self._inflight += 1

    def request_ended(self) -> None:
        """Count one request leaving dispatch (called by the handler)."""
        with self._inflight_cond:
            self._inflight -= 1
            self._inflight_cond.notify_all()

    @property
    def inflight(self) -> int:
        """Number of requests currently inside dispatch."""
        with self._inflight_cond:
            return self._inflight

    def wait_idle(self, timeout: float = 10.0) -> bool:
        """Block until no request is in flight; False on timeout."""
        deadline = time.monotonic() + timeout
        with self._inflight_cond:
            while self._inflight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cond.wait(remaining)
        return True

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work.

        Returns True when every in-flight request completed within
        ``timeout``, False when the deadline forced the close.  Must be
        called from a thread other than the one running
        ``serve_forever`` (``shutdown`` would deadlock otherwise).
        """
        self.draining = True
        self.shutdown()
        return self.wait_idle(timeout)


class _Handler(BaseHTTPRequestHandler):
    """Dispatches the declarative route table onto ``server.service``."""

    server: TaxonomyHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              request_id: str, *, legacy: bool = False,
              successor: str | None = None,
              retry_after: float | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        if legacy and successor:
            self.send_header("Deprecation", "true")
            self.send_header("Link",
                             f'<{successor}>; rel="successor-version"')
        if retry_after is not None:
            self.send_header("Retry-After",
                             str(max(1, round(retry_after))))
        if status >= 400 or self.server.draining:
            # Error paths may leave the request body unread; under
            # HTTP/1.1 keep-alive those bytes would be parsed as the
            # next request, so drop the connection instead.  A draining
            # server likewise closes after the in-flight response.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, request_id: str,
                   **kwargs) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json", request_id, **kwargs)

    def _send_error(self, error: ApiError, request_id: str,
                    **kwargs) -> None:
        self._send_json(error.status, error.envelope(request_id),
                        request_id, retry_after=error.retry_after,
                        **kwargs)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise api_errors.payload_too_large(length, MAX_BODY_BYTES)
        if length < 0:
            # rfile.read(-1) would block until EOF on a keep-alive
            # socket, wedging the handler thread — reject outright.
            raise api_errors.invalid_request(
                f"invalid Content-Length: {length}")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise api_errors.invalid_request(
                "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._route("POST")

    def _route(self, method: str) -> None:
        self.server.request_began()
        try:
            self._route_inner(method)
        finally:
            self.server.request_ended()

    def _route_inner(self, method: str) -> None:
        request_id = api_errors.new_request_id()
        path = self.path.split("?", 1)[0]
        bound, params = resolve_route(method, path)
        if bound is None:
            self._send_error(api_errors.not_found(path), request_id)
            return
        legacy_kwargs = {"legacy": bound.legacy,
                         "successor": bound.spec.path}
        try:
            if bound.spec.handler == "metrics":
                text = self.server.service.metrics_text()
                self._send(200, text.encode("utf-8"),
                           bound.spec.media_type, request_id,
                           **legacy_kwargs)
                return
            body = self._read_json() if method == "POST" else {}
            handler = (LEGACY_HANDLERS if bound.legacy
                       else V1_HANDLERS)[bound.spec.handler]
            status, payload = handler(self.server.service, body, params)
        except ApiError as error:
            self._send_error(error, request_id, **legacy_kwargs)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            self._send_error(api_errors.invalid_request(str(error)),
                             request_id, **legacy_kwargs)
        except Exception as error:  # keep serving on handler failure
            self._send_error(api_errors.internal_error(error),
                             request_id, **legacy_kwargs)
        else:
            self._send_json(status, payload, request_id,
                            **legacy_kwargs)


def make_server(service: TaxonomyService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> TaxonomyHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks an ephemeral one.

    The bound address is available as ``server.server_address``.
    """
    return TaxonomyHTTPServer((host, port), service, quiet=quiet)


def install_sighup_reload(service: TaxonomyService) -> bool:
    """Make SIGHUP hot-reload the service's bundle (classic daemon UX).

    The reload runs on a short-lived thread so the signal handler —
    which executes on the main thread, between ``serve_forever`` polls —
    never blocks the accept loop behind a bundle load.  Returns False on
    platforms without SIGHUP (Windows) or off the main thread, where
    ``signal.signal`` is unavailable; ``POST /v1/admin/reload`` covers
    those.
    """
    if not hasattr(signal, "SIGHUP"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def handler(_signum, _frame):
        def run():
            try:
                outcome = service.reload()
                print(f"SIGHUP reload ok: {outcome}")
            except Exception as error:
                print(f"SIGHUP reload failed: {error!r}")
        threading.Thread(target=run, name="sighup-reload",
                         daemon=True).start()

    signal.signal(signal.SIGHUP, handler)
    return True


def install_sigterm_drain(server: TaxonomyHTTPServer) -> bool:
    """Make SIGTERM stop the accept loop so :func:`serve` can drain.

    The handler only calls ``server.shutdown()`` (on a helper thread,
    since shutdown blocks until ``serve_forever`` exits and signal
    handlers run on the main thread that *is* running it); the
    wait-for-in-flight half of the drain happens in :func:`serve`'s
    shutdown path, shared with Ctrl-C.  Returns False off the main
    thread, where ``signal.signal`` is unavailable.
    """
    if threading.current_thread() is not threading.main_thread():
        return False

    def handler(_signum, _frame):
        server.draining = True
        threading.Thread(target=server.shutdown, name="sigterm-drain",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, handler)
    return True


def serve(service: TaxonomyService, host: str = "127.0.0.1",
          port: int = 8631, quiet: bool = False,
          sighup_reload: bool = True,
          drain_timeout: float = 10.0) -> None:
    """Start the service workers and serve until interrupted.

    With ``sighup_reload`` (default), ``kill -HUP <pid>`` hot-swaps the
    artifact bundle exactly like ``POST /v1/admin/reload``.  SIGTERM
    (and Ctrl-C) trigger a graceful drain: stop accepting, finish
    in-flight requests up to ``drain_timeout`` seconds, then close.
    """
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    service.start()
    if sighup_reload:
        install_sighup_reload(service)
    install_sigterm_drain(server)
    print(f"repro serving on http://{bound_host}:{bound_port} "
          f"(/v1 API: /v1/healthz /v1/metrics /v1/taxonomy /v1/score "
          f"/v1/suggest /v1/expand /v1/ingest /v1/admin/reload "
          f"/v1/admin/snapshot /v1/jobs /v1/openapi.json; legacy "
          f"unversioned aliases remain with a Deprecation header)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.draining = True
        if not server.wait_idle(drain_timeout):
            print(f"drain timeout ({drain_timeout:.0f}s) reached with "
                  f"{server.inflight} request(s) still in flight")
        server.server_close()
        service.stop()
