"""Stdlib HTTP transport for :class:`~repro.serving.TaxonomyService`.

No web framework — a :class:`http.server.ThreadingHTTPServer` dispatches
the declarative route table from :data:`repro.api.ROUTES` onto the
service facade.  The transport owns *no* parsing logic of its own:

* request bodies are validated by the typed models in
  :mod:`repro.api.schemas` (one ``Model.parse`` per route),
* failures are rendered as the canonical error envelope from
  :mod:`repro.api.errors` with stable codes and correct statuses
  (400/404/413/429/503/500) plus a ``Retry-After`` header where the
  condition is transient,
* every response — success or error — carries an ``X-Request-Id``
  header echoed inside error envelopes,
* ``GET /v1/openapi.json`` serves the API description generated from
  the *same* route table this module dispatches on.

All endpoints live under ``/v1/...``; the pre-versioning paths
(``/score``, ``/ingest``, ...) remain as thin deprecated aliases that
keep their historical semantics (permissive defaults, raw service
response shapes, 503 on ingest backpressure) and emit ``Deprecation``
and ``Link: rel="successor-version"`` headers.  ``repro serve``
additionally installs a SIGHUP handler that triggers the same reload as
``POST /v1/admin/reload`` with no body (see :func:`serve`).
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..api import errors as api_errors
from ..api import schemas
from ..api.errors import ApiError
from ..api.openapi import ROUTES, build_openapi
from .service import TaxonomyService

__all__ = ["MAX_BODY_BYTES", "TaxonomyHTTPServer",
           "install_sighup_reload", "make_server", "serve"]

MAX_BODY_BYTES = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# /v1 handlers — named by RouteSpec.handler; each takes
# (service, body, params) and returns (status, payload) with payload
# already validated/normalised through the route's response model.
# ----------------------------------------------------------------------
def _require_started(service: TaxonomyService) -> None:
    if not service.started:
        raise api_errors.not_ready(
            "service workers are not running yet; retry shortly")


def _handle_health(service, body, params):
    payload = schemas.HealthResponse.parse(
        service.health(), allow_extra=True).as_payload()
    return 200, payload


def _handle_taxonomy(service, body, params):
    payload = schemas.TaxonomyResponse.parse(
        service.taxonomy_state(), allow_extra=True).as_payload()
    return 200, payload


#: the document is static for the life of the process (ROUTES and the
#: schema models are module constants), so build it once at import
_OPENAPI_DOC = build_openapi()


def _handle_openapi(service, body, params):
    return 200, _OPENAPI_DOC


def _handle_score(service, body, params):
    request = schemas.ScoreRequest.parse(body)
    _require_started(service)
    return 200, schemas.ScoreResponse.parse(
        service.score(request), allow_extra=True).as_payload()


def _handle_suggest(service, body, params):
    request = schemas.SuggestRequest.parse(body)
    _require_started(service)
    return 200, schemas.SuggestResponse.parse(
        service.suggest(request), allow_extra=True).as_payload()


def _handle_expand(service, body, params):
    request = schemas.ExpandRequest.parse(body)
    _require_started(service)
    return 200, schemas.ExpandResponse.parse(
        service.expand(request), allow_extra=True).as_payload()


def _handle_ingest(service, body, params):
    request = schemas.IngestRequest.parse(body)
    _require_started(service)
    result = service.ingest(request)
    if not result.get("accepted"):
        # Bounded-queue rejection is backpressure (retryable), not an
        # outage: 429 + Retry-After, distinct from 503 not_ready.
        raise api_errors.backpressure(
            "ingest queue is full; retry after the worker drains it",
            retry_after=1.0,
            detail={"pending_batches": result.get("pending_batches")})
    return 202, schemas.IngestResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_reload(service, body, params):
    request = schemas.ReloadRequest.parse(body)
    try:
        result = service.reload(request.artifacts, wait=False)
    except ApiError:
        raise
    except Exception as error:
        # Stable code for any rejected swap (missing bundle, smoke-test
        # or pool-parity failure); the previous model keeps serving.
        raise api_errors.reload_failed(repr(error)) from error
    return 200, schemas.ReloadResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_snapshot(service, body, params):
    try:
        result = service.snapshot()
    except ApiError:
        raise
    except Exception as error:
        # Stable code whether the store is missing or the capture
        # failed; serving state is untouched either way.
        raise api_errors.snapshot_failed(repr(error)) from error
    return 200, schemas.SnapshotResponse.parse(
        result, allow_extra=True).as_payload()


def _handle_job_snapshot(service, body, params):
    _require_started(service)

    def run():
        try:
            return service.snapshot()
        except ApiError:
            raise
        except Exception as error:
            raise api_errors.snapshot_failed(repr(error)) from error

    snapshot = service.jobs.submit("snapshot", run)
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_expand(service, body, params):
    request = schemas.ExpandRequest.parse(body)
    _require_started(service)
    snapshot = service.jobs.submit(
        "expand", lambda: service.expand(request))
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_reload(service, body, params):
    request = schemas.ReloadRequest.parse(body)
    _require_started(service)

    def run():
        try:
            return service.reload(request.artifacts)
        except ApiError:
            raise
        except Exception as error:
            raise api_errors.reload_failed(repr(error)) from error

    snapshot = service.jobs.submit("reload", run)
    return 202, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


def _handle_job_list(service, body, params):
    return 200, schemas.JobListResponse.parse(
        {"jobs": service.jobs.list()}).as_payload()


def _handle_job_get(service, body, params):
    snapshot = service.jobs.get(params["job_id"])
    return 200, schemas.JobResponse.parse(
        snapshot, allow_extra=True).as_payload()


# ----------------------------------------------------------------------
# legacy alias handlers — historical permissive semantics, raw service
# response shapes.  Deliberately thin: new behaviour goes to /v1 only.
# ----------------------------------------------------------------------
def _legacy_health(service, body, params):
    # raw shape: no schema normalisation (e.g. "journal" stays absent
    # without a journal, as pre-/v1 monitoring expects)
    return 200, service.health()


def _legacy_taxonomy(service, body, params):
    return 200, service.taxonomy_state()


def _legacy_score(service, body, params):
    return 200, service.score(body.get("pairs", []))


def _legacy_expand(service, body, params):
    return 200, service.expand(body.get("candidates", {}))


def _legacy_ingest(service, body, params):
    result = service.ingest(body.get("records", []),
                            body.get("provenance"),
                            sync=bool(body.get("sync", False)))
    return (202 if result["accepted"] else 503), result


def _legacy_reload(service, body, params):
    return 200, service.reload(body.get("artifacts"))


_V1_HANDLERS = {
    "health": _handle_health,
    "taxonomy": _handle_taxonomy,
    "openapi": _handle_openapi,
    "score": _handle_score,
    "suggest": _handle_suggest,
    "expand": _handle_expand,
    "ingest": _handle_ingest,
    "reload": _handle_reload,
    "snapshot": _handle_snapshot,
    "job_expand": _handle_job_expand,
    "job_reload": _handle_job_reload,
    "job_snapshot": _handle_job_snapshot,
    "job_list": _handle_job_list,
    "job_get": _handle_job_get,
    # "metrics" is text/plain and handled inline by the transport
}

_LEGACY_HANDLERS = {
    "health": _legacy_health,
    "taxonomy": _legacy_taxonomy,
    "score": _legacy_score,
    "expand": _legacy_expand,
    "ingest": _legacy_ingest,
    "reload": _legacy_reload,
}


class _BoundRoute:
    """One dispatchable (method, path template) -> handler binding."""

    __slots__ = ("spec", "segments", "legacy")

    def __init__(self, spec, path: str, legacy: bool):
        self.spec = spec
        self.segments = tuple(path.strip("/").split("/"))
        self.legacy = legacy

    def match(self, segments: tuple) -> dict | None:
        """Path params when ``segments`` matches this template."""
        if len(segments) != len(self.segments):
            return None
        params = {}
        for template, actual in zip(self.segments, segments):
            if template.startswith("{") and template.endswith("}"):
                params[template[1:-1]] = actual
            elif template != actual:
                return None
        return params


def _build_route_index() -> dict:
    """``{method: [_BoundRoute, ...]}`` from the declarative table."""
    index: dict[str, list] = {}
    for spec in ROUTES:
        index.setdefault(spec.method, []).append(
            _BoundRoute(spec, spec.path, legacy=False))
        if spec.legacy_alias:
            index.setdefault(spec.method, []).append(
                _BoundRoute(spec, spec.legacy_alias, legacy=True))
    return index


_ROUTE_INDEX = _build_route_index()


class TaxonomyHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`TaxonomyService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: TaxonomyService,
                 quiet: bool = True):
        super().__init__(address, _Handler)
        self.service = service
        self.quiet = quiet


class _Handler(BaseHTTPRequestHandler):
    """Dispatches the declarative route table onto ``server.service``."""

    server: TaxonomyHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes, content_type: str,
              request_id: str, *, legacy: bool = False,
              successor: str | None = None,
              retry_after: float | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        if legacy and successor:
            self.send_header("Deprecation", "true")
            self.send_header("Link",
                             f'<{successor}>; rel="successor-version"')
        if retry_after is not None:
            self.send_header("Retry-After",
                             str(max(1, round(retry_after))))
        if status >= 400:
            # Error paths may leave the request body unread; under
            # HTTP/1.1 keep-alive those bytes would be parsed as the
            # next request, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict, request_id: str,
                   **kwargs) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json", request_id, **kwargs)

    def _send_error(self, error: ApiError, request_id: str,
                    **kwargs) -> None:
        self._send_json(error.status, error.envelope(request_id),
                        request_id, retry_after=error.retry_after,
                        **kwargs)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise api_errors.payload_too_large(length, MAX_BODY_BYTES)
        if length < 0:
            # rfile.read(-1) would block until EOF on a keep-alive
            # socket, wedging the handler thread — reject outright.
            raise api_errors.invalid_request(
                f"invalid Content-Length: {length}")
        if length == 0:
            return {}
        payload = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(payload, dict):
            raise api_errors.invalid_request(
                "request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._route("POST")

    def _route(self, method: str) -> None:
        request_id = api_errors.new_request_id()
        path = self.path.split("?", 1)[0]
        segments = tuple(path.strip("/").split("/"))
        bound, params = None, None
        for candidate in _ROUTE_INDEX.get(method, ()):
            params = candidate.match(segments)
            if params is not None:
                bound = candidate
                break
        if bound is None:
            self._send_error(api_errors.not_found(path), request_id)
            return
        legacy_kwargs = {"legacy": bound.legacy,
                         "successor": bound.spec.path}
        try:
            if bound.spec.handler == "metrics":
                text = self.server.service.metrics_text()
                self._send(200, text.encode("utf-8"),
                           bound.spec.media_type, request_id,
                           **legacy_kwargs)
                return
            body = self._read_json() if method == "POST" else {}
            handler = (_LEGACY_HANDLERS if bound.legacy
                       else _V1_HANDLERS)[bound.spec.handler]
            status, payload = handler(self.server.service, body, params)
        except ApiError as error:
            self._send_error(error, request_id, **legacy_kwargs)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            self._send_error(api_errors.invalid_request(str(error)),
                             request_id, **legacy_kwargs)
        except Exception as error:  # keep serving on handler failure
            self._send_error(api_errors.internal_error(error),
                             request_id, **legacy_kwargs)
        else:
            self._send_json(status, payload, request_id,
                            **legacy_kwargs)


def make_server(service: TaxonomyService, host: str = "127.0.0.1",
                port: int = 0, quiet: bool = True) -> TaxonomyHTTPServer:
    """Bind (but do not run) a server; ``port=0`` picks an ephemeral one.

    The bound address is available as ``server.server_address``.
    """
    return TaxonomyHTTPServer((host, port), service, quiet=quiet)


def install_sighup_reload(service: TaxonomyService) -> bool:
    """Make SIGHUP hot-reload the service's bundle (classic daemon UX).

    The reload runs on a short-lived thread so the signal handler —
    which executes on the main thread, between ``serve_forever`` polls —
    never blocks the accept loop behind a bundle load.  Returns False on
    platforms without SIGHUP (Windows) or off the main thread, where
    ``signal.signal`` is unavailable; ``POST /v1/admin/reload`` covers
    those.
    """
    if not hasattr(signal, "SIGHUP"):
        return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def handler(_signum, _frame):
        def run():
            try:
                outcome = service.reload()
                print(f"SIGHUP reload ok: {outcome}")
            except Exception as error:
                print(f"SIGHUP reload failed: {error!r}")
        threading.Thread(target=run, name="sighup-reload",
                         daemon=True).start()

    signal.signal(signal.SIGHUP, handler)
    return True


def serve(service: TaxonomyService, host: str = "127.0.0.1",
          port: int = 8631, quiet: bool = False,
          sighup_reload: bool = True) -> None:
    """Start the service workers and serve until interrupted.

    With ``sighup_reload`` (default), ``kill -HUP <pid>`` hot-swaps the
    artifact bundle exactly like ``POST /v1/admin/reload``.
    """
    server = make_server(service, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    service.start()
    if sighup_reload:
        install_sighup_reload(service)
    print(f"repro serving on http://{bound_host}:{bound_port} "
          f"(/v1 API: /v1/healthz /v1/metrics /v1/taxonomy /v1/score "
          f"/v1/suggest /v1/expand /v1/ingest /v1/admin/reload "
          f"/v1/admin/snapshot /v1/jobs /v1/openapi.json; legacy "
          f"unversioned aliases remain with a Deprecation header)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.server_close()
        service.stop()
