"""Micro-batched, cached candidate scoring for the online path.

Top-down expansion re-scores the same (parent, child) pairs constantly —
every traversal of a node revisits its candidate set, and concurrent
requests overlap heavily.  :class:`BatchingScorer` wraps any
``Scorer``-protocol callable (typically
``HyponymyDetector.predict_proba`` via ``pipeline.score_pairs``) with

* an **LRU score cache** keyed on the (parent, child) pair, and
* **micro-batching**: when the worker is running, requests queued within
  ``max_wait_ms`` of each other are coalesced into one underlying model
  call of up to ``max_batch`` pairs, amortising per-call encoder overhead
  across clients.

Without :meth:`start` the scorer degrades gracefully to synchronous
cached batching (one underlying call per request), so it can stand in for
the raw scorer anywhere — including inside
:class:`~repro.core.IncrementalExpander`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["BatchingScorer", "ScorerStats"]

_MISSING = object()

Pair = tuple[str, str]


@dataclass
class ScorerStats:
    """Counters describing scorer traffic since construction."""

    requests: int = 0
    pairs_requested: int = 0
    cache_hits: int = 0
    pairs_scored: int = 0
    model_calls: int = 0
    batches: int = 0
    coalesced_requests: int = 0
    worker_failures: int = 0

    def as_dict(self) -> dict[str, int | float]:
        """JSON-friendly snapshot including the derived hit rate."""
        hit_rate = (self.cache_hits / self.pairs_requested
                    if self.pairs_requested else 0.0)
        return {
            "requests": self.requests,
            "pairs_requested": self.pairs_requested,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(hit_rate, 4),
            "pairs_scored": self.pairs_scored,
            "model_calls": self.model_calls,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "worker_failures": self.worker_failures,
        }


class _Request:
    """One caller's pending cache misses plus its completion signal."""

    __slots__ = ("pairs", "event", "scores", "error")

    def __init__(self, pairs: list[Pair]):
        self.pairs = pairs
        self.event = threading.Event()
        self.scores: dict[Pair, float] = {}
        self.error: BaseException | None = None


class BatchingScorer:
    """Thread-safe scoring front-end with coalescing and an LRU cache.

    Parameters
    ----------
    scorer:
        Underlying callable mapping ``list[(parent, child)]`` to an array
        of positive-class probabilities.
    max_batch:
        Upper bound on pairs per underlying model call.
    max_wait_ms:
        How long the worker waits for more requests to coalesce after the
        first one arrives (ignored in synchronous mode).
    cache_size:
        Maximum number of cached pair scores; 0 disables caching.
    """

    def __init__(self, scorer, max_batch: int = 64,
                 max_wait_ms: float = 2.0, cache_size: int = 4096):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._scorer = scorer
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.cache_size = cache_size
        self._cache: OrderedDict[Pair, float] = OrderedDict()  # guarded-by: self._lock
        # Bumped by swap_scorer: batches started under an older epoch
        # must not write their (old-model) scores into the new cache.
        self._epoch = 0  # guarded-by: self._lock
        self._queue: deque[_Request] = deque()  # guarded-by: self._lock
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._stats = ScorerStats()  # guarded-by: self._lock
        self._worker: threading.Thread | None = None  # guarded-by: self._lock
        self._stopping = False  # guarded-by: self._lock

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BatchingScorer":
        """Launch the coalescing worker; idempotent."""
        with self._lock:
            if self._worker is not None and self._worker.is_alive():
                return self
            self._stopping = False
            self._worker = threading.Thread(
                target=self._run, name="batching-scorer", daemon=True)
            self._worker.start()
        return self

    def stop(self, timeout: float | None = 5.0) -> None:
        """Drain the queue and stop the worker; idempotent."""
        with self._lock:
            worker = self._worker
            self._stopping = True
            self._wakeup.notify_all()
        if worker is not None:
            worker.join(timeout)
        with self._lock:
            self._worker = None

    @property
    def running(self) -> bool:
        """True while the coalescing worker is alive."""
        worker = self._worker
        return worker is not None and worker.is_alive()

    def __enter__(self) -> "BatchingScorer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Probabilities for ``pairs``; cache-aware and coalescing."""
        pairs = [(str(parent), str(child)) for parent, child in pairs]
        if not pairs:
            return np.zeros(0)
        resolved: dict[Pair, float] = {}
        with self._lock:
            self._stats.requests += 1
            self._stats.pairs_requested += len(pairs)
            missing: list[Pair] = []
            for pair in dict.fromkeys(pairs):
                value = self._cache_get(pair)
                if value is _MISSING:
                    missing.append(pair)
                else:
                    self._stats.cache_hits += 1
                    resolved[pair] = value
            if missing and self.running and not self._stopping and \
                    threading.current_thread() is not self._worker:
                request = _Request(missing)
                self._queue.append(request)
                self._wakeup.notify_all()
            else:
                request = None
        if missing and request is None:
            # Synchronous path: score all misses in max_batch-sized calls.
            resolved.update(self._score_chunked(missing, coalesced=1))
        elif missing:
            request.event.wait()
            if request.error is not None:
                raise request.error
            resolved.update(request.scores)
        return np.asarray([resolved[pair] for pair in pairs])

    def __call__(self, pairs: list[Pair]) -> np.ndarray:
        """Scorer-protocol alias for :meth:`score_pairs`."""
        return self.score_pairs(pairs)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def stats(self) -> ScorerStats:
        """Live traffic counters (shared object, read-only use).

        The worker mutates this object mid-batch; use
        :meth:`stats_snapshot` when a consistent view is needed (e.g.
        ``/metrics`` must never see pairs_scored from one batch with
        cache_hits from the next).
        """
        return self._stats

    def stats_snapshot(self) -> ScorerStats:
        """An atomic copy of the counters taken under the scorer lock."""
        with self._lock:
            return replace(self._stats)

    def cache_len(self) -> int:
        """Number of pair scores currently cached."""
        with self._lock:
            return len(self._cache)

    def clear_cache(self) -> None:
        """Drop every cached score."""
        with self._lock:
            self._cache.clear()

    def recent_pairs(self, limit: int) -> list:
        """The most recently used cached pairs, hottest first.

        The hot-reload cache-warming path captures these *before*
        ``swap_scorer`` clears the cache, then replays them through the
        new engine — post-reload traffic keeps hitting warm entries
        instead of falling off a latency cliff.
        """
        if limit <= 0:
            return []
        with self._lock:
            keys = list(self._cache.keys())
        return keys[-limit:][::-1]

    def invalidate_pairs_touching(self, concepts) -> int:
        """Drop cached scores for pairs involving any of ``concepts``.

        The recompute-on-ingest path calls this with the dirty frontier
        of a structural delta: only pairs whose node embeddings actually
        moved are evicted, so the rest of the cache keeps its hit rate.
        Returns the number of evicted entries.
        """
        concepts = set(concepts)
        if not concepts:
            return 0
        with self._lock:
            stale = [pair for pair in self._cache
                     if pair[0] in concepts or pair[1] in concepts]
            for pair in stale:
                del self._cache[pair]
            return len(stale)

    def swap_scorer(self, scorer, clear_cache: bool = True) -> None:
        """Atomically replace the underlying scorer (hot reload).

        Future batches call the new ``scorer``; a batch already executing
        keeps its reference to the old one and completes on it (the old
        engine drains naturally) — but its results are fenced out of the
        cache by an epoch bump, so a post-swap cache never serves
        old-model probabilities.  The LRU cache is cleared by default —
        cached probabilities belong to the outgoing model.
        """
        with self._lock:
            self._scorer = scorer
            self._epoch += 1
            if clear_cache:
                self._cache.clear()

    # ------------------------------------------------------------------
    # internals (callers hold self._lock where noted)
    # ------------------------------------------------------------------
    def _cache_get(self, pair: Pair):
        """LRU lookup; returns ``_MISSING`` on absence.  Lock held."""
        # holds: self._lock
        if self.cache_size and pair in self._cache:
            self._cache.move_to_end(pair)
            return self._cache[pair]
        return _MISSING

    def _score_chunked(self, pairs: list[Pair],
                       coalesced: int) -> dict[Pair, float]:
        """Run the underlying scorer in ``max_batch``-sized calls."""
        known: dict[Pair, float] = {}
        with self._lock:
            scorer = self._scorer  # one consistent model across the batch
            epoch = self._epoch
        for start in range(0, len(pairs), self.max_batch):
            chunk = pairs[start:start + self.max_batch]
            scores = np.asarray(scorer(chunk), dtype=np.float64)
            with self._lock:
                self._record_batch(chunk, scores,
                                   coalesced=coalesced if start == 0 else 0,
                                   epoch=epoch)
            known.update(zip(chunk, scores.tolist()))
        return known

    def _record_batch(self, pairs: list[Pair], scores: np.ndarray,
                      coalesced: int, epoch: int) -> None:
        """Account for one underlying call and fill the cache.  Lock held."""
        # holds: self._lock
        self._stats.model_calls += 1
        self._stats.batches += 1
        self._stats.pairs_scored += len(pairs)
        self._stats.coalesced_requests += coalesced
        if not self.cache_size or epoch != self._epoch:
            # A swap_scorer happened mid-batch: these scores came from
            # the outgoing model and must not repopulate the new cache.
            return
        for pair, score in zip(pairs, scores.tolist()):
            self._cache[pair] = float(score)
            self._cache.move_to_end(pair)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _collect(self) -> list[_Request]:
        """Pop a coalescable set of requests; blocks until work or stop.

        Returns an empty list only when stopping with an empty queue.
        """
        with self._lock:
            while not self._queue and not self._stopping:
                self._wakeup.wait()
            if not self._queue:
                return []
            batch = [self._queue.popleft()]
            count = len(batch[0].pairs)
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while count < self.max_batch:
                if self._queue:
                    count += len(self._queue[0].pairs)
                    batch.append(self._queue.popleft())
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or self._stopping:
                    break
                self._wakeup.wait(remaining)
            return batch

    def _run(self) -> None:
        """Worker loop.  A per-batch scoring failure propagates to that
        batch's waiters and the loop continues; anything that escapes the
        per-batch handling (a genuine worker-thread death) must never
        strand queued requests — :meth:`_fail_worker` resolves every
        waiter with the fatal error and flips the scorer back to the
        synchronous path."""
        batch: list[_Request] = []
        try:
            while True:
                batch = self._collect()
                if not batch:
                    return
                self._process_batch(batch)
                batch = []
        except BaseException as error:
            self._fail_worker(batch, error)

    def _process_batch(self, batch: list[_Request]) -> None:
        """Score one coalesced batch and resolve its requests."""
        # Dedup across coalesced requests; re-check the cache in case a
        # concurrent batch already scored some of these pairs.
        unique = list(dict.fromkeys(
            pair for request in batch for pair in request.pairs))
        known: dict[Pair, float] = {}
        with self._lock:
            to_score = []
            for pair in unique:
                value = self._cache_get(pair)
                if value is _MISSING:
                    to_score.append(pair)
                else:
                    known[pair] = value
        try:
            if to_score:
                known.update(self._score_chunked(
                    to_score, coalesced=len(batch)))
        except Exception as error:  # propagate to every waiter
            for request in batch:
                request.error = error
                request.event.set()
            return
        for request in batch:
            request.scores = {pair: known[pair]
                              for pair in request.pairs}
            request.event.set()

    def _fail_worker(self, batch: list[_Request],
                     error: BaseException) -> None:
        """The worker thread is dying: propagate ``error`` everywhere.

        Every queued request (and the batch being collected, if any) is
        resolved with the fatal error so no caller blocks forever, the
        ``worker_failures`` counter records the event for ``/metrics``,
        and the worker handle is cleared so subsequent calls degrade to
        the synchronous path until :meth:`start` is called again.
        """
        with self._lock:
            stranded = list(batch)
            while self._queue:
                stranded.append(self._queue.popleft())
            self._stats.worker_failures += 1
            self._worker = None
        for request in stranded:
            if not request.event.is_set():
                request.error = error
                request.event.set()
