"""Asyncio HTTP transport: concurrent serving on one event loop.

The threaded transport (:mod:`repro.serving.http`) spawns a thread per
connection and buffers every response in full — fine for a handful of
clients, a bottleneck at fan-in.  This module serves the *same*
contract (the shared dispatch core in :mod:`repro.serving.routes`, so
the same route table, schemas, error envelope and
``/v1/openapi.json``) on a single ``asyncio.start_server`` event loop:

* **keep-alive with real timeouts** — an idle connection is dropped
  silently after ``idle_timeout``; a connection that has *started* a
  request but trickles it (slow-loris) gets ``408 request_timeout``
  after ``read_timeout`` and is closed,
* **admission control** — CPU-bound routes (score/suggest/expand/
  ingest/admin, see :data:`~repro.serving.routes.HEAVY_HANDLERS`) share
  a bounded in-flight budget; past it the server *sheds* with the
  canonical ``429 backpressure`` envelope + ``Retry-After`` instead of
  queueing unboundedly, so admitted-request latency stays bounded,
* **off-loop execution** — handlers run on a small thread pool
  (``loop.run_in_executor``), so the event loop never blocks on a
  scoring batch; observability routes use a separate tiny pool and are
  always admitted, keeping ``/v1/healthz`` and ``/v1/metrics``
  responsive under saturation,
* **streaming** — ``POST /v1/score`` and ``POST /v1/expand`` answer
  ``Accept: application/x-ndjson`` with chunked NDJSON, one line per
  micro-batch (flushed as produced, not buffered whole); ``GET
  /v1/jobs/{id}`` supports ``?wait=<seconds>`` long-poll and ``Accept:
  text/event-stream`` SSE so clients stop busy-polling job status,
* **graceful drain** — :meth:`AsyncTaxonomyServer.drain` stops
  accepting, closes idle keep-alive connections, lets in-flight
  requests finish up to a deadline, then closes; ``serve_async`` wires
  it to SIGTERM.

The transport advertises ``{"job_wait", "sse", "ndjson"}`` in the
``capabilities`` object of ``/v1/healthz`` so the SDK can upgrade its
job-wait strategy; the threaded transport advertises nothing and
clients fall back to polling transparently.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import threading
import time
from http.client import responses as _REASONS
from urllib.parse import parse_qs

from ..api import errors as api_errors
from ..api import schemas
from ..api.errors import ApiError
from .routes import (HEAVY_HANDLERS, LEGACY_HANDLERS, MAX_BODY_BYTES,
                     V1_HANDLERS, require_started, resolve_route)
from .service import TaxonomyService

__all__ = ["AsyncServerThread", "AsyncTaxonomyServer", "CAPABILITIES",
           "serve_async"]

#: transport capabilities advertised in the ``/v1/healthz`` payload;
#: the SDK keys its job-wait upgrade off ``job_wait``/``sse``.
CAPABILITIES = {
    "transport": "async",
    "job_wait": True,
    "sse": True,
    "ndjson": True,
}

#: header-block size cap (also the StreamReader buffer limit)
_MAX_HEADER_BYTES = 64 * 1024

#: SSE/long-poll fallback re-check period — waiters also wake on the
#: job-completion pulse, this only bounds staleness if a pulse is lost
_JOB_POLL_FALLBACK = 0.5

#: upper bound on one long-poll hold; clients re-issue to wait longer
_MAX_JOB_WAIT = 30.0


class _ConnState:
    """Book-keeping for one live connection (loop-confined, no locks)."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer):
        self.writer = writer
        self.busy = False


class AsyncTaxonomyServer:
    """Asyncio HTTP server bound to one :class:`TaxonomyService`.

    All methods must be called on the server's event loop unless noted;
    :class:`AsyncServerThread` wraps the lifecycle for synchronous
    callers (tests, benchmarks).

    Parameters
    ----------
    max_inflight:
        Admission budget for heavy routes — requests already executing
        or queued on the heavy pool beyond this count are shed with
        ``429 backpressure``.
    heavy_workers / light_workers:
        Thread-pool sizes for CPU-bound handlers and observability
        handlers respectively.
    read_timeout / idle_timeout:
        Seconds before a *started* request is failed with 408, and
        before an idle keep-alive connection is silently closed.
    max_connections:
        Open-connection cap; connections past it are refused with a
        ``503 not_ready`` envelope.
    stream_chunk_size:
        Pairs (score) or query concepts (expand) per NDJSON line.
    """

    def __init__(self, service: TaxonomyService, host: str = "127.0.0.1",
                 port: int = 0, *, max_inflight: int = 8,
                 heavy_workers: int = 4, light_workers: int = 2,
                 read_timeout: float = 5.0, idle_timeout: float = 30.0,
                 max_connections: int = 256,
                 stream_chunk_size: int = 64, quiet: bool = True):
        self.service = service
        self.host = host
        self.port = port
        self.max_inflight = max(1, int(max_inflight))
        self.read_timeout = float(read_timeout)
        self.idle_timeout = float(idle_timeout)
        self.max_connections = max(1, int(max_connections))
        self.stream_chunk_size = max(1, int(stream_chunk_size))
        self.quiet = quiet
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[_ConnState] = set()
        self._inflight_heavy = 0
        self._idle_event: asyncio.Event | None = None
        self._job_pulse: asyncio.Event | None = None
        self._heavy_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, int(heavy_workers)),
            thread_name_prefix="async-http-heavy")
        self._light_executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, int(light_workers)),
            thread_name_prefix="async-http-light")
        # transport counters, exposed as repro_http_* in /v1/metrics
        self.stats = {
            "connections_total": 0,
            "requests_total": 0,
            "shed_total": 0,
            "request_timeouts_total": 0,
            "streams_total": 0,
            "refused_connections_total": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound address.

        Also subscribes to the service's job manager so long-poll/SSE
        waiters wake the moment a job reaches a terminal state (an
        asyncio pulse scheduled thread-safely from the job worker).
        """
        self._loop = asyncio.get_running_loop()
        self._idle_event = asyncio.Event()
        self._job_pulse = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=_MAX_HEADER_BYTES)
        self.service.jobs.add_listener(self._on_job_terminal)
        return self.address

    def _on_job_terminal(self, _snapshot: dict) -> None:
        """Job-worker callback: pulse every waiter on the loop thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._pulse_jobs)
            except RuntimeError:
                pass  # loop shut down between the check and the call

    def _pulse_jobs(self) -> None:
        """Wake current job waiters; later waiters get a fresh event."""
        pulse, self._job_pulse = self._job_pulse, asyncio.Event()
        if pulse is not None:
            pulse.set()

    async def drain(self, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight work.

        Closes the listening socket, drops *idle* keep-alive
        connections immediately, flags busy ones to close after the
        response in progress, and waits up to ``timeout`` for in-flight
        requests to finish.  Returns True when everything drained in
        time, False when the deadline forced the close.
        """
        self.draining = True
        deadline = time.monotonic() + timeout
        if self._server is not None:
            # stop accepting only — wait_closed() must come *after* the
            # connections are closed: since Python 3.12.1 it blocks
            # until every connection (idle keep-alive ones included)
            # has gone away, which would stall the drain deadline
            self._server.close()
        for conn in list(self._connections):
            if not conn.busy:
                conn.writer.close()
        while any(conn.busy for conn in self._connections):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            self._idle_event.clear()
            try:
                await asyncio.wait_for(self._idle_event.wait(),
                                       min(remaining, 0.1))
            except asyncio.TimeoutError:
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(),
                    max(deadline - time.monotonic(), 0.05))
            except asyncio.TimeoutError:
                return False
        return True

    async def close(self) -> None:
        """Release sockets, executors and the job-manager listener."""
        self.draining = True
        if self._server is not None:
            self._server.close()
        for conn in list(self._connections):
            conn.writer.close()
        if self._server is not None:
            try:
                # connections are closed above, so this is normally
                # instant; the bound covers stragglers whose close is
                # still flushing (3.12+ wait_closed tracks them all)
                await asyncio.wait_for(self._server.wait_closed(), 1.0)
            except asyncio.TimeoutError:
                pass
        self.service.jobs.remove_listener(self._on_job_terminal)
        self._heavy_executor.shutdown(wait=False)
        self._light_executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self.stats["connections_total"] += 1
        conn = _ConnState(writer)
        if self.draining or len(self._connections) >= self.max_connections:
            self.stats["refused_connections_total"] += 1
            error = api_errors.not_ready(
                "connection limit reached" if not self.draining
                else "server is draining", retry_after=1.0)
            await self._write_simple_error(writer, error)
            writer.close()
            return
        self._connections.add(conn)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                conn.busy = True
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    conn.busy = False
                    if self._idle_event is not None:
                        self._idle_event.set()
                if not keep_alive or self.draining:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass  # client went away (or drain cancelled us) mid-cycle
        finally:
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            # repro-lint: disable=RL006 - best-effort close of a discarded connection
            except Exception:
                pass

    async def _read_request(self, reader, writer):
        """One parsed request, or None when the connection should close.

        Applies ``idle_timeout`` while waiting for the first byte
        (silent close — an idle keep-alive connection is normal) and
        ``read_timeout`` once a request has started (408 — the client
        is trickling; this is the slow-loris guard).  Oversized bodies
        are rejected 413 from the ``Content-Length`` header alone,
        before any body byte is read.
        """
        try:
            first = await asyncio.wait_for(reader.read(1),
                                           self.idle_timeout)
        except asyncio.TimeoutError:
            return None  # idle keep-alive expiry: close silently
        if not first:
            return None  # clean EOF
        try:
            rest = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), self.read_timeout)
        except asyncio.TimeoutError:
            self.stats["request_timeouts_total"] += 1
            await self._write_simple_error(
                writer, api_errors.request_timeout(
                    f"request header not completed within "
                    f"{self.read_timeout:.1f}s"))
            return None
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None  # connection died or headers overran the cap
        try:
            head = (first + rest).decode("latin-1")
            request_line, _, header_text = head.partition("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            await self._write_simple_error(
                writer,
                api_errors.invalid_request("malformed request line"))
            return None
        headers = {}
        for line in header_text.split("\r\n"):
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        path, _, query = path.partition("?")
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            await self._write_simple_error(
                writer, api_errors.invalid_request(
                    "invalid Content-Length header"))
            return None
        if length > MAX_BODY_BYTES:
            # header-first rejection: the body is never read
            await self._write_simple_error(
                writer,
                api_errors.payload_too_large(length, MAX_BODY_BYTES))
            return None
        if length < 0:
            await self._write_simple_error(
                writer, api_errors.invalid_request(
                    f"invalid Content-Length: {length}"))
            return None
        body = b""
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self.read_timeout)
            except asyncio.TimeoutError:
                self.stats["request_timeouts_total"] += 1
                await self._write_simple_error(
                    writer, api_errors.request_timeout(
                        f"request body not completed within "
                        f"{self.read_timeout:.1f}s"))
                return None
            except asyncio.IncompleteReadError:
                return None
        return (method, path, query, headers, body)

    # ------------------------------------------------------------------
    # response formatting
    # ------------------------------------------------------------------
    @staticmethod
    def _head_bytes(status: int, headers: list) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    def _response_bytes(self, status: int, body: bytes,
                        content_type: str, request_id: str, *,
                        legacy: bool = False,
                        successor: str | None = None,
                        retry_after: float | None = None,
                        close: bool = False) -> bytes:
        headers = [("Content-Type", content_type),
                   ("Content-Length", str(len(body))),
                   ("X-Request-Id", request_id)]
        if legacy and successor:
            headers.append(("Deprecation", "true"))
            headers.append(
                ("Link", f'<{successor}>; rel="successor-version"'))
        if retry_after is not None:
            headers.append(("Retry-After",
                            str(max(1, round(retry_after)))))
        if status >= 400 or close or self.draining:
            # mirror the threaded transport: error paths may leave the
            # request body unread, so never keep-alive past an error
            headers.append(("Connection", "close"))
        else:
            headers.append(("Connection", "keep-alive"))
        return self._head_bytes(status, headers) + body

    async def _write_simple_error(self, writer, error: ApiError) -> None:
        """Best-effort error envelope outside normal dispatch."""
        request_id = api_errors.new_request_id()
        payload = json.dumps(error.envelope(request_id)).encode("utf-8")
        try:
            writer.write(self._response_bytes(
                error.status, payload, "application/json", request_id,
                retry_after=error.retry_after, close=True))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request, writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        method, path, query, headers, body_bytes = request
        self.stats["requests_total"] += 1
        request_id = api_errors.new_request_id()
        bound, params = resolve_route(method, path)
        if bound is None:
            return await self._send_error(
                writer, api_errors.not_found(path), request_id)
        legacy_kwargs = {"legacy": bound.legacy,
                         "successor": bound.spec.path}
        handler_name = bound.spec.handler
        accept = headers.get("accept", "")
        want_close = "close" in headers.get("connection", "").lower()
        try:
            body = self._parse_body(method, body_bytes)
            if handler_name == "metrics":
                text = await self._run_light(
                    self.service.metrics_text) + self.metrics_text()
                writer.write(self._response_bytes(
                    200, text.encode("utf-8"), bound.spec.media_type,
                    request_id, close=want_close, **legacy_kwargs))
                await writer.drain()
                return not want_close
            if (not bound.legacy and method == "POST"
                    and handler_name in ("score", "expand")
                    and "application/x-ndjson" in accept):
                return await self._stream_ndjson(
                    writer, handler_name, body, request_id)
            if handler_name == "job_get" and not bound.legacy:
                if "text/event-stream" in accept:
                    return await self._stream_sse(
                        writer, params["job_id"], request_id)
                wait_s = self._wait_param(query)
                if wait_s > 0:
                    payload = await self._wait_job(
                        params["job_id"], wait_s)
                    payload = schemas.JobResponse.parse(
                        payload, allow_extra=True).as_payload()
                    return await self._send_json(
                        writer, 200, payload, request_id,
                        close=want_close, **legacy_kwargs)
            status, payload = await self._run_handler(
                bound, handler_name, body, params)
            if handler_name == "health" and not bound.legacy:
                payload = dict(payload)
                payload["capabilities"] = dict(CAPABILITIES)
        except ApiError as error:
            return await self._send_error(writer, error, request_id,
                                          **legacy_kwargs)
        except (ValueError, KeyError, TypeError,
                json.JSONDecodeError) as error:
            return await self._send_error(
                writer, api_errors.invalid_request(str(error)),
                request_id, **legacy_kwargs)
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as error:  # keep serving on handler failure
            return await self._send_error(
                writer, api_errors.internal_error(error), request_id,
                **legacy_kwargs)
        return await self._send_json(writer, status, payload,
                                     request_id, close=want_close,
                                     **legacy_kwargs)

    @staticmethod
    def _parse_body(method: str, body_bytes: bytes) -> dict:
        if method != "POST" or not body_bytes:
            return {}
        payload = json.loads(body_bytes.decode("utf-8"))
        if not isinstance(payload, dict):
            raise api_errors.invalid_request(
                "request body must be a JSON object")
        return payload

    @staticmethod
    def _wait_param(query: str) -> float:
        if not query:
            return 0.0
        values = parse_qs(query).get("wait")
        if not values:
            return 0.0
        try:
            wait_s = float(values[-1])
        except ValueError:
            raise api_errors.invalid_request(
                f"invalid wait parameter: {values[-1]!r}",
                field="wait") from None
        return max(0.0, min(wait_s, _MAX_JOB_WAIT))

    async def _run_light(self, fn, *args):
        """Run an observability callable on the always-admitted pool."""
        return await self._loop.run_in_executor(
            self._light_executor, lambda: fn(*args))

    async def _run_handler(self, bound, handler_name, body, params):
        """Run a route handler off-loop with admission control.

        Heavy handlers consume one slot of the bounded in-flight
        budget; at capacity the request is shed immediately with the
        canonical ``backpressure`` envelope (429 + ``Retry-After``)
        rather than queued — the client's retry-with-jitter is the
        queue.  Light handlers bypass the budget on their own pool so
        the service stays observable while saturated.
        """
        handler = (LEGACY_HANDLERS if bound.legacy
                   else V1_HANDLERS)[handler_name]
        heavy = handler_name in HEAVY_HANDLERS
        if not heavy:
            return await self._run_light(
                handler, self.service, body, params)
        self._acquire_heavy_slot()
        try:
            return await self._loop.run_in_executor(
                self._heavy_executor,
                lambda: handler(self.service, body, params))
        finally:
            self._inflight_heavy -= 1

    def _acquire_heavy_slot(self) -> None:
        """Take one admission slot or shed with ``429 backpressure``.

        The caller owns the slot on return and must decrement
        ``_inflight_heavy`` in a ``finally`` when the work — a single
        handler call or an entire NDJSON stream — is done.
        """
        if self._inflight_heavy >= self.max_inflight:
            self.stats["shed_total"] += 1
            raise api_errors.backpressure(
                f"server is at its concurrency budget "
                f"({self.max_inflight} in-flight requests); retry "
                f"with backoff",
                retry_after=1.0,
                detail={"inflight": self._inflight_heavy,
                        "limit": self.max_inflight})
        self._inflight_heavy += 1

    async def _send_json(self, writer, status, payload, request_id,
                         *, close=False, **legacy_kwargs) -> bool:
        body = json.dumps(payload).encode("utf-8")
        writer.write(self._response_bytes(
            status, body, "application/json", request_id, close=close,
            **legacy_kwargs))
        await writer.drain()
        return status < 400 and not close and not self.draining

    async def _send_error(self, writer, error: ApiError, request_id,
                          **legacy_kwargs) -> bool:
        body = json.dumps(error.envelope(request_id)).encode("utf-8")
        writer.write(self._response_bytes(
            error.status, body, "application/json", request_id,
            retry_after=error.retry_after, **legacy_kwargs))
        await writer.drain()
        return False  # error responses always close (body may be unread)

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    @staticmethod
    def _chunk(data: bytes) -> bytes:
        """One HTTP/1.1 chunked-transfer frame."""
        return f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"

    def _make_stream(self, handler_name: str, body: dict):
        """Validate the request and build the result generator.

        Validation (schema parse + readiness) runs *before* the
        generator is returned, so failures surface as ordinary JSON
        error envelopes, never as a broken stream.
        """
        if handler_name == "score":
            request = schemas.ScoreRequest.parse(body)
            require_started(self.service)
            return self.service.score_chunks(
                request, chunk_size=self.stream_chunk_size)
        request = schemas.ExpandRequest.parse(body)
        require_started(self.service)
        # expand chunks are whole journaled expansions; keep them small
        # so the stream flushes often
        return self.service.expand_chunks(
            request, chunk_size=max(1, self.stream_chunk_size // 8))

    async def _stream_ndjson(self, writer, handler_name, body,
                             request_id) -> bool:
        """Stream score/expand results as chunked NDJSON micro-batches.

        The first micro-batch is computed *before* the headers go out,
        so validation and readiness errors still produce proper error
        envelopes; failures after that append a terminal
        ``{"error": ...}`` line and end the stream.  A client that
        disconnects mid-stream just closes the generator — the
        connection handler treats the reset as a normal goodbye.

        The stream holds one admission slot for its entire lifetime:
        every ``pull`` runs on the shared heavy executor, so an
        unadmitted stream would evade the 429 shedding contract and
        starve admitted non-stream requests.
        """
        self._acquire_heavy_slot()
        try:
            generator = self._make_stream(handler_name, body)
            sentinel = object()

            def pull():
                return next(generator, sentinel)

            first = await self._loop.run_in_executor(
                self._heavy_executor, pull)
            self.stats["streams_total"] += 1
            writer.write(self._head_bytes(200, [
                ("Content-Type", "application/x-ndjson"),
                ("Transfer-Encoding", "chunked"),
                ("X-Request-Id", request_id),
                ("Connection", "close"),
            ]))
            try:
                item = first
                while item is not sentinel:
                    line = (json.dumps(item) + "\n").encode("utf-8")
                    writer.write(self._chunk(line))
                    await writer.drain()  # flush per micro-batch
                    item = await self._loop.run_in_executor(
                        self._heavy_executor, pull)
            except (ConnectionResetError, BrokenPipeError):
                generator.close()  # client went away: stop producing
                raise
            except Exception as error:
                envelope = (api_errors.internal_error(error)
                            if not isinstance(error, ApiError)
                            else error).envelope(request_id)
                writer.write(self._chunk(
                    (json.dumps(envelope) + "\n").encode("utf-8")))
            writer.write(b"0\r\n\r\n")
            await writer.drain()
            return False  # chunked streams end the connection
        finally:
            self._inflight_heavy -= 1

    async def _wait_job(self, job_id: str, wait_s: float) -> dict:
        """Long-poll one job: return as soon as it turns terminal.

        Waiters ride the job-completion pulse (set thread-safely by the
        job manager's terminal listener) with a short fallback re-check,
        so they occupy no executor thread while parked.  Returns the
        latest snapshot either way — on timeout the client simply sees
        a non-terminal status and may re-issue the wait.
        """
        deadline = time.monotonic() + wait_s
        while True:
            snapshot = self.service.jobs.get(job_id)
            remaining = deadline - time.monotonic()
            if snapshot["status"] in ("succeeded", "failed"):
                return snapshot
            if remaining <= 0:
                return snapshot
            pulse = self._job_pulse
            try:
                await asyncio.wait_for(
                    pulse.wait(),
                    min(remaining, _JOB_POLL_FALLBACK))
            except asyncio.TimeoutError:
                pass

    async def _stream_sse(self, writer, job_id, request_id) -> bool:
        """Server-sent events for one job until it turns terminal.

        Emits the current snapshot immediately, then one ``status``
        event per observed state change (woken by the job-completion
        pulse), and closes after the terminal event.  Unknown job ids
        fail with the ordinary 404 envelope before any event is sent.
        """
        snapshot = self.service.jobs.get(job_id)  # 404 before headers
        self.stats["streams_total"] += 1
        writer.write(self._head_bytes(200, [
            ("Content-Type", "text/event-stream; charset=utf-8"),
            ("Cache-Control", "no-cache"),
            ("Transfer-Encoding", "chunked"),
            ("X-Request-Id", request_id),
            ("Connection", "close"),
        ]))
        last_status = None
        try:
            while True:
                if snapshot["status"] != last_status:
                    last_status = snapshot["status"]
                    event = (f"event: status\r\n"
                             f"data: {json.dumps(snapshot)}\r\n\r\n")
                    writer.write(self._chunk(event.encode("utf-8")))
                    await writer.drain()
                if snapshot["status"] in ("succeeded", "failed"):
                    break
                pulse = self._job_pulse
                try:
                    await asyncio.wait_for(pulse.wait(),
                                           _JOB_POLL_FALLBACK)
                except asyncio.TimeoutError:
                    pass
                snapshot = self.service.jobs.get(job_id)
        except (ConnectionResetError, BrokenPipeError):
            raise  # client disconnected: nothing left to do
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return False

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """Transport counters in Prometheus text format.

        Appended to the service's own ``/v1/metrics`` output so one
        scrape covers both the model plane and the transport plane.
        """
        lines = []
        for name, value in sorted(self.stats.items()):
            lines.append(f"# TYPE repro_http_{name} counter")
            lines.append(f"repro_http_{name} {value}")
        lines.append("# TYPE repro_http_connections_open gauge")
        lines.append(
            f"repro_http_connections_open {len(self._connections)}")
        lines.append("# TYPE repro_http_inflight_heavy gauge")
        lines.append(
            f"repro_http_inflight_heavy {self._inflight_heavy}")
        return "\n".join(lines) + "\n"


class AsyncServerThread:
    """Run an :class:`AsyncTaxonomyServer` on a background event loop.

    Synchronous harness for tests, benchmarks and the CLI's threaded
    callers: owns a dedicated loop thread, starts the server on it, and
    exposes blocking ``start``/``stop``.  ``stop`` drains gracefully
    (bounded by ``drain_timeout``) before closing.
    """

    def __init__(self, service: TaxonomyService, host: str = "127.0.0.1",
                 port: int = 0, **server_kwargs):
        self.server = AsyncTaxonomyServer(service, host, port,
                                          **server_kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread: threading.Thread | None = None
        self._address: tuple[str, int] | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._address is None:
            raise RuntimeError("server thread is not started")
        return self._address

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        """Start the loop thread and the server; returns the address."""
        if self._thread is not None:
            return self._address
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="async-http-loop",
            daemon=True)
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop)
        self._address = future.result(timeout=timeout)
        return self._address

    def stop(self, drain_timeout: float = 5.0) -> bool:
        """Drain, close and join the loop thread; True if fully drained."""
        if self._thread is None:
            return True

        async def shutdown():
            drained = await self.server.drain(drain_timeout)
            await self.server.close()
            return drained

        future = asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        drained = future.result(timeout=drain_timeout + 10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._thread = None
        return drained


async def _serve_async(service: TaxonomyService, host: str, port: int,
                       quiet: bool, drain_timeout: float,
                       **server_kwargs) -> None:
    """Event-loop body of :func:`serve_async`: run until signalled."""
    server = AsyncTaxonomyServer(service, host, port, quiet=quiet,
                                 **server_kwargs)
    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without loop signal support
    if hasattr(signal, "SIGHUP"):
        def sighup_reload():
            def run():
                try:
                    outcome = service.reload()
                    print(f"SIGHUP reload ok: {outcome}")
                except Exception as error:
                    print(f"SIGHUP reload failed: {error!r}")
            threading.Thread(target=run, name="sighup-reload",
                             daemon=True).start()
        try:
            loop.add_signal_handler(signal.SIGHUP, sighup_reload)
        except (NotImplementedError, RuntimeError):
            pass
    bound_host, bound_port = await server.start()
    # keep the "repro serving on http://..." prefix stable — log
    # scrapers and the subprocess tests parse it to find the port
    print(f"repro serving on http://{bound_host}:{bound_port} "
          f"(async transport; same /v1 contract as threaded, NDJSON "
          f"streaming on /v1/score + /v1/expand, SSE/long-poll on "
          f"/v1/jobs/{{id}}, admission budget "
          f"{server.max_inflight} in-flight)")
    try:
        await stop_event.wait()
    except asyncio.CancelledError:
        pass
    print("draining")
    drained = await server.drain(drain_timeout)
    if not drained:
        print(f"drain timeout ({drain_timeout:.0f}s) reached with "
              f"requests still in flight")
    await server.close()


def serve_async(service: TaxonomyService, host: str = "127.0.0.1",
                port: int = 8631, quiet: bool = False,
                drain_timeout: float = 10.0, **server_kwargs) -> None:
    """Start the service workers and serve on asyncio until signalled.

    The asyncio counterpart of :func:`repro.serving.http.serve`:
    SIGTERM/Ctrl-C trigger a graceful drain (stop accepting, finish
    in-flight up to ``drain_timeout``, close), SIGHUP hot-reloads the
    bundle.  Extra keyword arguments reach
    :class:`AsyncTaxonomyServer` (admission budget, timeouts,
    connection cap, stream chunk size).
    """
    service.start()
    try:
        asyncio.run(_serve_async(service, host, port, quiet,
                                 drain_timeout, **server_kwargs))
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        service.stop()
