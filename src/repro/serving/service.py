"""The online taxonomy service facade.

:class:`TaxonomyService` composes the serving subsystem around one loaded
:class:`~repro.serving.ArtifactBundle`:

* a :class:`~repro.serving.BatchingScorer` front-ending the detector,
* an :class:`~repro.core.IncrementalExpander` owning the live taxonomy,
* a :class:`~repro.serving.StreamingIngestor` applying click-log batches
  from a background worker.

Every public method takes and returns JSON-friendly values, so the HTTP
layer (:mod:`repro.serving.http`) is a thin router over this class and the
same operations are directly scriptable in-process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..core.expansion import expand_taxonomy
from ..core.incremental import IncrementalExpander, IngestReport
from ..taxonomy import taxonomy_to_dict
from .artifacts import ArtifactBundle
from .ingest import StreamingIngestor, click_log_from_records
from .scorer import BatchingScorer

__all__ = ["ServiceConfig", "TaxonomyService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs for one service instance."""

    max_batch: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = 4096
    max_ingest_queue: int = 16


def _report_to_dict(report: IngestReport) -> dict:
    return {
        "batch_index": report.batch_index,
        "new_candidate_queries": report.new_candidate_queries,
        "attached_edges": [list(edge) for edge in report.attached_edges],
        "num_attached": report.num_attached,
        "taxonomy_edges_after": report.taxonomy_edges_after,
    }


class TaxonomyService:
    """Long-running facade over a fitted pipeline and its taxonomy."""

    def __init__(self, bundle: ArtifactBundle,
                 config: ServiceConfig | None = None):
        if bundle.pipeline.detector is None:
            raise ValueError("bundle holds an unfitted pipeline")
        self.bundle = bundle
        self.config = config or ServiceConfig()
        self.scorer = BatchingScorer(
            bundle.pipeline.score_pairs,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            cache_size=self.config.cache_size)
        # One lock serialises every taxonomy writer: the ingest worker and
        # synchronous /expand requests.
        self._taxonomy_lock = threading.Lock()
        self.expander = IncrementalExpander(
            self.scorer, bundle.taxonomy, bundle.vocabulary,
            bundle.pipeline.config.expansion)
        self.ingestor = StreamingIngestor(
            self.expander, max_queue=self.config.max_ingest_queue,
            lock=self._taxonomy_lock)
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TaxonomyService":
        """Start the scoring and ingestion workers; idempotent."""
        self.scorer.start()
        self.ingestor.start()
        return self

    def stop(self) -> None:
        """Drain and stop both workers; idempotent."""
        self.ingestor.stop()
        self.scorer.stop()

    def __enter__(self) -> "TaxonomyService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # operations (JSON-friendly in, JSON-friendly out)
    # ------------------------------------------------------------------
    def score(self, pairs: list) -> dict:
        """Hyponymy probabilities for explicit (parent, child) pairs."""
        cleaned = []
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ValueError(f"pair must be [parent, child]: {pair!r}")
            cleaned.append((str(pair[0]), str(pair[1])))
        probs = self.scorer.score_pairs(cleaned)
        return {
            "pairs": [list(pair) for pair in cleaned],
            "probabilities": [float(p) for p in probs],
        }

    def expand(self, candidates: dict) -> dict:
        """Synchronously expand the live taxonomy over given candidates.

        ``candidates`` maps a query concept to its candidate item
        concepts.  Accepted edges are committed to the service taxonomy.
        """
        if not isinstance(candidates, dict):
            raise ValueError("candidates must map query -> [items]")
        cleaned = {str(query): [str(item) for item in items]
                   for query, items in candidates.items()}
        with self._taxonomy_lock:
            result = expand_taxonomy(
                self.scorer, self.expander.taxonomy, cleaned,
                self.expander.config)
            self.expander.taxonomy = result.taxonomy
        return {
            "attached_edges": [list(edge)
                               for edge in result.attached_edges],
            "num_attached": result.num_attached,
            "scored_candidates": len(result.scored_pairs),
            "taxonomy_edges": result.taxonomy.num_edges,
        }

    def ingest(self, records: list, provenance: dict | None = None,
               sync: bool = False) -> dict:
        """Queue one click-log batch; ``sync=True`` waits for the report."""
        batch = click_log_from_records(records, provenance)
        ticket = self.ingestor.submit(batch, block=False)
        if ticket is None:
            return {"accepted": False, "reason": "ingest queue full",
                    "pending_batches": self.ingestor.pending}
        if sync:
            # The ticket resolves to this batch's own report (or re-raises
            # this batch's own failure) — never another caller's outcome.
            report = ticket.wait(timeout=60.0)
            return {"accepted": True, "report": _report_to_dict(report)}
        return {"accepted": True,
                "pending_batches": self.ingestor.pending}

    def taxonomy_state(self, include_edges: bool = True) -> dict:
        """The live taxonomy plus accumulated-traffic statistics."""
        with self._taxonomy_lock:
            taxonomy = self.expander.taxonomy
            payload = taxonomy_to_dict(taxonomy) if include_edges else {}
            accumulated = self.expander.accumulated_log
            stats = {
                "nodes": taxonomy.num_nodes,
                "edges": taxonomy.num_edges,
                "depth": taxonomy.depth(),
                "ingested_batches": self.expander.num_batches,
                "accumulated_click_records": accumulated.num_records,
                "accumulated_click_pairs": accumulated.num_pairs,
                "accumulated_queries": len(accumulated.queries()),
            }
        payload["stats"] = stats
        # Bounded recent-history window, not the full ingestion log —
        # exact totals live in stats (memory stays flat under load).
        payload["reports"] = [_report_to_dict(r)
                              for r in self.ingestor.reports]
        return payload

    def health(self) -> dict:
        """Liveness snapshot for ``/healthz``."""
        errors = self.ingestor.errors
        return {
            "status": "degraded" if errors else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "workers": {
                "scorer": self.scorer.running,
                "ingestor": self.ingestor.running,
            },
            "ingest": {
                "pending_batches": self.ingestor.pending,
                "processed_batches": self.ingestor.processed,
                "failed_batches": self.ingestor.failed,
                "recent_errors": [repr(e) for e in errors],
            },
            "scorer": self.scorer.stats_snapshot().as_dict(),
            "taxonomy_edges": self.expander.taxonomy.num_edges,
        }

    def metrics_text(self) -> str:
        """Prometheus text-format exposition for ``/metrics``.

        Covers scorer traffic (an atomic :class:`ScorerStats` snapshot),
        ingest queue depth and totals, live-taxonomy gauges, and the
        inference engine's dtype/batch counters when the fast path is
        compiled.
        """
        scorer = self.scorer.stats_snapshot()
        lines: list[str] = []

        def metric(name: str, kind: str, help_text: str, value,
                   labels: str = "") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{labels} {value}")

        metric("repro_uptime_seconds", "gauge",
               "Seconds since the service was constructed.",
               round(time.monotonic() - self._started_at, 3))
        metric("repro_scorer_requests_total", "counter",
               "score_pairs requests received.", scorer.requests)
        metric("repro_scorer_pairs_requested_total", "counter",
               "Pairs requested across all requests.",
               scorer.pairs_requested)
        metric("repro_scorer_cache_hits_total", "counter",
               "Pairs served from the LRU score cache.", scorer.cache_hits)
        metric("repro_scorer_pairs_scored_total", "counter",
               "Pairs sent to the underlying model.", scorer.pairs_scored)
        metric("repro_scorer_model_calls_total", "counter",
               "Underlying model invocations.", scorer.model_calls)
        metric("repro_scorer_batches_total", "counter",
               "Micro-batches executed.", scorer.batches)
        metric("repro_scorer_coalesced_requests_total", "counter",
               "Requests coalesced into shared batches.",
               scorer.coalesced_requests)
        metric("repro_scorer_cache_entries", "gauge",
               "Pair scores currently cached.", self.scorer.cache_len())
        metric("repro_ingest_queue_depth", "gauge",
               "Submitted click-log batches not yet processed.",
               self.ingestor.pending)
        metric("repro_ingest_processed_batches_total", "counter",
               "Click-log batches successfully ingested.",
               self.ingestor.processed)
        metric("repro_ingest_failed_batches_total", "counter",
               "Click-log batches whose ingestion raised.",
               self.ingestor.failed)
        with self._taxonomy_lock:
            taxonomy = self.expander.taxonomy
            nodes, edges = taxonomy.num_nodes, taxonomy.num_edges
        metric("repro_taxonomy_nodes", "gauge",
               "Nodes in the live taxonomy.", nodes)
        metric("repro_taxonomy_edges", "gauge",
               "Edges in the live taxonomy.", edges)

        detector = self.bundle.pipeline.detector
        engine = detector.inference_engine if detector is not None else None
        if engine is not None:
            stats = engine.stats_snapshot()
            label = f'{{dtype="{stats.dtype}"}}'
            metric("repro_engine_info", "gauge",
                   "Compiled inference engine presence (dtype label).",
                   1, label)
            metric("repro_engine_batches_total", "counter",
                   "Engine scoring batches executed.", stats.batches, label)
            metric("repro_engine_pairs_scored_total", "counter",
                   "Pairs scored by the inference engine.",
                   stats.pairs_scored, label)
            metric("repro_engine_sequences_encoded_total", "counter",
                   "Template sequences encoded by the compiled BERT.",
                   stats.sequences_encoded, label)
            metric("repro_engine_concept_cache_hits_total", "counter",
                   "Single-concept embeddings served from the engine "
                   "cache.", stats.concept_cache_hits, label)
        return "\n".join(lines) + "\n"
