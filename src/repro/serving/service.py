"""The online taxonomy service facade.

:class:`TaxonomyService` composes the serving subsystem around one loaded
:class:`~repro.serving.ArtifactBundle`:

* a :class:`~repro.serving.BatchingScorer` front-ending the detector —
  either the in-process compiled engine or a
  :class:`~repro.serving.ShardedScorerPool` of worker processes,
* an :class:`~repro.core.IncrementalExpander` owning the live taxonomy,
* a :class:`~repro.serving.StreamingIngestor` applying click-log batches
  from a background worker, optionally write-ahead journaled into an
  :class:`~repro.serving.IngestJournal` and replayed on startup
  (:meth:`TaxonomyService.replay_journal`),
* zero-downtime hot reload (:meth:`TaxonomyService.reload`): a new
  bundle is loaded in the background, smoke-tested, and atomically
  swapped into the scorer (and every pool worker) while in-flight
  batches drain on the old engine,
* snapshot + compaction (:meth:`TaxonomyService.snapshot` /
  :meth:`TaxonomyService.recover`): the full recovered state —
  taxonomy, expander accumulation, attachment log, engine CSR — is
  periodically captured into an atomic
  :class:`~repro.serving.SnapshotStore` file keyed by journal sequence;
  startup loads the latest valid snapshot and replays only the journal
  tail after it, journal segments a snapshot covers are compacted away,
  and the pool folds its delta log at the same point so worker respawn
  replays only the post-snapshot tail.

Every public method takes and returns JSON-friendly values, so the HTTP
layer (:mod:`repro.serving.http`) is a thin router over this class and the
same operations are directly scriptable in-process.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass

import numpy as np

from ..api import errors as api_errors
from ..api.jobs import JobManager
from ..api.schemas import (
    ExpandRequest, IngestRequest, ScoreRequest, SuggestRequest,
    clean_candidates, clean_pairs,
)
from ..core.expansion import expand_taxonomy
from ..core.incremental import IncrementalExpander, IngestReport
from ..retrieval import CandidateRetriever
from ..taxonomy import taxonomy_from_dict, taxonomy_to_dict
from .artifacts import ArtifactBundle
from .ingest import StreamingIngestor, click_log_from_records
from .scorer import BatchingScorer

__all__ = ["ServiceConfig", "TaxonomyService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Operational knobs for one service instance."""

    max_batch: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = 4096
    max_ingest_queue: int = 16
    #: pairs sampled from the incoming bundle's taxonomy for the
    #: pre-swap smoke test during hot reload
    reload_probe_pairs: int = 8
    #: unfinished async jobs accepted before /v1/jobs/... backpressures
    max_pending_jobs: int = 32
    #: finished async jobs retained for polling before eviction
    max_retained_jobs: int = 256
    #: retrieval fan-out per suggest: retrieve ``k * factor`` nearest
    #: concepts, re-rank with the exact scorer, return the top ``k``
    suggest_retrieve_factor: int = 4
    #: recently-hot pairs re-scored through the new engine after a hot
    #: reload so the post-swap cache is warm (0 disables warming)
    reload_warm_pairs: int = 128
    #: take a snapshot once this many journal records accumulate past
    #: the last one (0 disables count-based scheduling)
    snapshot_every_records: int = 0
    #: take a snapshot once the journal's on-disk segments exceed this
    #: many bytes (0 disables size-based scheduling)
    snapshot_every_bytes: int = 0
    #: take a snapshot once this many seconds pass since the last one
    #: (0 disables time-based scheduling)
    snapshot_interval_seconds: float = 0.0


def _report_to_dict(report: IngestReport) -> dict:
    return {
        "batch_index": report.batch_index,
        "new_candidate_queries": report.new_candidate_queries,
        "attached_edges": [list(edge) for edge in report.attached_edges],
        "num_attached": report.num_attached,
        "taxonomy_edges_after": report.taxonomy_edges_after,
    }


class TaxonomyService:
    """Long-running facade over a fitted pipeline and its taxonomy.

    Parameters
    ----------
    bundle:
        The loaded artifact bundle to serve.
    config:
        Operational knobs (batching, caching, queue bounds).
    pool:
        Optional started :class:`~repro.serving.ShardedScorerPool`; when
        given, scoring fans out across its worker processes instead of
        the in-process engine.  The caller keeps ownership (stop it
        after :meth:`stop`).
    journal:
        Optional :class:`~repro.serving.IngestJournal`; every taxonomy
        mutation (``ingest`` batches, synchronous ``expand`` calls,
        ``reload`` events) is journaled write-ahead, and
        :meth:`replay_journal` rebuilds state from it on startup.  The
        caller keeps ownership (close it after :meth:`stop`).
    snapshots:
        Optional :class:`~repro.serving.SnapshotStore`; :meth:`snapshot`
        captures the full live state into it (and compacts the journal
        + pool delta log behind it), and :meth:`recover` restores from
        the latest valid snapshot before replaying the journal tail.
        Scheduling runs automatically once :meth:`start` is called and
        any ``snapshot_every_*`` / ``snapshot_interval_seconds`` knob is
        set.  The caller keeps ownership.
    """

    def __init__(self, bundle: ArtifactBundle,
                 config: ServiceConfig | None = None,
                 pool=None, journal=None, snapshots=None):
        if bundle.pipeline.detector is None:
            raise ValueError("bundle holds an unfitted pipeline")
        self.bundle = bundle
        self.config = config or ServiceConfig()
        self.pool = pool
        self.journal = journal
        backend = pool.score_pairs if pool is not None \
            else bundle.pipeline.score_pairs
        self.scorer = BatchingScorer(
            backend,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            cache_size=self.config.cache_size)
        # One lock serialises every taxonomy writer: the ingest worker and
        # synchronous /expand requests.
        self._taxonomy_lock = threading.Lock()
        self.expander = IncrementalExpander(
            self.scorer, bundle.taxonomy, bundle.vocabulary,
            bundle.pipeline.config.expansion)
        # Every attachment ever propagated to the engines, in apply
        # order — re-applied onto freshly loaded bundles during hot
        # reload so the new model serves the same live graph.
        self._attached_edges: list[tuple[str, str]] = []  # guarded-by: self._taxonomy_lock
        self.ingestor = StreamingIngestor(
            self.expander, max_queue=self.config.max_ingest_queue,
            lock=self._taxonomy_lock, journal=journal,
            on_attach=self._propagate_attachments)
        # Candidate-retrieval index: built lazily on the first suggest
        # or retrieval-backed expand (embedding every node up front
        # would slow construction for services that never retrieve).
        # _retriever_lock serialises builds; the reference itself swaps
        # atomically so readers never block on a build.
        self._retriever: CandidateRetriever | None = None  # guarded-by: self._retriever_lock
        self._retriever_lock = threading.Lock()
        self._suggest_requests = 0
        self._index_rebuilds = 0  # guarded-by: self._retriever_lock
        self._retrieval_publish_failures = 0  # guarded-by: self._retriever_lock
        self._cache_warmed_pairs = 0
        # Serialises hot reloads; scoring keeps flowing around it.
        self._reload_lock = threading.Lock()
        self._reloads = 0  # guarded-by: self._reload_lock
        # Snapshot + compaction state.  _snapshot_lock serialises
        # capture/compaction; the scheduler thread polls the cheap
        # threshold checks and triggers snapshots off the request path.
        self.snapshots = snapshots
        self._snapshot_lock = threading.Lock()
        self._snapshots_taken = 0  # guarded-by: self._snapshot_lock
        self._last_snapshot_seq = -1  # guarded-by: self._snapshot_lock
        self._last_snapshot_bytes = 0  # guarded-by: self._snapshot_lock
        self._last_snapshot_at: float | None = None  # guarded-by: self._snapshot_lock
        self._replay_tail_records = 0
        self._recovered_snapshot: str | None = None
        self._snapshot_failures = 0  # guarded-by: self._snapshot_lock
        self._snapshot_stop = threading.Event()
        self._snapshot_thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        self._started = False
        # Async-job executor behind POST /v1/jobs/... — one ordered
        # worker, bounded retention (see repro.api.jobs).
        self.jobs = JobManager(
            max_pending=self.config.max_pending_jobs,
            max_retained=self.config.max_retained_jobs)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "TaxonomyService":
        """Start the scoring, ingestion and job workers; idempotent.

        Also starts the snapshot scheduler when a snapshot store is
        attached and any scheduling knob is set.
        """
        self.scorer.start()
        self.ingestor.start()
        self.jobs.start()
        config = self.config
        scheduled = (config.snapshot_every_records
                     or config.snapshot_every_bytes
                     or config.snapshot_interval_seconds)
        if (self.snapshots is not None and scheduled
                and self._snapshot_thread is None):
            self._snapshot_stop.clear()
            self._snapshot_thread = threading.Thread(
                target=self._snapshot_loop, name="repro-snapshot",
                daemon=True)
            self._snapshot_thread.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Drain and stop every worker; idempotent.

        Flushes (but does not close) an attached journal, and leaves an
        attached pool running — both belong to whoever created them.
        """
        self._started = False
        self._snapshot_stop.set()
        if self._snapshot_thread is not None:
            self._snapshot_thread.join(timeout=10.0)
            self._snapshot_thread = None
        self.jobs.stop()
        self.ingestor.stop()
        self.scorer.stop()
        if self.journal is not None:
            self.journal.flush()

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run (and :meth:`stop` has not)."""
        return self._started

    def __enter__(self) -> "TaxonomyService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # operations (JSON-friendly in, JSON-friendly out)
    # ------------------------------------------------------------------
    def score(self, pairs) -> dict:
        """Hyponymy probabilities for explicit (parent, child) pairs.

        Accepts a raw ``[[parent, child], ...]`` list or an
        already-validated :class:`~repro.api.ScoreRequest`; raw input is
        cleaned through the same schema validator the HTTP boundary
        uses (violations raise :class:`~repro.api.ApiError`).
        """
        cleaned = (pairs.pairs if isinstance(pairs, ScoreRequest)
                   else clean_pairs(pairs))
        probs = self.scorer.score_pairs(list(cleaned))
        return {
            "pairs": [list(pair) for pair in cleaned],
            "probabilities": [float(p) for p in probs],
        }

    def score_chunks(self, pairs, chunk_size: int = 64):
        """Yield :meth:`score`-shaped results per micro-batch of pairs.

        Input validation matches :meth:`score` exactly (same cleaner,
        same :class:`~repro.api.ApiError` on violations, raised before
        the first chunk is yielded).  Each yielded dict covers the next
        ``chunk_size`` pairs in request order and is scored through the
        same batching scorer — concatenating the chunks reproduces the
        unchunked response element-for-element.  Streaming transports
        flush one NDJSON line per chunk so large batches produce
        incremental output instead of one buffered body.
        """
        cleaned = list(pairs.pairs if isinstance(pairs, ScoreRequest)
                       else clean_pairs(pairs))
        chunk_size = max(1, int(chunk_size))
        for start in range(0, len(cleaned), chunk_size):
            chunk = cleaned[start:start + chunk_size]
            probs = self.scorer.score_pairs(list(chunk))
            yield {
                "pairs": [list(pair) for pair in chunk],
                "probabilities": [float(p) for p in probs],
            }

    def expand_chunks(self, candidates=None, *, queries=None,
                      top_k: int = 20, chunk_size: int = 8):
        """Yield :meth:`expand`-shaped results per micro-batch of queries.

        Argument handling matches :meth:`expand` (exactly one of
        ``candidates``/``queries``; retrieval-backed maps are resolved
        up front).  The candidate map is then split into sub-maps of
        ``chunk_size`` query concepts and each sub-map runs through the
        normal journaled expansion — byte-identical on the journal to a
        client issuing one ``/v1/expand`` call per sub-map, so replay
        determinism is preserved.  Later chunks see the taxonomy edges
        attached by earlier ones, exactly as sequential calls would.
        """
        if isinstance(candidates, ExpandRequest):
            request = candidates
            candidates = request.candidates
            queries = request.queries
            top_k = request.top_k
        elif candidates is not None:
            candidates = clean_candidates(candidates)
        if (candidates is None) == (queries is None):
            raise api_errors.invalid_request(
                "exactly one of 'candidates' or 'queries' must be "
                "provided", field="candidates")
        if queries is not None:
            candidates = self._retrieved_candidates(
                [str(query) for query in queries], top_k)
        keys = list(candidates)
        chunk_size = max(1, int(chunk_size))
        for start in range(0, len(keys), chunk_size):
            sub_map = {key: candidates[key]
                       for key in keys[start:start + chunk_size]}
            result = self._expand_cleaned(sub_map, journal_write=True)
            yield {
                "attached_edges": [list(edge)
                                   for edge in result.attached_edges],
                "num_attached": result.num_attached,
                "scored_candidates": len(result.scored_pairs),
                "taxonomy_edges": result.taxonomy.num_edges,
            }

    def suggest(self, query, k: int = 10) -> dict:
        """Ranked attachment candidates for one query concept.

        The retrieve-then-rank split: the candidate index returns the
        ``k * suggest_retrieve_factor`` nearest concepts by embedding
        similarity (sub-linear in partitioned mode), then the exact
        pair scorer re-ranks them as ``(candidate, query)`` hyponymy
        probabilities — "how likely is this candidate to be the
        query's parent?".  Accepts a raw query string (plus ``k``) or a
        validated :class:`~repro.api.SuggestRequest`.
        """
        request = (query if isinstance(query, SuggestRequest)
                   else SuggestRequest.parse({"query": str(query),
                                              "k": int(k)}))
        query, k = request.query, request.k
        retriever = self._get_retriever()
        self._suggest_requests += 1
        retrieve_k = max(k, k * max(1, self.config.suggest_retrieve_factor))
        neighbors = retriever.neighbors(query, retrieve_k)
        pairs = [(concept, query) for concept, _ in neighbors]
        probs = self.scorer.score_pairs(pairs) if pairs else []
        with self._taxonomy_lock:
            taxonomy = self.expander.taxonomy
            parents = (set(taxonomy.parents(query))
                       if query in taxonomy.nodes else set())
        ranked = sorted(
            ((float(prob), concept, float(similarity))
             for (concept, similarity), prob in zip(neighbors, probs)),
            key=lambda item: (-item[0], item[1]))
        candidates = [
            {"concept": concept,
             "probability": prob,
             "similarity": similarity,
             "already_parent": concept in parents}
            for prob, concept, similarity in ranked[:k]]
        return {
            "query": query,
            "k": k,
            "candidates": candidates,
            "retrieval": {
                "mode": retriever.index.mode,
                "retrieved": len(neighbors),
                "reranked": len(pairs),
                "index_size": len(retriever),
                "synced_epoch": retriever.synced_epoch,
            },
        }

    def expand(self, candidates=None, *, queries=None,
               top_k: int = 20) -> dict:
        """Synchronously expand the live taxonomy.

        Exactly one of ``candidates`` (query concept -> candidate item
        concepts, raw dict or inside a validated
        :class:`~repro.api.ExpandRequest`) or ``queries`` (seed
        concepts whose candidates are retrieved from the embedding
        index, ``top_k`` per seed) must be provided.  The retrieved
        map is resolved *before* journaling, so a journaled
        retrieval-backed expand replays deterministically as a plain
        candidate map.  Accepted edges are committed to the service
        taxonomy (and journaled write-ahead when a journal is
        attached).
        """
        if isinstance(candidates, ExpandRequest):
            request = candidates
            candidates = request.candidates
            queries = request.queries
            top_k = request.top_k
        elif candidates is not None:
            candidates = clean_candidates(candidates)
        if (candidates is None) == (queries is None):
            raise api_errors.invalid_request(
                "exactly one of 'candidates' or 'queries' must be "
                "provided", field="candidates")
        if queries is not None:
            candidates = self._retrieved_candidates(
                [str(query) for query in queries], top_k)
        result = self._expand_cleaned(candidates, journal_write=True)
        return {
            "attached_edges": [list(edge)
                               for edge in result.attached_edges],
            "num_attached": result.num_attached,
            "scored_candidates": len(result.scored_pairs),
            "taxonomy_edges": result.taxonomy.num_edges,
        }

    def _expand_cleaned(self, cleaned: dict, journal_write: bool):
        """Expand under the taxonomy lock; journal first when asked."""
        with self._taxonomy_lock:
            if journal_write and self.journal is not None:
                self.journal.append("expand", {"candidates": cleaned})
            result = expand_taxonomy(
                self.scorer, self.expander.taxonomy, cleaned,
                self.expander.config)
            self.expander.taxonomy = result.taxonomy
            if result.attached_edges:
                self._propagate_attachments(result.attached_edges)
        return result

    def _get_retriever(self) -> CandidateRetriever:
        """The candidate retriever, built lazily on first use.

        The build embeds every live taxonomy node, so it runs outside
        the taxonomy lock (concurrent ingest keeps flowing); nodes
        attached *during* the build are topped up right after, and
        every later attachment extends the published index via
        :meth:`_propagate_attachments`.
        """
        retriever = self._retriever
        if retriever is not None:
            return retriever
        with self._retriever_lock:
            if self._retriever is None:
                with self._taxonomy_lock:
                    snapshot = sorted(self.expander.taxonomy.nodes)
                built = self._build_retriever(self.bundle, snapshot)
                # nodes attached while we were embedding
                with self._taxonomy_lock:
                    missed = sorted(self.expander.taxonomy.nodes)
                built.extend(missed)
                self._retriever = built
                self._index_rebuilds += 1
                self._publish_retrieval_slab(built)
            return self._retriever

    def _publish_retrieval_slab(self, retriever: CandidateRetriever) -> None:
        """Mirror the freshly built index's embedding slab into shared
        memory (``"retrieval"`` label of the pool's segment store).

        Best-effort: the in-process index keeps serving either way; the
        shared copy makes the slab attachable zero-copy
        (:meth:`~repro.retrieval.CandidateIndex.from_slab`) and counts
        toward ``repro_shm_segment_bytes``.  No-op without a pool or
        with sharing disabled.
        """
        # holds: self._retriever_lock
        pool = self.pool
        if pool is None or not hasattr(pool, "publish_shared"):
            return
        try:
            meta, arrays = retriever.index.export_slab()
            pool.publish_shared(arrays, meta=meta, label="retrieval")
        except Exception as error:
            self._retrieval_publish_failures += 1
            warnings.warn(
                f"retrieval slab publish failed (serving continues "
                f"in-process): {error!r}", RuntimeWarning, stacklevel=1)

    def _build_retriever(self, bundle: ArtifactBundle,
                         concepts) -> CandidateRetriever:
        """Embed ``concepts`` through ``bundle`` into a fresh retriever."""
        detector = bundle.pipeline.detector
        engine = detector.inference_engine if detector is not None else None
        epoch = getattr(engine, "structural_epoch", None)
        return CandidateRetriever(
            bundle.pipeline.concept_embedding_matrix, concepts,
            engine=engine, epoch=epoch)

    def _retrieved_candidates(self, queries: list, top_k: int) -> dict:
        """Resolve seed queries to retrieved candidate maps.

        Each seed is a *new item to place*: the index retrieves its
        top-``top_k`` nearest taxonomy nodes, and the returned map keys
        those nodes to the seeds they might parent — so the expansion
        scores ``top_k`` pairs per seed instead of pairing every seed
        with every taxonomy node (the O(n·pairs) enumeration the index
        exists to kill).
        """
        retriever = self._get_retriever()
        resolved: dict = {}
        for query in dict.fromkeys(queries):
            for concept, _score in retriever.neighbors(query, top_k):
                resolved.setdefault(concept, []).append(query)
        return resolved

    def _propagate_attachments(self, edges: list) -> None:
        """Push freshly attached edges into every compiled engine.

        Runs under the taxonomy lock (ingest-worker callback and
        synchronous expand both hold it), so delta order equals apply
        order equals journal order.  The in-process engine recomputes
        its dirty k-hop frontier, a sharded pool broadcasts the delta to
        every worker, and the score cache evicts only the pairs whose
        structural features actually moved.  Failures degrade loudly
        (warnings + stale-but-consistent features) rather than failing
        the taxonomy mutation, which has already committed.
        """
        # holds: self._taxonomy_lock
        edges = [(str(parent), str(child)) for parent, child in edges]
        if not edges:
            return
        self._attached_edges.extend(edges)
        dirty: set[str] = set()
        detector = self.bundle.pipeline.detector
        engine = detector.inference_engine if detector is not None else None
        if engine is not None:
            try:
                summary = engine.apply_attachments(edges)
                dirty.update(summary.get("dirty_concepts", ()))
            except Exception as error:
                warnings.warn(
                    f"structural delta failed on the in-process engine: "
                    f"{error!r}", stacklevel=2)
        if self.pool is not None:
            try:
                results = self.pool.broadcast_attachments(edges)
                failed = [r for r in results if not r.get("ok")]
                if failed:
                    warnings.warn(
                        f"structural delta failed on {len(failed)} pool "
                        f"worker(s): {failed} (respawn replays the "
                        f"delta log)", stacklevel=2)
                for result in results:
                    dirty.update(result.get("dirty_concepts", ()))
            except Exception as error:
                warnings.warn(
                    f"structural delta broadcast failed: {error!r}",
                    stacklevel=2)
        if not dirty:
            # No engine reported a frontier (autograd mode, delta
            # failure): fall back to evicting the endpoints themselves.
            dirty = {concept for edge in edges for concept in edge}
        self.scorer.invalidate_pairs_touching(dirty)
        retriever = self._retriever
        if retriever is not None:
            # Epoch-fenced freshness: just-attached concepts become
            # retrievable without a rebuild.  Degrades loudly like the
            # engine delta above — the taxonomy mutation has committed.
            try:
                epoch = (engine.structural_epoch
                         if engine is not None else None)
                retriever.extend(
                    sorted({concept for edge in edges
                            for concept in edge}), epoch=epoch)
            except Exception as error:
                warnings.warn(
                    f"candidate-index refresh failed: {error!r} "
                    f"(retrieval may lag until the next rebuild)",
                    stacklevel=2)

    def ingest(self, records, provenance: dict | None = None,
               sync: bool = False) -> dict:
        """Queue one click-log batch; ``sync=True`` waits for the report.

        ``records`` is a raw ``[[query, item(, count)], ...]`` list or a
        validated :class:`~repro.api.IngestRequest` (which also carries
        ``provenance`` and ``sync``).
        """
        if isinstance(records, IngestRequest):
            provenance = records.provenance
            sync = bool(records.sync)
            records = [list(record) for record in records.records]
        batch = click_log_from_records(records, provenance)
        ticket = self.ingestor.submit(batch, block=False)
        if ticket is None:
            return {"accepted": False, "reason": "ingest queue full",
                    "pending_batches": self.ingestor.pending}
        if sync:
            # The ticket resolves to this batch's own report (or re-raises
            # this batch's own failure) — never another caller's outcome.
            report = ticket.wait(timeout=60.0)
            if self.journal is not None:
                # A synchronous ack promises durability: force the fsync
                # regardless of where the batching window stands.
                self.journal.flush()
            return {"accepted": True, "report": _report_to_dict(report)}
        return {"accepted": True,
                "pending_batches": self.ingestor.pending}

    # ------------------------------------------------------------------
    # durability and hot reload
    # ------------------------------------------------------------------
    def replay_journal(self, after_seq: int = -1) -> dict:
        """Rebuild incremental-expansion state from the attached journal.

        Call once on startup, *before* :meth:`start`: every journaled
        mutation is re-applied in order — ``ingest`` batches through the
        expander, ``expand`` candidate maps through the expansion
        routine, ``reload`` events by re-loading the recorded bundle
        (best-effort: a vanished directory warns and keeps the current
        model).  Scores are recomputed by the (deterministic) engine, so
        replay converges on exactly the pre-crash attachments.  Nothing
        is re-journaled during replay.

        ``after_seq`` is the snapshot hook used by :meth:`recover`: only
        records with ``seq > after_seq`` are applied, and segments fully
        covered by the snapshot are never opened.
        """
        if self.journal is None:
            raise RuntimeError("service has no journal attached")
        counts = {"ingest": 0, "expand": 0, "reload": 0, "skipped": 0}
        replayed = 0
        for record in self.journal.replay(after_seq=after_seq):
            replayed += 1
            try:
                if record.type == "ingest":
                    batch = click_log_from_records(
                        record.data.get("records", []),
                        record.data.get("provenance"))
                    with self._taxonomy_lock:
                        report = self.expander.ingest(batch)
                        if report.attached_edges:
                            self._propagate_attachments(
                                report.attached_edges)
                elif record.type == "expand":
                    self._expand_cleaned(
                        record.data.get("candidates", {}),
                        journal_write=False)
                elif record.type == "reload":
                    self._swap_bundle(record.data["directory"])
                else:
                    counts["skipped"] += 1
                    warnings.warn(
                        f"unknown journal record type {record.type!r} "
                        f"(seq={record.seq}); skipping", stacklevel=2)
                    continue
                counts[record.type] += 1
            except Exception as error:
                counts["skipped"] += 1
                warnings.warn(
                    f"journal record seq={record.seq} ({record.type}) "
                    f"failed to replay: {error!r}; continuing",
                    stacklevel=2)
        counts["taxonomy_edges"] = self.expander.taxonomy.num_edges
        self._replay_tail_records = replayed
        return counts

    def snapshot(self, *, compact: bool = True) -> dict:
        """Capture the full live state and compact history behind it.

        The capture runs under the reload lock then the taxonomy lock
        (the same order every other writer uses), so the recorded state
        and its covering journal sequence are one consistent cut.  The
        snapshot holds everything :meth:`recover` needs *without*
        re-scoring a single candidate: the live taxonomy, the expander's
        accumulated click log + dedup set, the ordered attachment log,
        the engine's structural CSR + epoch, and the serving bundle's
        directory.

        With ``compact=True`` (the default) the write is followed by
        journal segment compaction up to the covered sequence and, when
        a pool is attached, a delta-log fold
        (:meth:`ShardedScorerPool.compact_deltas
        <repro.serving.ShardedScorerPool.compact_deltas>`) that
        republishes the post-snapshot shared-memory generation so
        respawned workers replay only the post-snapshot tail.
        """
        if self.snapshots is None:
            raise RuntimeError("service has no snapshot store attached")
        with self._snapshot_lock:
            with self._reload_lock:
                seq, state = self._capture_state()
            info = self.snapshots.write(seq, state)
            self._snapshots_taken += 1
            self._last_snapshot_seq = seq
            self._last_snapshot_bytes = info.nbytes
            self._last_snapshot_at = time.monotonic()
            compacted: list[str] = []
            if compact and self.journal is not None:
                compacted = self.journal.compact(seq)["removed"]
            pool_outcome = None
            if (compact and self.pool is not None
                    and hasattr(self.pool, "compact_deltas")):
                detector = self.bundle.pipeline.detector
                engine = (detector.inference_engine
                          if detector is not None else None)
                pool_outcome = self.pool.compact_deltas(engine)
            return {
                "snapshot": os.path.basename(info.path),
                "seq": seq,
                "bytes": info.nbytes,
                "compacted_segments": len(compacted),
                "pool": pool_outcome,
            }

    def recover(self) -> dict:
        """Snapshot-aware startup recovery.

        Call once *before* :meth:`start`: loads the latest valid
        snapshot (corrupt or torn snapshots are skipped with a warning,
        falling back to older ones), restores the captured state
        directly — no candidate is re-scored — and then replays only the
        journal records past the snapshot's covered sequence.

        Fails loudly (``RuntimeError``) when the surviving journal tail
        does not reach back to the snapshot being restored — e.g. the
        newest snapshot was corrupted *and* compaction already deleted
        the segments the older snapshot would need.  That gap is real
        data loss and must not be papered over silently.
        """
        summary: dict = {"snapshot": None, "snapshot_seq": -1,
                         "restored_edges": 0}
        after_seq = -1
        if self.snapshots is not None:
            loaded = self.snapshots.load_latest()
            if loaded is not None:
                state, info = loaded
                summary["restored_edges"] = self._restore_state(state)
                after_seq = info.seq
                summary["snapshot"] = os.path.basename(info.path)
                summary["snapshot_seq"] = info.seq
                self._recovered_snapshot = summary["snapshot"]
                with self._snapshot_lock:
                    self._last_snapshot_seq = info.seq
                    self._last_snapshot_bytes = info.nbytes
                    self._last_snapshot_at = time.monotonic()
        if self.journal is not None:
            compacted_through = self.journal.compacted_through
            if compacted_through > after_seq:
                raise RuntimeError(
                    f"journal records through seq {compacted_through} "
                    f"were compacted away but the newest loadable "
                    f"snapshot covers only seq {after_seq}; the tail in "
                    f"between is lost — restore a snapshot or journal "
                    f"backup before serving")
            first = self.journal.first_seq_on_disk()
            if first is not None and first > after_seq + 1:
                raise RuntimeError(
                    f"journal tail starts at seq {first} but the newest "
                    f"loadable snapshot covers only seq {after_seq}; "
                    f"records {after_seq + 1}..{first - 1} are missing — "
                    f"restore a snapshot or journal backup before "
                    f"serving")
            summary.update(self.replay_journal(after_seq=after_seq))
        return summary

    def maybe_snapshot(self) -> dict | None:
        """Take a snapshot if any scheduling threshold has tripped.

        Cheap when nothing is due (integer compares); returns the
        :meth:`snapshot` summary when one ran, else ``None``.  A
        snapshot failure is counted and warned about, never raised —
        the scheduler must not take serving down.
        """
        if self.snapshots is None:
            return None
        config = self.config
        due = False
        if self.journal is not None:
            if config.snapshot_every_records:
                pending = (self.journal.next_seq - 1
                           - self._last_snapshot_seq)
                due = pending >= config.snapshot_every_records
            if not due and config.snapshot_every_bytes:
                due = (self.journal.size_bytes()
                       >= config.snapshot_every_bytes)
        if not due and config.snapshot_interval_seconds:
            last = self._last_snapshot_at
            reference = last if last is not None else self._started_at
            due = (time.monotonic() - reference
                   >= config.snapshot_interval_seconds)
        if not due:
            return None
        try:
            return self.snapshot()
        except Exception as error:
            with self._snapshot_lock:
                self._snapshot_failures += 1
            warnings.warn(f"scheduled snapshot failed: {error!r}",
                          stacklevel=2)
            return None

    def _snapshot_loop(self) -> None:
        """Scheduler thread body: poll :meth:`maybe_snapshot` until
        :meth:`stop`."""
        while not self._snapshot_stop.wait(0.2):
            self.maybe_snapshot()

    def _capture_state(self) -> tuple[int, dict]:
        """One consistent ``(covered_seq, state)`` cut.

        Caller holds the reload lock; the taxonomy lock is taken here.
        Every journal writer appends under one of those two locks, so
        ``journal.next_seq - 1`` is exactly the last sequence the
        captured state includes.
        """
        detector = self.bundle.pipeline.detector
        engine = detector.inference_engine if detector is not None else None
        with self._taxonomy_lock:
            seq = (self.journal.next_seq - 1
                   if self.journal is not None else -1)
            state = {
                "bundle_directory": self.bundle.directory,
                "taxonomy": taxonomy_to_dict(self.expander.taxonomy),
                "expander": self.expander.export_state(),
                "attached_edges": [list(edge)
                                   for edge in self._attached_edges],
                "engine": (engine.structural_csr()
                           if engine is not None else None),
            }
        return seq, state

    def _restore_state(self, state: dict) -> int:
        """Apply one captured state dict; returns attachments restored.

        The restore path is what makes snapshot recovery fast: the
        taxonomy and expander accumulation come back verbatim (zero
        re-scoring), and the attachment log is applied to the engine as
        a single idempotent batch — which converges bit-for-bit with the
        original batch sequence.  The recorded structural epoch is then
        pinned (one batch would otherwise leave the fence lower than the
        uninterrupted run's) and the recorded CSR is verified against
        the rebuilt graph, failing loudly on any mismatch.
        """
        directory = state.get("bundle_directory")
        if directory and directory != self.bundle.directory:
            try:
                self._swap_bundle(directory)
            except Exception as error:
                warnings.warn(
                    f"snapshot-recorded bundle {directory!r} failed to "
                    f"load: {error!r}; recovering onto the current "
                    f"bundle", stacklevel=2)
        taxonomy = taxonomy_from_dict(state["taxonomy"])
        edges = [(str(parent), str(child))
                 for parent, child in state.get("attached_edges", [])]
        with self._taxonomy_lock:
            self.expander.taxonomy = taxonomy
            self.expander.restore_state(state.get("expander") or {})
            self._attached_edges = []
            if edges:
                self._propagate_attachments(edges)
            detector = self.bundle.pipeline.detector
            engine = (detector.inference_engine
                      if detector is not None else None)
            recorded = state.get("engine")
            if engine is not None and recorded:
                engine.restore_structural_epoch(
                    int(recorded.get("epoch", 0)))
                self._verify_restored_graph(engine, recorded)
        return len(edges)

    @staticmethod
    def _verify_restored_graph(engine, recorded: dict) -> None:
        """Exact-parity check: rebuilt engine graph vs the recorded CSR.

        A CRC-valid snapshot whose replay diverges means the serving
        bundle does not match the one the snapshot was taken against
        (or a determinism bug) — serving silently-wrong structural
        scores is worse than refusing to start.
        """
        live = engine.structural_csr()
        if live is None:
            return
        for key in ("names", "indptr", "cols", "degrees"):
            if list(live[key]) != list(recorded.get(key, [])):
                raise RuntimeError(
                    f"snapshot restore parity failure: engine graph "
                    f"{key!r} diverges from the recorded CSR — the "
                    f"snapshot does not match this bundle")

    def reload(self, directory: str | None = None, *,
               wait: bool = True) -> dict:
        """Hot-swap a new artifact bundle with zero dropped requests.

        Loads the bundle at ``directory`` (default: the directory the
        current bundle came from, so operators can refresh it in place),
        smoke-tests it on probe pairs sampled from its taxonomy, rolls
        it out to every pool worker (where the reload message queues
        behind in-flight scoring), then atomically swaps the scorer
        backend and clears the score cache.  The outgoing engine keeps
        serving batches that already hold it and is drained before the
        call returns.  The live taxonomy and accumulated ingest state
        are *preserved* — a reload updates the model, not the data.

        Reloads are serialised; with ``wait=False`` a reload that is
        already in flight raises :func:`~repro.api.errors.not_ready`
        (HTTP 503) instead of queueing behind it — the synchronous
        ``/v1/admin/reload`` route uses this so callers can tell
        "busy swapping" apart from a failed swap.

        Raises if the new bundle fails to load or its smoke test fails;
        the old bundle keeps serving in that case (pool workers that
        already swapped are rolled back to the previous directory, so
        shards never serve mixed models).
        """
        directory = directory or self.bundle.directory
        if not directory:
            raise ValueError("no bundle directory to reload from")
        if not self._reload_lock.acquire(blocking=wait):
            raise api_errors.not_ready(
                "a reload is already in flight; retry shortly",
                retry_after=2.0)
        try:
            outcome = self._swap_bundle(directory)
            if self.journal is not None:
                self.journal.append("reload", {"directory": directory})
                self.journal.flush()
            # holds: self._reload_lock (explicit acquire above)
            self._reloads += 1
        finally:
            self._reload_lock.release()
        return outcome

    def _swap_bundle(self, directory: str) -> dict:
        """Load + smoke-test + swap one bundle (no journaling here)."""
        new_bundle = ArtifactBundle.load(directory)
        # A freshly loaded bundle starts from on-disk structural state;
        # re-apply the live attachment log so the incoming engine serves
        # the same grown graph the outgoing one did (the pool does the
        # same for its workers inside pool.reload).  Must happen before
        # the smoke test / pool parity check so both sides agree.
        with self._taxonomy_lock:
            seeded = len(self._attached_edges)
            attachments = list(dict.fromkeys(self._attached_edges))
        new_detector = new_bundle.pipeline.detector
        new_engine = (new_detector.inference_engine
                      if new_detector is not None else None)
        if attachments and new_engine is not None:
            new_engine.apply_attachments(attachments)
        probes = self._probe_pairs(new_bundle)
        probs = np.asarray(new_bundle.score_pairs(probes))
        if probes and not (np.all(np.isfinite(probs))
                           and np.all((probs >= 0.0) & (probs <= 1.0))):
            raise RuntimeError(
                f"reload smoke test failed: non-probability scores from "
                f"{directory!r}")
        workers = 0
        if self.pool is not None:
            previous_dir = self.pool.bundle_dir
            results = self.pool.reload(directory)
            failed = [r for r in results if not r["ok"]]
            if failed:
                # Workers that did swap must not keep the new model while
                # the rest serve the old one (mixed-model shards would
                # break the parity contract) — roll everyone back.
                self.pool.reload(previous_dir)
                raise RuntimeError(
                    f"pool reload failed on {len(failed)} worker(s), "
                    f"rolled back to {previous_dir!r}: {failed}")
            workers = len(results)
            if probes:
                pooled = np.asarray(self.pool.score_pairs(probes))
                engine = new_bundle.pipeline.detector.inference_engine
                tolerance = (engine.score_tolerance
                             if engine is not None else 1e-4)
                delta = float(np.max(np.abs(pooled - probs)))
                if delta > tolerance:
                    self.pool.reload(previous_dir)
                    raise RuntimeError(
                        f"reload parity check failed: pool vs "
                        f"single-process max delta {delta:.2e} exceeds "
                        f"{tolerance:.0e}; rolled back to "
                        f"{previous_dir!r}")
        old_bundle = self.bundle
        backend = (self.pool.score_pairs if self.pool is not None
                   else new_bundle.pipeline.score_pairs)
        # Rebuild the candidate index against the incoming model's
        # embedding space (only if one was ever built — retrieval stays
        # lazy), and capture the hottest cached pairs before the swap
        # clears them: they are replayed through the new engine below.
        warm_pairs = self.scorer.recent_pairs(self.config.reload_warm_pairs)
        new_retriever = None
        if self._retriever is not None:
            with self._taxonomy_lock:
                snapshot = sorted(self.expander.taxonomy.nodes)
            new_retriever = self._build_retriever(new_bundle, snapshot)
        # The swap happens under the taxonomy lock so it cannot
        # interleave with _propagate_attachments: deltas committed
        # during the load/smoke-test window (they went to the *old*
        # engine) are re-applied here as the tail beyond the seed
        # snapshot, and deltas after the lock releases route to the new
        # bundle.  apply_attachments is idempotent, so overlap is safe.
        with self._retriever_lock, self._taxonomy_lock:
            # retriever lock taken first, matching _get_retriever's
            # order, so the swap cannot deadlock with a lazy build
            tail = self._attached_edges[seeded:]
            if tail and new_engine is not None:
                new_engine.apply_attachments(tail)
            self.scorer.swap_scorer(backend, clear_cache=True)
            self.bundle = new_bundle
            if new_retriever is not None:
                # Atomic alongside the scorer: suggest never mixes old
                # embeddings with new probabilities.  Top up nodes
                # attached during the build window (idempotent).
                new_retriever.extend(
                    sorted(self.expander.taxonomy.nodes))
                self._retriever = new_retriever
                self._index_rebuilds += 1
        old_detector = old_bundle.pipeline.detector
        old_engine = (old_detector.inference_engine
                      if old_detector is not None else None)
        drained = True
        if old_engine is not None and old_engine is not \
                new_bundle.pipeline.detector.inference_engine:
            drained = old_engine.drain(timeout=30.0)
        if warm_pairs:
            # Cache warming: the pairs hot before the swap are exactly
            # the ones the next requests will ask for — re-score them
            # through the new engine so post-reload traffic starts on a
            # warm cache instead of a latency cliff.
            self.scorer.score_pairs(warm_pairs)
            self._cache_warmed_pairs += len(warm_pairs)
        return {
            "reloaded": True,
            "directory": directory,
            "probe_pairs": len(probes),
            "pool_workers": workers,
            "old_engine_drained": drained,
            "cache_warmed_pairs": len(warm_pairs),
        }

    def _probe_pairs(self, bundle: ArtifactBundle) -> list:
        """Smoke-test pairs: a deterministic sample of taxonomy edges."""
        edges = sorted(bundle.taxonomy.edges())
        return [tuple(edge)
                for edge in edges[:self.config.reload_probe_pairs]]

    def taxonomy_state(self, include_edges: bool = True) -> dict:
        """The live taxonomy plus accumulated-traffic statistics."""
        with self._taxonomy_lock:
            taxonomy = self.expander.taxonomy
            payload = taxonomy_to_dict(taxonomy) if include_edges else {}
            accumulated = self.expander.accumulated_log
            stats = {
                "nodes": taxonomy.num_nodes,
                "edges": taxonomy.num_edges,
                "depth": taxonomy.depth(),
                "ingested_batches": self.expander.num_batches,
                "accumulated_click_records": accumulated.num_records,
                "accumulated_click_pairs": accumulated.num_pairs,
                "accumulated_queries": len(accumulated.queries()),
            }
        payload["stats"] = stats
        # Bounded recent-history window, not the full ingestion log —
        # exact totals live in stats (memory stays flat under load).
        payload["reports"] = [_report_to_dict(r)
                              for r in self.ingestor.reports]
        return payload

    def health(self) -> dict:
        """Liveness snapshot for ``/healthz``."""
        errors = self.ingestor.errors
        workers = {
            "scorer": self.scorer.running,
            "ingestor": self.ingestor.running,
        }
        if self.pool is not None:
            workers["pool"] = self.pool.running
            workers["pool_stats"] = self.pool.stats_snapshot().as_dict()
        payload = {
            "status": "degraded" if errors else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "reloads": self._reloads,
            "workers": workers,
            "ingest": {
                "pending_batches": self.ingestor.pending,
                "processed_batches": self.ingestor.processed,
                "failed_batches": self.ingestor.failed,
                "recent_errors": [repr(e) for e in errors],
            },
            "scorer": self.scorer.stats_snapshot().as_dict(),
            "jobs": self.jobs.counts(),
            "taxonomy_edges": self.expander.taxonomy.num_edges,
        }
        if self.journal is not None:
            payload["journal"] = self.journal.stats_snapshot().as_dict()
        if self.snapshots is not None:
            last_at = self._last_snapshot_at
            payload["snapshots"] = {
                "taken": self._snapshots_taken,
                "failures": self._snapshot_failures,
                "last_seq": self._last_snapshot_seq,
                "last_bytes": self._last_snapshot_bytes,
                "age_seconds": (round(time.monotonic() - last_at, 3)
                                if last_at is not None else None),
                "recovered_from": self._recovered_snapshot,
                "replay_tail_records": self._replay_tail_records,
                "store": self.snapshots.stats.as_dict(),
            }
        retriever = self._retriever
        if retriever is not None:
            stats = retriever.stats()
            stats["suggest_requests"] = self._suggest_requests
            stats["index_rebuilds"] = self._index_rebuilds
            payload["retrieval"] = stats
        return payload

    def metrics_text(self) -> str:
        """Prometheus text-format exposition for ``/metrics``.

        Covers scorer traffic (an atomic :class:`ScorerStats` snapshot),
        ingest queue depth and totals, live-taxonomy gauges, hot-reload
        and journal activity, per-worker pool counters when a
        :class:`~repro.serving.ShardedScorerPool` backs scoring, and the
        inference engine's dtype/batch counters when the fast path is
        compiled.
        """
        scorer = self.scorer.stats_snapshot()
        lines: list[str] = []

        def metric(name: str, kind: str, help_text: str, value,
                   labels: str = "") -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name}{labels} {value}")

        metric("repro_uptime_seconds", "gauge",
               "Seconds since the service was constructed.",
               round(time.monotonic() - self._started_at, 3))
        metric("repro_scorer_requests_total", "counter",
               "score_pairs requests received.", scorer.requests)
        metric("repro_scorer_pairs_requested_total", "counter",
               "Pairs requested across all requests.",
               scorer.pairs_requested)
        metric("repro_scorer_cache_hits_total", "counter",
               "Pairs served from the LRU score cache.", scorer.cache_hits)
        metric("repro_scorer_pairs_scored_total", "counter",
               "Pairs sent to the underlying model.", scorer.pairs_scored)
        metric("repro_scorer_model_calls_total", "counter",
               "Underlying model invocations.", scorer.model_calls)
        metric("repro_scorer_batches_total", "counter",
               "Micro-batches executed.", scorer.batches)
        metric("repro_scorer_coalesced_requests_total", "counter",
               "Requests coalesced into shared batches.",
               scorer.coalesced_requests)
        metric("repro_scorer_worker_failures_total", "counter",
               "Scorer worker-thread deaths (queued requests were failed "
               "over, not dropped).", scorer.worker_failures)
        metric("repro_scorer_cache_entries", "gauge",
               "Pair scores currently cached.", self.scorer.cache_len())
        metric("repro_reloads_total", "counter",
               "Successful artifact-bundle hot reloads.", self._reloads)
        metric("repro_cache_warmed_pairs_total", "counter",
               "Recently-hot pairs re-scored through the new engine "
               "after hot reloads.", self._cache_warmed_pairs)
        metric("repro_suggest_requests_total", "counter",
               "Suggest (retrieve-then-rank) requests served.",
               self._suggest_requests)
        retriever = self._retriever
        if retriever is not None:
            retrieval = retriever.stats()
            mode_label = f'{{mode="{retrieval["mode"]}"}}'
            metric("repro_retrieval_index_size", "gauge",
                   "Concepts in the candidate-retrieval index.",
                   retrieval["size"], mode_label)
            metric("repro_retrieval_index_rebuilds_total", "counter",
                   "Full candidate-index (re)builds (lazy build + hot "
                   "reloads).", self._index_rebuilds)
            metric("repro_retrieval_publish_failures_total", "counter",
                   "Failed best-effort publishes of the index slab "
                   "into shared memory.",
                   self._retrieval_publish_failures)
            metric("repro_retrieval_searches_total", "counter",
                   "Index search calls (suggest + retrieval-backed "
                   "expand).", retrieval["searches"])
            metric("repro_retrieval_partition_probes_total", "counter",
                   "Partition cells visited by partitioned searches.",
                   retrieval["partition_probes"])
            metric("repro_retrieval_exact_fallbacks_total", "counter",
                   "Searches served exact because partitions were "
                   "unavailable or below the recall floor.",
                   retrieval["exact_fallbacks"])
            metric("repro_retrieval_synced_epoch", "gauge",
                   "Engine structural epoch the index last synced at "
                   "(lag vs repro_engine_structural_epoch = staleness).",
                   retrieval["synced_epoch"])
        jobs = self.jobs.counts()
        metric("repro_jobs_submitted_total", "counter",
               "Async jobs accepted via /v1/jobs/...", jobs["submitted"])
        metric("repro_jobs_succeeded_total", "counter",
               "Async jobs that finished successfully.",
               jobs["succeeded"])
        metric("repro_jobs_failed_total", "counter",
               "Async jobs that finished with an error.", jobs["failed"])
        metric("repro_jobs_rejected_total", "counter",
               "Async job submissions rejected with backpressure.",
               jobs["rejected"])
        metric("repro_jobs_listener_failures_total", "counter",
               "Job-completion listener callbacks that raised.",
               jobs["listener_failures"])
        metric("repro_jobs_pending", "gauge",
               "Async jobs queued or running right now.",
               jobs["pending"] + jobs["running"])
        metric("repro_jobs_retained", "gauge",
               "Job snapshots retained for polling.", jobs["retained"])
        metric("repro_ingest_queue_depth", "gauge",
               "Submitted click-log batches not yet processed.",
               self.ingestor.pending)
        metric("repro_ingest_processed_batches_total", "counter",
               "Click-log batches successfully ingested.",
               self.ingestor.processed)
        metric("repro_ingest_failed_batches_total", "counter",
               "Click-log batches whose ingestion raised.",
               self.ingestor.failed)
        with self._taxonomy_lock:
            taxonomy = self.expander.taxonomy
            nodes, edges = taxonomy.num_nodes, taxonomy.num_edges
        metric("repro_taxonomy_nodes", "gauge",
               "Nodes in the live taxonomy.", nodes)
        metric("repro_taxonomy_edges", "gauge",
               "Edges in the live taxonomy.", edges)

        if self.journal is not None:
            journal = self.journal.stats_snapshot()
            metric("repro_journal_appended_total", "counter",
                   "Records appended to the ingest journal.",
                   journal.appended)
            metric("repro_journal_fsyncs_total", "counter",
                   "fsync calls issued by the ingest journal.",
                   journal.fsyncs)
            metric("repro_journal_rotations_total", "counter",
                   "Journal segment rotations.", journal.rotations)
            metric("repro_journal_corrupt_records_total", "counter",
                   "Corrupt records met during journal recovery/replay.",
                   journal.corrupt_records)
            metric("repro_journal_segments", "gauge",
                   "Journal segment files on disk.",
                   len(self.journal.segments()))
            metric("repro_journal_compacted_segments_total", "counter",
                   "Journal segments deleted or archived because a "
                   "snapshot covers them.", journal.compacted_segments)
            metric("repro_journal_skipped_segments_total", "counter",
                   "Segments skipped unopened by snapshot-aware replay.",
                   journal.skipped_segments)

        if self.snapshots is not None:
            last_at = self._last_snapshot_at
            store = self.snapshots.stats
            metric("repro_snapshots_total", "counter",
                   "Snapshots written by this service instance.",
                   self._snapshots_taken)
            metric("repro_snapshot_failures_total", "counter",
                   "Scheduled snapshots that raised.",
                   self._snapshot_failures)
            metric("repro_snapshot_seq", "gauge",
                   "Journal sequence covered by the latest snapshot "
                   "(-1: none).", self._last_snapshot_seq)
            metric("repro_snapshot_bytes", "gauge",
                   "Encoded size of the latest snapshot.",
                   self._last_snapshot_bytes)
            metric("repro_snapshot_age_seconds", "gauge",
                   "Seconds since the latest snapshot (-1: none yet).",
                   (round(time.monotonic() - last_at, 3)
                    if last_at is not None else -1))
            metric("repro_snapshot_corrupt_skipped_total", "counter",
                   "Snapshots skipped as unusable during recovery.",
                   store.corrupt_skipped)
            metric("repro_recovery_replay_tail_records", "gauge",
                   "Journal records replayed after the snapshot at the "
                   "last recovery.", self._replay_tail_records)

        if self.pool is not None:
            pool = self.pool.stats_snapshot()
            metric("repro_pool_requests_total", "counter",
                   "Requests fanned out across the scorer pool.",
                   pool.requests)
            metric("repro_pool_pairs_scored_total", "counter",
                   "Pairs scored through the pool.", pool.pairs_scored)
            metric("repro_pool_shard_messages_total", "counter",
                   "Shard messages dispatched to workers.",
                   pool.shard_messages)
            metric("repro_pool_worker_deaths_total", "counter",
                   "Worker processes that died unexpectedly.",
                   pool.worker_deaths)
            metric("repro_pool_worker_restarts_total", "counter",
                   "Worker processes respawned after a death.",
                   pool.worker_restarts)
            metric("repro_pool_watchdog_restarts_total", "counter",
                   "Respawns initiated proactively by the pool watchdog.",
                   pool.watchdog_restarts)
            metric("repro_pool_watchdog_respawn_failures_total", "counter",
                   "Watchdog respawn attempts that raised (retried on "
                   "the next sweep).",
                   pool.watchdog_respawn_failures)
            metric("repro_pool_delta_broadcasts_total", "counter",
                   "Structural attachment deltas broadcast to workers.",
                   pool.delta_broadcasts)
            metric("repro_pool_delta_compactions_total", "counter",
                   "Snapshot-driven delta-log folds.",
                   pool.delta_compactions)
            metric("repro_pool_delta_replays_total", "counter",
                   "Backlog replays into (re)spawned workers.",
                   pool.delta_replays)
            metric("repro_pool_delta_replayed_edges_total", "counter",
                   "Attachment edges queued across backlog replays.",
                   pool.delta_replayed_edges)
            if hasattr(self.pool, "delta_backlog_stats"):
                backlog = self.pool.delta_backlog_stats()
                metric("repro_pool_delta_baseline_edges", "gauge",
                       "Folded baseline edges (skipped by respawns that "
                       "attach the covering shm generation).",
                       backlog["baseline_edges"])
                metric("repro_pool_delta_tail_edges", "gauge",
                       "Post-compaction delta-tail edges a respawned "
                       "worker replays.", backlog["tail_edges"])
            lines.append("# HELP repro_pool_worker_pairs_total Pairs "
                         "routed to one worker (shard balance).")
            lines.append("# TYPE repro_pool_worker_pairs_total counter")
            for index, pairs in sorted(pool.worker_pairs.items()):
                lines.append(
                    f'repro_pool_worker_pairs_total{{worker="{index}"}} '
                    f"{pairs}")
            shm = self.pool.shared_memory_stats()
            metric("repro_shm_segments", "gauge",
                   "Live shared-memory segments published by the pool.",
                   shm["segments"])
            metric("repro_shm_segment_bytes", "gauge",
                   "Total bytes of live shared-memory segments (the one "
                   "weight copy all workers map).", shm["bytes"])
            metric("repro_shm_generation", "gauge",
                   "Current shared-segment generation (bumps per hot "
                   "reload).", shm["generation"])
            metric("repro_pool_shared_workers", "gauge",
                   "Workers currently serving zero-copy shared views.",
                   shm["attached_workers"])
            metric("repro_pool_attach_failures_total", "counter",
                   "Workers that fell back to a private bundle load.",
                   shm["attach_failures"])
            metric("repro_pool_shm_publish_failures_total", "counter",
                   "Parent-side shared-segment publish failures.",
                   shm["publish_failures"])
            respawn = self.pool.respawn_stats()
            lines.append("# HELP repro_pool_respawn_seconds Worker "
                         "spawn-to-ready latency.")
            lines.append("# TYPE repro_pool_respawn_seconds histogram")
            buckets = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
            samples = respawn["samples"]
            for bound in buckets:
                count = sum(1 for value in samples if value <= bound)
                lines.append(
                    f'repro_pool_respawn_seconds_bucket{{le="{bound}"}} '
                    f"{count}")
            lines.append(
                f'repro_pool_respawn_seconds_bucket{{le="+Inf"}} '
                f"{len(samples)}")
            lines.append(
                f"repro_pool_respawn_seconds_sum "
                f"{respawn['total_seconds']}")
            lines.append(
                f"repro_pool_respawn_seconds_count {respawn['count']}")

        detector = self.bundle.pipeline.detector
        engine = detector.inference_engine if detector is not None else None
        if engine is not None:
            stats = engine.stats_snapshot()
            label = f'{{dtype="{stats.dtype}"}}'
            metric("repro_engine_info", "gauge",
                   "Compiled inference engine presence (dtype label).",
                   1, label)
            metric("repro_engine_batches_total", "counter",
                   "Engine scoring batches executed.", stats.batches, label)
            metric("repro_engine_pairs_scored_total", "counter",
                   "Pairs scored by the inference engine.",
                   stats.pairs_scored, label)
            metric("repro_engine_sequences_encoded_total", "counter",
                   "Template sequences encoded by the compiled BERT.",
                   stats.sequences_encoded, label)
            metric("repro_engine_concept_cache_hits_total", "counter",
                   "Single-concept embeddings served from the engine "
                   "cache.", stats.concept_cache_hits, label)
            metric("repro_engine_structural_epoch", "gauge",
                   "Incremental-recompute fence (bumped per applied "
                   "structural delta).", stats.structural_epoch, label)
            metric("repro_engine_structural_nodes", "gauge",
                   "Nodes in the engine's live structural graph.",
                   stats.structural_nodes, label)
            metric("repro_engine_recompute_batches_total", "counter",
                   "Dirty-frontier recompute passes executed.",
                   stats.recompute_batches, label)
            metric("repro_engine_rows_recomputed_total", "counter",
                   "Node-embedding rows refreshed by frontier "
                   "recomputes (rows x hops).", stats.rows_recomputed,
                   label)
            metric("repro_engine_norms_epoch", "gauge",
                   "Structural epoch a retrieval index last cached row "
                   "norms at (-1: never).", stats.norms_epoch, label)
        return "\n".join(lines) + "\n"
