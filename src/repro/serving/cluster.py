"""Sharded multi-process scoring: one compiled engine per worker.

A single-process service serialises every score behind the shared
:class:`~repro.infer.InferenceEngine` workspace lock, so one busy client
starves the rest and extra cores sit idle.  :class:`ShardedScorerPool`
removes that bottleneck: it forks ``num_workers`` OS processes, each of
which **loads the artifact bundle itself** and compiles its *own*
engine (weights and scratch buffers are per-process — no shared state,
no lock contention, no GIL), then hash-partitions each request's
(parent, child) pairs across workers over :mod:`multiprocessing` pipes
and merges the shard results back into request order.

Design notes:

* **stable sharding** — a pair's worker is ``crc32(parent\\0child) %
  num_workers`` (:meth:`ShardedScorerPool.shard`), so a given pair
  always lands on the same worker and that worker's token/concept
  caches stay hot for it.
* **per-worker protocol** — each worker owns one duplex pipe and
  processes messages strictly in order; a dedicated parent-side reader
  thread resolves in-flight futures, so many service threads can score
  concurrently while each pipe still sees a single writer at a time.
* **failure containment** — a worker that dies (OOM-killed, segfault)
  fails only its in-flight shards; the pool respawns it on the next
  request for its shard and counts the event in ``worker_deaths`` /
  ``worker_restarts`` (exported at ``/metrics``).
* **hot reload** — :meth:`reload` sends every worker a reload message
  that queues behind in-flight scoring, so the old engine drains
  naturally and no request is ever dropped mid-swap.
* **structural deltas** — :meth:`broadcast_attachments` fans freshly
  attached taxonomy edges out to every worker, whose engine recomputes
  only the affected k-hop frontier
  (:meth:`~repro.infer.InferenceEngine.apply_attachments`).  The pool
  keeps the cumulative delta log and replays it to respawned or
  reloaded workers, so every shard serves the same live graph without a
  bundle re-export.
* **proactive supervision** — a watchdog thread (``watchdog_interval``)
  respawns dead workers in the background instead of waiting for the
  next request to their shard, so a crashed worker's shard is usually
  healthy again before traffic notices.
* **zero-copy shared weights** — by default (``REPRO_SHM`` unset or
  truthy, fast inference mode) the parent publishes every read-only
  engine array into :class:`~repro.serving.shm.SharedArtifactStore`
  segments once; workers attach the segments and build view-backed
  engines (:class:`~repro.serving.artifacts.SharedBundleView`) instead
  of loading + compiling privately.  Memory stays O(1) in worker count,
  respawn skips the bundle load entirely, and hot reload becomes a
  two-phase segment swap (publish generation g+1, roll workers, retire
  g).  Attach failure falls back to the private-copy path per worker
  (``attach_failures`` counter) — scores are bit-identical either way
  because attached views hold exactly the arrays a private compile
  produces.

Scores agree with the in-process engine within the documented float32
tolerance (``repro.nn.SCORE_TOLERANCE``): sharding changes batch
composition, which perturbs float32 GEMM reduction order below 1e-4 but
never rankings.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import warnings
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["PoolStats", "ShardedScorerPool", "shared_memory_default"]

Pair = tuple[str, str]

#: seconds a freshly spawned worker gets to load + compile its bundle
READY_TIMEOUT = 120.0

#: environment variable gating the shared-memory worker path
SHM_ENV = "REPRO_SHM"

#: bound on the retained respawn-duration samples (histogram source)
_RESPAWN_SAMPLE_LIMIT = 512


def shared_memory_default() -> bool:
    """Whether ``REPRO_SHM`` enables zero-copy workers (default: on).

    Any of ``0 / off / false / no`` disables sharing; unknown values
    keep the default so serving never dies on a typo'd environment.
    """
    raw = os.environ.get(SHM_ENV, "").strip().lower()
    return raw not in ("0", "off", "false", "no")


@dataclass
class PoolStats:
    """Parent-side counters describing pool traffic since construction."""

    requests: int = 0
    pairs_scored: int = 0
    shard_messages: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    watchdog_restarts: int = 0
    #: watchdog respawn attempts that themselves raised (retried on the
    #: next sweep)
    watchdog_respawn_failures: int = 0
    reloads: int = 0
    delta_broadcasts: int = 0
    #: workers that fell back to a private bundle load because attaching
    #: the shared segments failed (spawn or reload)
    attach_failures: int = 0
    #: parent-side failures to publish shared segments (pool falls back
    #: to all-private workers)
    shm_publish_failures: int = 0
    #: snapshot-driven delta-log folds (see ``compact_deltas``)
    delta_compactions: int = 0
    #: backlog replays into freshly (re)spawned workers
    delta_replays: int = 0
    #: attachment edges queued across all backlog replays
    delta_replayed_edges: int = 0
    worker_pairs: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON/metrics-friendly snapshot."""
        return {
            "requests": self.requests,
            "pairs_scored": self.pairs_scored,
            "shard_messages": self.shard_messages,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "watchdog_restarts": self.watchdog_restarts,
            "watchdog_respawn_failures": self.watchdog_respawn_failures,
            "reloads": self.reloads,
            "delta_broadcasts": self.delta_broadcasts,
            "attach_failures": self.attach_failures,
            "shm_publish_failures": self.shm_publish_failures,
            "delta_compactions": self.delta_compactions,
            "delta_replays": self.delta_replays,
            "delta_replayed_edges": self.delta_replayed_edges,
            "worker_pairs": dict(self.worker_pairs),
        }


def _load_worker_bundle(bundle_dir: str, shared_manifest: dict | None
                        ) -> tuple[object, dict]:
    """Attach the shared segments, falling back to a private load.

    Returns ``(bundle, info)`` where ``info`` reports the mode the
    worker actually ended up in (``shared`` or ``private``) plus the
    attach error, if any — the parent surfaces both through stats and
    ``/metrics``.
    """
    from .artifacts import ArtifactBundle, SharedBundleView
    info = {"mode": "private", "attach_error": None}
    if shared_manifest is not None:
        try:
            bundle = SharedBundleView.attach(shared_manifest, bundle_dir)
            info["mode"] = "shared"
            return bundle, info
        except BaseException as error:
            info["attach_error"] = repr(error)
    return ArtifactBundle.load(bundle_dir), info


def _worker_main(conn, bundle_dir: str,
                 shared_manifest: dict | None = None) -> None:
    """Worker-process entry point: attach or load the bundle, serve the pipe.

    With a ``shared_manifest`` the worker attaches the parent's
    shared-memory segments zero-copy (falling back to a private
    ``ArtifactBundle.load`` when attach fails); without one it loads
    privately as before.  Messages are processed strictly in order,
    which is what makes reload-behind-inflight draining work.
    Per-message failures are reported back as ``("err", req_id, repr)``;
    only a broken pipe (the parent died) exits the loop.
    """
    import signal
    # The parent coordinates shutdown over the pipe; a terminal Ctrl-C
    # must not kill workers mid-batch before the parent can drain them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, signal.SIG_IGN)
    # Forked workers inherit the parent's chained SIGTERM unlink handler
    # (repro.serving.shm); only the owner may tear segments down, so
    # restore the default disposition for a clean terminate().
    signal.signal(signal.SIGTERM, signal.SIG_DFL)

    from .artifacts import ArtifactBundle, SharedBundleView
    try:
        bundle, info = _load_worker_bundle(bundle_dir, shared_manifest)
    except BaseException as error:
        conn.send(("fatal", repr(error)))
        conn.close()
        return
    conn.send(("ready", os.getpid(), info))
    parent_pid = os.getppid()

    while True:
        try:
            # Poll rather than block: under the fork start method each
            # sibling inherits copies of this pipe's parent end, so a
            # SIGKILL'd parent never produces EOF here.  Watching the
            # ppid guarantees orphaned workers exit within a second.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # parent died without cleanup
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        kind, req_id = message[0], message[1]
        try:
            if kind == "score":
                pairs = [(str(q), str(i)) for q, i in message[2]]
                scores = bundle.score_pairs(pairs)
                conn.send(("ok", req_id, np.asarray(scores,
                                                    dtype=np.float64)))
            elif kind == "reload":
                directory = message[2]
                manifest = message[3] if len(message) > 3 else None
                new_bundle, outcome = _load_worker_bundle(directory,
                                                          manifest)
                outcome["directory"] = directory
                old = bundle
                bundle = new_bundle
                engine = old.pipeline.detector.inference_engine
                if engine is not None:
                    engine.drain(timeout=5.0)
                if isinstance(old, SharedBundleView):
                    old.close()
                conn.send(("ok", req_id, outcome))
            elif kind == "delta":
                # Structural attachment delta: the worker's own engine
                # merges the edges and recomputes the dirty frontier.
                detector = bundle.pipeline.detector
                engine = (detector.inference_engine
                          if detector is not None else None)
                if engine is None:
                    conn.send(("ok", req_id,
                               {"applied": False,
                                "reason": "no compiled engine"}))
                else:
                    conn.send(("ok", req_id,
                               engine.apply_attachments(message[2])))
            elif kind == "stats":
                detector = bundle.pipeline.detector
                engine = detector.inference_engine
                payload = (engine.stats_snapshot().as_dict()
                           if engine is not None else {})
                conn.send(("ok", req_id, payload))
            elif kind == "ping":
                conn.send(("ok", req_id, os.getpid()))
            elif kind == "stop":
                conn.send(("ok", req_id, None))
                conn.close()
                return
            else:
                conn.send(("err", req_id,
                           f"unknown message kind {kind!r}"))
        except BaseException as error:
            try:
                conn.send(("err", req_id, repr(error)))
            except (BrokenPipeError, OSError):
                return


class _ShardFuture:
    """Completion signal for one in-flight shard message."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None

    def resolve(self, result) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def wait(self, timeout: float | None):
        if not self.event.wait(timeout):
            raise TimeoutError("scorer worker did not respond in time")
        if self.error is not None:
            raise self.error
        return self.result


class _Worker:
    """Parent-side handle: process, pipe, reader thread, in-flight map."""

    def __init__(self, index: int):
        self.index = index
        self.process: mp.process.BaseProcess | None = None
        self.conn = None
        self.reader: threading.Thread | None = None
        self.send_lock = threading.Lock()
        self.pending: dict[int, _ShardFuture] = {}
        self.pending_lock = threading.Lock()
        self.alive = False
        #: "shared" when serving attached segments, else "private"
        self.mode = "private"


class ShardedScorerPool:
    """Hash-partitioned scoring across bundle-loading worker processes.

    Implements the ``Scorer`` protocol (``score_pairs`` /  ``__call__``),
    so it drops in anywhere a detector-backed scorer does — most usefully
    as the backend of a :class:`~repro.serving.BatchingScorer` inside
    :class:`~repro.serving.TaxonomyService`.

    Parameters
    ----------
    bundle_dir:
        Artifact-bundle directory each worker loads independently.
    num_workers:
        Worker-process count (>= 1).  Throughput scales with cores until
        workers outnumber them; see ``benchmarks/bench_sharded_scoring``.
    mp_context:
        ``multiprocessing`` start method; default ``fork`` where
        available (fast startup) falling back to ``spawn``.  The pool
        must be started before the parent creates service threads when
        using ``fork``.
    request_timeout:
        Seconds to wait for one shard response before failing the
        request.
    watchdog_interval:
        Seconds between proactive liveness sweeps; the watchdog thread
        respawns dead workers in the background (``None`` or ``0``
        disables it, reverting to respawn-on-next-request only).
    share_memory:
        Publish the engine's read-only arrays into shared-memory
        segments so workers attach zero-copy instead of loading the
        bundle privately.  ``None`` (default) reads ``REPRO_SHM``
        (enabled unless set to ``0/off/false/no``); sharing is skipped
        automatically when the inference mode is not ``fast``.
    bundle:
        Optional parent-loaded :class:`~repro.serving.artifacts.ArtifactBundle`
        for ``bundle_dir`` — reused for the initial segment publish so
        the weights are not read from disk twice.
    """

    def __init__(self, bundle_dir: str, num_workers: int = 2,
                 mp_context: str | None = None,
                 request_timeout: float = 60.0,
                 watchdog_interval: float | None = 5.0,
                 share_memory: bool | None = None,
                 bundle=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.bundle_dir = bundle_dir
        self.num_workers = num_workers
        self.request_timeout = request_timeout
        self.watchdog_interval = watchdog_interval or None
        self._share_requested = (shared_memory_default()
                                 if share_memory is None
                                 else bool(share_memory))
        self._seed_bundle = bundle
        self._store = None
        self._manifest: dict | None = None
        self._respawn_seconds: list[float] = []
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self._workers = [_Worker(i) for i in range(num_workers)]
        self._lock = threading.Lock()  # guards spawn/stop transitions
        self._req_counter = 0  # guarded-by: self._counter_lock
        self._counter_lock = threading.Lock()
        self._stats = PoolStats(  # guarded-by: self._stats_lock
            worker_pairs={i: 0 for i in range(num_workers)})
        self._stats_lock = threading.Lock()
        self._started = False
        self._stopping = False
        # Cumulative structural-delta log: replayed to every respawned
        # or freshly reloaded worker so all shards serve the same live
        # graph (apply_attachments is idempotent, so replay is safe).
        # ``compact_deltas`` folds the log into ``_delta_baseline`` and,
        # when the folded state was republished as a new shared-memory
        # generation, records it in ``_covered_generation`` — a shared
        # worker attaching that generation already has the baseline in
        # its arrays and replays only the post-compaction tail.
        self._delta_log: list[list[Pair]] = []  # guarded-by: self._delta_lock
        self._delta_baseline: list[Pair] = []  # guarded-by: self._delta_lock
        self._covered_generation: int | None = None  # guarded-by: self._delta_lock
        self._delta_lock = threading.Lock()
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedScorerPool":
        """Spawn every worker and wait until each has compiled; idempotent.

        When sharing is enabled the read-only engine arrays are
        published into shared-memory segments first (one copy, created
        before any fork) so every worker can attach them zero-copy.
        """
        with self._lock:
            self._stopping = False
            if self._share_requested and self._manifest is None:
                self._publish_bundle(self.bundle_dir)
            for worker in self._workers:
                if not worker.alive:
                    self._spawn(worker, restart=self._started)
            self._started = True
            if self.watchdog_interval and (
                    self._watchdog is None
                    or not self._watchdog.is_alive()):
                self._watchdog_stop.clear()
                self._watchdog = threading.Thread(
                    target=self._watchdog_loop, name="repro-pool-watchdog",
                    daemon=True)
                self._watchdog.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop workers, reap processes, and unlink shared segments.

        Idempotent and signal-safe: segment teardown goes through
        :meth:`SharedArtifactStore.unlink
        <repro.serving.shm.SharedArtifactStore.unlink>`, which unlinks
        each segment exactly once whether invoked here, from ``atexit``,
        or from the chained ``SIGTERM`` handler — so the stdlib
        ``resource_tracker`` never sees a leaked (or double-freed)
        segment.
        """
        self._watchdog_stop.set()
        watchdog = self._watchdog
        if watchdog is not None:
            watchdog.join(timeout)
            self._watchdog = None
        with self._lock:
            self._stopping = True
            for worker in self._workers:
                if not worker.alive:
                    continue
                try:
                    with worker.send_lock:
                        worker.conn.send(("stop", -1))
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                process = worker.process
                if process is not None:
                    process.join(timeout)
                    if process.is_alive():
                        process.terminate()
                        process.join(5.0)
                    worker.process = None
                worker.alive = False
                if worker.conn is not None:
                    worker.conn.close()
                    worker.conn = None
            store, self._store = self._store, None
            self._manifest = None
            if store is not None:
                store.unlink()

    @property
    def running(self) -> bool:
        """True while at least one worker process is alive."""
        return any(worker.alive and worker.process is not None
                   and worker.process.is_alive()
                   for worker in self._workers)

    def __enter__(self) -> "ShardedScorerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    @staticmethod
    def shard_of(pair: Pair, num_workers: int) -> int:
        """Stable shard index for one (parent, child) pair.

        CRC-based rather than ``hash()`` so the mapping survives
        interpreter restarts (``PYTHONHASHSEED`` randomisation) and is
        identical across parent and workers.
        """
        key = f"{pair[0]}\x00{pair[1]}".encode("utf-8")
        return zlib.crc32(key) % num_workers

    def shard(self, pair: Pair) -> int:
        """This pool's worker index for ``pair``."""
        return self.shard_of(pair, self.num_workers)

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Positive-class probabilities, merged back into input order.

        Pairs are partitioned with :meth:`shard`, each shard scored by
        its worker concurrently, and any worker failure is raised here
        after all shards settle (so one request never half-completes
        silently).
        """
        pairs = [(str(parent), str(child)) for parent, child in pairs]
        if not pairs:
            return np.zeros(0)
        if not self._started:
            raise RuntimeError("pool is not started; call start() first")
        shards: dict[int, list[int]] = {}
        for row, pair in enumerate(pairs):
            shards.setdefault(self.shard(pair), []).append(row)
        futures: list[tuple[int, list[int], _ShardFuture]] = []
        for index, rows in shards.items():
            shard_pairs = [pairs[row] for row in rows]
            future = self._dispatch(index, "score", shard_pairs)
            futures.append((index, rows, future))
        out = np.empty(len(pairs), dtype=np.float64)
        first_error: BaseException | None = None
        for index, rows, future in futures:
            try:
                scores = np.asarray(future.wait(self.request_timeout),
                                    dtype=np.float64)
                out[rows] = scores
                with self._stats_lock:
                    self._stats.worker_pairs[index] = \
                        self._stats.worker_pairs.get(index, 0) + len(rows)
            except BaseException as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        with self._stats_lock:
            self._stats.requests += 1
            self._stats.pairs_scored += len(pairs)
        return out

    def __call__(self, pairs: list[Pair]) -> np.ndarray:
        """Scorer-protocol alias for :meth:`score_pairs`."""
        return self.score_pairs(pairs)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def reload(self, bundle_dir: str,
               timeout: float | None = None) -> list[dict]:
        """Swap every worker onto a new bundle; returns per-worker results.

        With sharing enabled this is a **two-phase segment swap**: the
        parent publishes the new bundle's arrays as generation ``g+1``
        segments first, then rolls the manifest out to workers — each
        re-attaches zero-copy without re-reading the bundle from disk —
        and finally retires the generation-``g`` segments once every
        worker has swapped (POSIX keeps retired segments mapped until
        the last straggler lets go, so mid-rollout scoring never tears).

        The reload message queues behind in-flight scoring on each pipe,
        so requests already dispatched finish on the old engine and the
        swap drops nothing.  Workers that fail to load the new bundle
        report an error but keep serving their old engine.
        """
        timeout = self.request_timeout if timeout is None else timeout
        # A missing bundle directory is the workers' error to report (they
        # keep serving the old engine); publishing it would only add a
        # spurious publish-failure warning on top.
        manifest = (self._publish_bundle(bundle_dir)
                    if self._share_requested and os.path.isdir(bundle_dir)
                    else None)
        futures = [(worker.index,
                    self._dispatch(worker.index, "reload", bundle_dir,
                                   manifest))
                   for worker in self._workers]
        results = []
        for index, future in futures:
            try:
                payload = future.wait(timeout)
                entry = {"worker": index, "ok": True}
                if isinstance(payload, dict):
                    entry.update(payload)
                    self._note_worker_mode(index, payload, manifest)
                results.append(entry)
            except BaseException as error:
                results.append({"worker": index, "ok": False,
                                "error": repr(error)})
        if all(result["ok"] for result in results):
            self.bundle_dir = bundle_dir
            if manifest is not None and self._store is not None:
                self._store.retire_before(manifest["generation"])
            # Freshly loaded bundles start from on-disk structural state;
            # re-apply the accumulated attachment deltas so every shard
            # keeps serving the live graph (idempotent per edge, so the
            # compacted log is one broadcast however long the history).
            backlog = self._compacted_delta_log()
            if backlog:
                self._broadcast_delta(backlog, timeout)
        with self._stats_lock:
            self._stats.reloads += 1
        return results

    def broadcast_attachments(self, edges: list[Pair],
                              timeout: float | None = None) -> list[dict]:
        """Fan one structural attachment delta out to every worker.

        Each worker's engine merges the edges and recomputes its dirty
        frontier (:meth:`~repro.infer.InferenceEngine.apply_attachments`);
        per-worker outcomes are returned like :meth:`reload`.  The delta
        joins the pool's cumulative replay log *first*, so a worker that
        dies mid-broadcast still converges when it is respawned.
        """
        edges = [(str(parent), str(child)) for parent, child in edges]
        with self._delta_lock:
            self._delta_log.append(edges)
        with self._stats_lock:
            self._stats.delta_broadcasts += 1
        return self._broadcast_delta(edges, timeout)

    def _broadcast_delta(self, edges: list[Pair],
                         timeout: float | None) -> list[dict]:
        """Send one delta to all workers and collect per-worker results."""
        timeout = self.request_timeout if timeout is None else timeout
        futures: list[tuple[int, _ShardFuture | BaseException]] = []
        for worker in self._workers:
            try:
                futures.append((worker.index,
                                self._dispatch(worker.index, "delta",
                                               edges)))
            except BaseException as error:  # dead worker, failed respawn
                futures.append((worker.index, error))
        results = []
        for index, item in futures:
            if isinstance(item, BaseException):
                results.append({"worker": index, "ok": False,
                                "error": repr(item)})
                continue
            try:
                payload = item.wait(timeout)
                outcome = {"worker": index, "ok": True}
                if isinstance(payload, dict):
                    outcome.update(payload)
                results.append(outcome)
            except BaseException as error:
                results.append({"worker": index, "ok": False,
                                "error": repr(error)})
        return results

    def worker_stats(self, timeout: float = 10.0) -> list[dict]:
        """Each live worker's engine counters (for ``/metrics``)."""
        futures = []
        for worker in self._workers:
            try:
                futures.append((worker.index,
                                self._dispatch(worker.index, "stats")))
            except BaseException as error:
                futures.append((worker.index, error))
        results = []
        for index, future in futures:
            payload: dict = {"worker": index, "alive": False}
            if isinstance(future, BaseException):
                payload["error"] = repr(future)
            else:
                try:
                    payload.update(future.wait(timeout) or {})
                    payload["alive"] = True
                except BaseException as error:
                    payload["error"] = repr(error)
            results.append(payload)
        return results

    def stats_snapshot(self) -> PoolStats:
        """An atomic copy of the parent-side counters."""
        with self._stats_lock:
            snapshot = replace(self._stats)
            snapshot.worker_pairs = dict(self._stats.worker_pairs)
            return snapshot

    def shared_memory_stats(self) -> dict:
        """Shared-segment state for ``/metrics`` and operators.

        ``enabled`` reports whether a manifest is currently published
        (i.e. workers can attach); ``attached_workers`` counts workers
        actually serving from shared views right now.
        """
        store = self._store
        segment = (store.segment_stats() if store is not None
                   and not store.closed else {"segments": 0, "bytes": 0,
                                              "generations": {}})
        manifest = self._manifest
        with self._stats_lock:
            attach_failures = self._stats.attach_failures
            publish_failures = self._stats.shm_publish_failures
        return {
            "requested": self._share_requested,
            "enabled": manifest is not None,
            "generation": (int(manifest["generation"])
                           if manifest is not None else 0),
            "segments": int(segment["segments"]),
            "bytes": int(segment["bytes"]),
            "attached_workers": sum(
                1 for worker in self._workers
                if worker.alive and worker.mode == "shared"),
            "attach_failures": attach_failures,
            "publish_failures": publish_failures,
        }

    def respawn_stats(self) -> dict:
        """Spawn-to-ready latency summary (count / total / max seconds)."""
        with self._stats_lock:
            samples = list(self._respawn_seconds)
        return {
            "count": len(samples),
            "total_seconds": float(sum(samples)),
            "max_seconds": float(max(samples)) if samples else 0.0,
            "samples": samples,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _publish_bundle(self, directory: str) -> dict | None:
        """Publish ``directory``'s engine arrays as a new shm generation.

        Returns the new manifest, or ``None`` when sharing is skipped
        (non-fast inference mode) or publishing fails — the pool then
        runs all-private workers, bit-identical but with per-worker
        copies.  Reuses the parent-loaded seed bundle when it matches,
        so initial publish reads the weights from disk exactly once.
        """
        from ..infer import MODE_FAST, default_inference_mode
        from .artifacts import ArtifactBundle
        from .shm import SharedArtifactStore
        try:
            if default_inference_mode() != MODE_FAST:
                self._manifest = None
                return None
            bundle = self._seed_bundle
            if bundle is None or getattr(bundle, "directory",
                                         None) != directory:
                bundle = ArtifactBundle.load(directory)
            engine = bundle.pipeline.detector.compile_inference()
            meta, arrays = engine.shared_state()
            if self._store is None or self._store.closed:
                self._store = SharedArtifactStore()
            self._manifest = self._store.publish(arrays, meta=meta)
            # From-disk arrays predate every broadcast attachment, so no
            # published generation covers the folded baseline any more.
            with self._delta_lock:
                self._covered_generation = None
            return self._manifest
        except BaseException as error:
            self._manifest = None
            with self._delta_lock:
                self._covered_generation = None
            with self._stats_lock:
                self._stats.shm_publish_failures += 1
            warnings.warn(
                f"shared-memory publish failed, using private workers: "
                f"{error!r}", RuntimeWarning, stacklevel=2)
            return None

    def publish_shared(self, arrays: dict, meta: dict | None = None,
                       label: str = "retrieval") -> dict | None:
        """Publish an auxiliary array family (e.g. the retrieval slab).

        Reuses the pool's segment store under an independent ``label``
        with its own generation counter; re-publishing supersedes the
        previous generation (retired immediately — auxiliary slabs have
        no mid-rollout attachers to drain).  Returns the manifest, or
        ``None`` when sharing is off or publishing fails.
        """
        if not self._share_requested:
            return None
        from .shm import SharedArtifactStore
        try:
            with self._lock:
                if self._store is None or self._store.closed:
                    self._store = SharedArtifactStore()
                manifest = self._store.publish(arrays, meta=meta,
                                               label=label)
                self._store.retire_before(manifest["generation"],
                                          label=label)
            return manifest
        except BaseException as error:
            with self._stats_lock:
                self._stats.shm_publish_failures += 1
            warnings.warn(
                f"shared publish of {label!r} arrays failed: {error!r}",
                RuntimeWarning, stacklevel=2)
            return None

    def _note_worker_mode(self, index: int, info: dict,
                          manifest: dict | None) -> None:
        """Record a worker's attach outcome (spawn or reload)."""
        mode = info.get("mode", "private")
        self._workers[index].mode = mode
        if manifest is not None and mode != "shared":
            with self._stats_lock:
                self._stats.attach_failures += 1
            error = info.get("attach_error")
            if error:
                warnings.warn(
                    f"scorer worker {index} fell back to a private "
                    f"bundle load: {error}", RuntimeWarning,
                    stacklevel=2)

    def _next_req_id(self) -> int:
        with self._counter_lock:
            self._req_counter += 1
            return self._req_counter

    def _dispatch(self, index: int, kind: str, *payload) -> _ShardFuture:
        """Send one message to worker ``index``; returns its future.

        Respawns the worker first if it has died (counted as a restart).
        """
        worker = self._workers[index]
        if not worker.alive:
            with self._lock:
                if self._stopping:
                    raise RuntimeError("pool is stopping")
                if not worker.alive:  # re-check under the lock
                    self._spawn(worker, restart=True)
        future = _ShardFuture()
        req_id = self._next_req_id()
        with worker.pending_lock:
            worker.pending[req_id] = future
        try:
            with worker.send_lock:
                worker.conn.send((kind, req_id) + payload)
        except (BrokenPipeError, OSError) as error:
            with worker.pending_lock:
                worker.pending.pop(req_id, None)
            self._mark_dead(worker)
            raise RuntimeError(
                f"scorer worker {index} pipe is broken") from error
        with self._stats_lock:
            self._stats.shard_messages += 1
        return future

    def _spawn(self, worker: _Worker, restart: bool,
               supervised: bool = False) -> None:
        """Fork one worker and wait for its ready message.  Lock held.

        Spawn-to-ready latency is recorded (``respawn_seconds``): with
        shared segments the worker skips the bundle load + compile, so
        the sample distribution is the headline respawn win.
        """
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.bundle_dir, self._manifest),
            name=f"repro-scorer-{worker.index}", daemon=True)
        started_at = time.perf_counter()
        process.start()
        child_conn.close()
        if not parent_conn.poll(READY_TIMEOUT):
            process.terminate()
            raise RuntimeError(
                f"scorer worker {worker.index} did not become ready "
                f"within {READY_TIMEOUT}s")
        message = parent_conn.recv()
        if message[0] != "ready":
            process.join(5.0)
            raise RuntimeError(
                f"scorer worker {worker.index} failed to load bundle: "
                f"{message[1]}")
        elapsed = time.perf_counter() - started_at
        info = message[2] if len(message) > 2 else {}
        self._note_worker_mode(worker.index, info, self._manifest)
        worker.process = process
        worker.conn = parent_conn
        worker.pending = {}
        worker.alive = True
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker,),
            name=f"repro-pool-reader-{worker.index}", daemon=True)
        worker.reader.start()
        self._replay_deltas(worker)
        with self._stats_lock:
            if len(self._respawn_seconds) < _RESPAWN_SAMPLE_LIMIT:
                self._respawn_seconds.append(elapsed)
            if restart:
                self._stats.worker_restarts += 1
                if supervised:
                    self._stats.watchdog_restarts += 1

    def compact_deltas(self, engine=None) -> dict:
        """Fold the delta log into the published state (snapshot hook).

        When shared memory is live and the parent's post-attachment
        ``engine`` is supplied, its current arrays (which already embed
        every applied delta) are republished as a new generation and the
        old generations retire — a respawned worker then attaches
        post-snapshot state directly.  The accumulated batches are
        folded into one deduplicated *baseline*: workers that attached
        the covering generation skip it entirely on respawn and replay
        only the post-compaction tail, while private loaders and
        post-reload workers (whose arrays come from disk) still replay
        baseline + tail.  Live workers receive nothing — they applied
        every delta when it was broadcast.

        Returns ``{"generation", "baseline_edges", "covered"}``.
        """
        generation: int | None = None
        if (engine is not None and self._manifest is not None
                and self._store is not None and not self._store.closed):
            try:
                meta, arrays = engine.shared_state()
                with self._lock:
                    self._manifest = self._store.republish(arrays,
                                                           meta=meta)
                generation = int(self._manifest["generation"])
            except BaseException as error:
                with self._stats_lock:
                    self._stats.shm_publish_failures += 1
                warnings.warn(
                    f"post-snapshot shared republish failed: {error!r}; "
                    f"respawned workers will replay the full delta "
                    f"backlog", RuntimeWarning, stacklevel=2)
                generation = None
        with self._delta_lock:
            folded_tail = bool(self._delta_log)
            merged: dict[Pair, None] = {}
            for edge in self._delta_baseline:
                merged.setdefault(edge, None)
            for batch in self._delta_log:
                for edge in batch:
                    merged.setdefault(edge, None)
            self._delta_baseline = list(merged)
            self._delta_log = []
            if generation is not None:
                self._covered_generation = generation
            elif folded_tail:
                # The baseline grew past what any published generation
                # embeds, so coverage no longer holds.
                self._covered_generation = None
            covered = self._covered_generation is not None
            baseline_edges = len(self._delta_baseline)
        with self._stats_lock:
            self._stats.delta_compactions += 1
        return {"generation": generation,
                "baseline_edges": baseline_edges,
                "covered": covered}

    def delta_backlog_stats(self) -> dict:
        """Baseline/tail sizes and coverage for ``/metrics``."""
        with self._delta_lock:
            tail_edges = sum(len(batch) for batch in self._delta_log)
            return {
                "baseline_edges": len(self._delta_baseline),
                "tail_batches": len(self._delta_log),
                "tail_edges": tail_edges,
                "covered_generation": self._covered_generation,
            }

    def _compacted_delta_log(self) -> list[Pair]:
        """Baseline + tail as one deduplicated edge list.

        ``apply_attachments`` is idempotent and a single cumulative
        batch converges to the same graph (and the same propagated
        embeddings) as the original batch sequence, so replay cost is
        one message regardless of how long the server has been
        streaming.
        """
        with self._delta_lock:
            merged: dict[Pair, None] = {}
            for edge in self._delta_baseline:
                merged.setdefault(edge, None)
            for batch in self._delta_log:
                for edge in batch:
                    merged.setdefault(edge, None)
        return list(merged)

    def _replay_deltas(self, worker: _Worker) -> None:
        """Queue the delta backlog on a fresh worker's pipe.

        A shared-mode worker that attached the generation recorded by
        :meth:`compact_deltas` already holds the folded baseline in its
        arrays, so only the post-compaction tail is replayed — respawn
        cost tracks the tail, not total ingest history.  Any other
        worker (private load, pre-coverage generation) gets baseline +
        tail.

        Holding ``send_lock`` keeps the delta ahead of any scoring
        message another thread might dispatch the moment the worker is
        marked alive.  The response is drained by the reader thread;
        nothing waits on it (a worker that dies mid-replay is respawned
        — and replayed — again).
        """
        manifest = self._manifest
        attached_generation = (int(manifest["generation"])
                               if manifest is not None else None)
        with self._delta_lock:
            covered = self._covered_generation
            tail_only = (worker.mode == "shared"
                         and covered is not None
                         and attached_generation == covered)
            merged: dict[Pair, None] = {}
            if not tail_only:
                for edge in self._delta_baseline:
                    merged.setdefault(edge, None)
            for batch in self._delta_log:
                for edge in batch:
                    merged.setdefault(edge, None)
        backlog = list(merged)
        if not backlog:
            return
        with worker.send_lock:
            future = _ShardFuture()
            req_id = self._next_req_id()
            with worker.pending_lock:
                worker.pending[req_id] = future
            try:
                worker.conn.send(("delta", req_id, backlog))
            except (BrokenPipeError, OSError):
                return  # next dispatch notices the death
        with self._stats_lock:
            self._stats.delta_replays += 1
            self._stats.delta_replayed_edges += len(backlog)

    def _watchdog_loop(self) -> None:
        """Background liveness sweep: respawn dead workers proactively.

        Runs every ``watchdog_interval`` seconds until :meth:`stop`.  A
        failed respawn (e.g. the bundle directory briefly unreadable) is
        retried on the next sweep rather than crashing the thread.
        """
        while not self._watchdog_stop.wait(self.watchdog_interval):
            for worker in self._workers:
                if self._stopping:
                    return
                # The whole check-mark-respawn sequence runs under the
                # pool lock: a dispatch-triggered respawn cannot slip in
                # between a stale liveness read and _mark_dead, so a
                # just-respawned healthy worker is never killed again.
                with self._lock:
                    if self._stopping:
                        return
                    process = worker.process
                    if worker.alive and (process is None
                                         or not process.is_alive()):
                        self._mark_dead(worker)
                    if not worker.alive and self._started:
                        try:
                            self._spawn(worker, restart=True,
                                        supervised=True)
                        except Exception as error:
                            # retried on the next sweep, but a respawn
                            # that keeps failing must be visible
                            with self._stats_lock:
                                self._stats.watchdog_respawn_failures += 1
                            warnings.warn(
                                f"watchdog respawn of worker "
                                f"{worker.index} failed: {error!r}",
                                RuntimeWarning, stacklevel=1)

    def _read_loop(self, worker: _Worker) -> None:
        """Resolve futures from one worker's pipe until it dies."""
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._mark_dead(worker)
                return
            status, req_id, payload = message
            with worker.pending_lock:
                future = worker.pending.pop(req_id, None)
            if future is None:
                continue  # stop acks and timed-out requests land here
            if status == "ok":
                future.resolve(payload)
            else:
                future.fail(RuntimeError(
                    f"scorer worker {worker.index} error: {payload}"))

    def _mark_dead(self, worker: _Worker) -> None:
        """Fail everything in flight on a dead worker exactly once."""
        with worker.pending_lock:
            pending, worker.pending = worker.pending, {}
            was_alive, worker.alive = worker.alive, False
        if not was_alive:
            return
        if not self._stopping:
            with self._stats_lock:
                self._stats.worker_deaths += 1
        error = RuntimeError(
            f"scorer worker {worker.index} died with "
            f"{len(pending)} shard(s) in flight")
        for future in pending.values():
            future.fail(error)
