"""Sharded multi-process scoring: one compiled engine per worker.

A single-process service serialises every score behind the shared
:class:`~repro.infer.InferenceEngine` workspace lock, so one busy client
starves the rest and extra cores sit idle.  :class:`ShardedScorerPool`
removes that bottleneck: it forks ``num_workers`` OS processes, each of
which **loads the artifact bundle itself** and compiles its *own*
engine (weights and scratch buffers are per-process — no shared state,
no lock contention, no GIL), then hash-partitions each request's
(parent, child) pairs across workers over :mod:`multiprocessing` pipes
and merges the shard results back into request order.

Design notes:

* **stable sharding** — a pair's worker is ``crc32(parent\\0child) %
  num_workers`` (:meth:`ShardedScorerPool.shard`), so a given pair
  always lands on the same worker and that worker's token/concept
  caches stay hot for it.
* **per-worker protocol** — each worker owns one duplex pipe and
  processes messages strictly in order; a dedicated parent-side reader
  thread resolves in-flight futures, so many service threads can score
  concurrently while each pipe still sees a single writer at a time.
* **failure containment** — a worker that dies (OOM-killed, segfault)
  fails only its in-flight shards; the pool respawns it on the next
  request for its shard and counts the event in ``worker_deaths`` /
  ``worker_restarts`` (exported at ``/metrics``).
* **hot reload** — :meth:`reload` sends every worker a reload message
  that queues behind in-flight scoring, so the old engine drains
  naturally and no request is ever dropped mid-swap.

Scores agree with the in-process engine within the documented float32
tolerance (``repro.nn.SCORE_TOLERANCE``): sharding changes batch
composition, which perturbs float32 GEMM reduction order below 1e-4 but
never rankings.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["PoolStats", "ShardedScorerPool"]

Pair = tuple[str, str]

#: seconds a freshly spawned worker gets to load + compile its bundle
READY_TIMEOUT = 120.0


@dataclass
class PoolStats:
    """Parent-side counters describing pool traffic since construction."""

    requests: int = 0
    pairs_scored: int = 0
    shard_messages: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    reloads: int = 0
    worker_pairs: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON/metrics-friendly snapshot."""
        return {
            "requests": self.requests,
            "pairs_scored": self.pairs_scored,
            "shard_messages": self.shard_messages,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "reloads": self.reloads,
            "worker_pairs": dict(self.worker_pairs),
        }


def _worker_main(conn, bundle_dir: str) -> None:
    """Worker-process entry point: load the bundle, serve the pipe.

    Messages are processed strictly in order, which is what makes
    reload-behind-inflight draining work.  Per-message failures are
    reported back as ``("err", req_id, repr)``; only a broken pipe (the
    parent died) exits the loop.
    """
    import signal
    # The parent coordinates shutdown over the pipe; a terminal Ctrl-C
    # must not kill workers mid-batch before the parent can drain them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGHUP"):
        signal.signal(signal.SIGHUP, signal.SIG_IGN)

    from .artifacts import ArtifactBundle
    try:
        bundle = ArtifactBundle.load(bundle_dir)
    except BaseException as error:
        conn.send(("fatal", repr(error)))
        conn.close()
        return
    conn.send(("ready", os.getpid()))
    parent_pid = os.getppid()

    while True:
        try:
            # Poll rather than block: under the fork start method each
            # sibling inherits copies of this pipe's parent end, so a
            # SIGKILL'd parent never produces EOF here.  Watching the
            # ppid guarantees orphaned workers exit within a second.
            while not conn.poll(1.0):
                if os.getppid() != parent_pid:
                    return  # parent died without cleanup
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        kind, req_id = message[0], message[1]
        try:
            if kind == "score":
                pairs = [(str(q), str(i)) for q, i in message[2]]
                scores = bundle.score_pairs(pairs)
                conn.send(("ok", req_id, np.asarray(scores,
                                                    dtype=np.float64)))
            elif kind == "reload":
                new_bundle = ArtifactBundle.load(message[2])
                old = bundle
                bundle = new_bundle
                engine = old.pipeline.detector.inference_engine
                if engine is not None:
                    engine.drain(timeout=5.0)
                conn.send(("ok", req_id, message[2]))
            elif kind == "stats":
                detector = bundle.pipeline.detector
                engine = detector.inference_engine
                payload = (engine.stats_snapshot().as_dict()
                           if engine is not None else {})
                conn.send(("ok", req_id, payload))
            elif kind == "ping":
                conn.send(("ok", req_id, os.getpid()))
            elif kind == "stop":
                conn.send(("ok", req_id, None))
                conn.close()
                return
            else:
                conn.send(("err", req_id,
                           f"unknown message kind {kind!r}"))
        except BaseException as error:
            try:
                conn.send(("err", req_id, repr(error)))
            except (BrokenPipeError, OSError):
                return


class _ShardFuture:
    """Completion signal for one in-flight shard message."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None

    def resolve(self, result) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def wait(self, timeout: float | None):
        if not self.event.wait(timeout):
            raise TimeoutError("scorer worker did not respond in time")
        if self.error is not None:
            raise self.error
        return self.result


class _Worker:
    """Parent-side handle: process, pipe, reader thread, in-flight map."""

    def __init__(self, index: int):
        self.index = index
        self.process: mp.process.BaseProcess | None = None
        self.conn = None
        self.reader: threading.Thread | None = None
        self.send_lock = threading.Lock()
        self.pending: dict[int, _ShardFuture] = {}
        self.pending_lock = threading.Lock()
        self.alive = False


class ShardedScorerPool:
    """Hash-partitioned scoring across bundle-loading worker processes.

    Implements the ``Scorer`` protocol (``score_pairs`` /  ``__call__``),
    so it drops in anywhere a detector-backed scorer does — most usefully
    as the backend of a :class:`~repro.serving.BatchingScorer` inside
    :class:`~repro.serving.TaxonomyService`.

    Parameters
    ----------
    bundle_dir:
        Artifact-bundle directory each worker loads independently.
    num_workers:
        Worker-process count (>= 1).  Throughput scales with cores until
        workers outnumber them; see ``benchmarks/bench_sharded_scoring``.
    mp_context:
        ``multiprocessing`` start method; default ``fork`` where
        available (fast startup) falling back to ``spawn``.  The pool
        must be started before the parent creates service threads when
        using ``fork``.
    request_timeout:
        Seconds to wait for one shard response before failing the
        request.
    """

    def __init__(self, bundle_dir: str, num_workers: int = 2,
                 mp_context: str | None = None,
                 request_timeout: float = 60.0):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.bundle_dir = bundle_dir
        self.num_workers = num_workers
        self.request_timeout = request_timeout
        if mp_context is None:
            mp_context = ("fork" if "fork" in mp.get_all_start_methods()
                          else "spawn")
        self._ctx = mp.get_context(mp_context)
        self._workers = [_Worker(i) for i in range(num_workers)]
        self._lock = threading.Lock()  # guards spawn/stop transitions
        self._req_counter = 0
        self._counter_lock = threading.Lock()
        self._stats = PoolStats(
            worker_pairs={i: 0 for i in range(num_workers)})
        self._stats_lock = threading.Lock()
        self._started = False
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedScorerPool":
        """Spawn every worker and wait until each has compiled; idempotent."""
        with self._lock:
            self._stopping = False
            for worker in self._workers:
                if not worker.alive:
                    self._spawn(worker, restart=self._started)
            self._started = True
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Stop workers and reap processes; idempotent."""
        with self._lock:
            self._stopping = True
            for worker in self._workers:
                if not worker.alive:
                    continue
                try:
                    with worker.send_lock:
                        worker.conn.send(("stop", -1))
                except (BrokenPipeError, OSError):
                    pass
            for worker in self._workers:
                process = worker.process
                if process is not None:
                    process.join(timeout)
                    if process.is_alive():
                        process.terminate()
                        process.join(5.0)
                worker.alive = False
                if worker.conn is not None:
                    worker.conn.close()
                    worker.conn = None

    @property
    def running(self) -> bool:
        """True while at least one worker process is alive."""
        return any(worker.alive and worker.process is not None
                   and worker.process.is_alive()
                   for worker in self._workers)

    def __enter__(self) -> "ShardedScorerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    @staticmethod
    def shard_of(pair: Pair, num_workers: int) -> int:
        """Stable shard index for one (parent, child) pair.

        CRC-based rather than ``hash()`` so the mapping survives
        interpreter restarts (``PYTHONHASHSEED`` randomisation) and is
        identical across parent and workers.
        """
        key = f"{pair[0]}\x00{pair[1]}".encode("utf-8")
        return zlib.crc32(key) % num_workers

    def shard(self, pair: Pair) -> int:
        """This pool's worker index for ``pair``."""
        return self.shard_of(pair, self.num_workers)

    def score_pairs(self, pairs: list[Pair]) -> np.ndarray:
        """Positive-class probabilities, merged back into input order.

        Pairs are partitioned with :meth:`shard`, each shard scored by
        its worker concurrently, and any worker failure is raised here
        after all shards settle (so one request never half-completes
        silently).
        """
        pairs = [(str(parent), str(child)) for parent, child in pairs]
        if not pairs:
            return np.zeros(0)
        if not self._started:
            raise RuntimeError("pool is not started; call start() first")
        shards: dict[int, list[int]] = {}
        for row, pair in enumerate(pairs):
            shards.setdefault(self.shard(pair), []).append(row)
        futures: list[tuple[int, list[int], _ShardFuture]] = []
        for index, rows in shards.items():
            shard_pairs = [pairs[row] for row in rows]
            future = self._dispatch(index, "score", shard_pairs)
            futures.append((index, rows, future))
        out = np.empty(len(pairs), dtype=np.float64)
        first_error: BaseException | None = None
        for index, rows, future in futures:
            try:
                scores = np.asarray(future.wait(self.request_timeout),
                                    dtype=np.float64)
                out[rows] = scores
                with self._stats_lock:
                    self._stats.worker_pairs[index] = \
                        self._stats.worker_pairs.get(index, 0) + len(rows)
            except BaseException as error:
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        with self._stats_lock:
            self._stats.requests += 1
            self._stats.pairs_scored += len(pairs)
        return out

    def __call__(self, pairs: list[Pair]) -> np.ndarray:
        """Scorer-protocol alias for :meth:`score_pairs`."""
        return self.score_pairs(pairs)

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def reload(self, bundle_dir: str,
               timeout: float | None = None) -> list[dict]:
        """Swap every worker onto a new bundle; returns per-worker results.

        The reload message queues behind in-flight scoring on each pipe,
        so requests already dispatched finish on the old engine and the
        swap drops nothing.  Workers that fail to load the new bundle
        report an error but keep serving their old engine.
        """
        timeout = self.request_timeout if timeout is None else timeout
        futures = [(worker.index,
                    self._dispatch(worker.index, "reload", bundle_dir))
                   for worker in self._workers]
        results = []
        for index, future in futures:
            try:
                future.wait(timeout)
                results.append({"worker": index, "ok": True})
            except BaseException as error:
                results.append({"worker": index, "ok": False,
                                "error": repr(error)})
        if all(result["ok"] for result in results):
            self.bundle_dir = bundle_dir
        with self._stats_lock:
            self._stats.reloads += 1
        return results

    def worker_stats(self, timeout: float = 10.0) -> list[dict]:
        """Each live worker's engine counters (for ``/metrics``)."""
        futures = []
        for worker in self._workers:
            try:
                futures.append((worker.index,
                                self._dispatch(worker.index, "stats")))
            except BaseException:
                futures.append((worker.index, None))
        results = []
        for index, future in futures:
            payload: dict = {"worker": index, "alive": False}
            if future is not None:
                try:
                    payload.update(future.wait(timeout) or {})
                    payload["alive"] = True
                except BaseException:
                    pass
            results.append(payload)
        return results

    def stats_snapshot(self) -> PoolStats:
        """An atomic copy of the parent-side counters."""
        with self._stats_lock:
            snapshot = replace(self._stats)
            snapshot.worker_pairs = dict(self._stats.worker_pairs)
            return snapshot

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_req_id(self) -> int:
        with self._counter_lock:
            self._req_counter += 1
            return self._req_counter

    def _dispatch(self, index: int, kind: str, *payload) -> _ShardFuture:
        """Send one message to worker ``index``; returns its future.

        Respawns the worker first if it has died (counted as a restart).
        """
        worker = self._workers[index]
        if not worker.alive:
            with self._lock:
                if self._stopping:
                    raise RuntimeError("pool is stopping")
                if not worker.alive:  # re-check under the lock
                    self._spawn(worker, restart=True)
        future = _ShardFuture()
        req_id = self._next_req_id()
        with worker.pending_lock:
            worker.pending[req_id] = future
        try:
            with worker.send_lock:
                worker.conn.send((kind, req_id) + payload)
        except (BrokenPipeError, OSError) as error:
            with worker.pending_lock:
                worker.pending.pop(req_id, None)
            self._mark_dead(worker)
            raise RuntimeError(
                f"scorer worker {index} pipe is broken") from error
        with self._stats_lock:
            self._stats.shard_messages += 1
        return future

    def _spawn(self, worker: _Worker, restart: bool) -> None:
        """Fork one worker and wait for its ready message.  Lock held."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, self.bundle_dir),
            name=f"repro-scorer-{worker.index}", daemon=True)
        process.start()
        child_conn.close()
        if not parent_conn.poll(READY_TIMEOUT):
            process.terminate()
            raise RuntimeError(
                f"scorer worker {worker.index} did not become ready "
                f"within {READY_TIMEOUT}s")
        message = parent_conn.recv()
        if message[0] != "ready":
            process.join(5.0)
            raise RuntimeError(
                f"scorer worker {worker.index} failed to load bundle: "
                f"{message[1]}")
        worker.process = process
        worker.conn = parent_conn
        worker.pending = {}
        worker.alive = True
        worker.reader = threading.Thread(
            target=self._read_loop, args=(worker,),
            name=f"repro-pool-reader-{worker.index}", daemon=True)
        worker.reader.start()
        if restart:
            with self._stats_lock:
                self._stats.worker_restarts += 1

    def _read_loop(self, worker: _Worker) -> None:
        """Resolve futures from one worker's pipe until it dies."""
        conn = worker.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._mark_dead(worker)
                return
            status, req_id, payload = message
            with worker.pending_lock:
                future = worker.pending.pop(req_id, None)
            if future is None:
                continue  # stop acks and timed-out requests land here
            if status == "ok":
                future.resolve(payload)
            else:
                future.fail(RuntimeError(
                    f"scorer worker {worker.index} error: {payload}"))

    def _mark_dead(self, worker: _Worker) -> None:
        """Fail everything in flight on a dead worker exactly once."""
        with worker.pending_lock:
            pending, worker.pending = worker.pending, {}
            was_alive, worker.alive = worker.alive, False
        if not was_alive:
            return
        if not self._stopping:
            with self._stats_lock:
                self._stats.worker_deaths += 1
        error = RuntimeError(
            f"scorer worker {worker.index} died with "
            f"{len(pending)} shard(s) in flight")
        for future in pending.values():
            future.fail(error)
