"""Streaming click-log ingestion driving incremental expansion.

The paper's deployment story is a taxonomy that grows "as user behavior
information grows day by day"; online, behaviour arrives as a stream of
click-log batches.  :class:`StreamingIngestor` decouples request handling
from model work: callers :meth:`submit` batches into a bounded queue
(backpressure — a full queue blocks or rejects) and a single worker thread
drains it through :meth:`IncrementalExpander.ingest
<repro.core.IncrementalExpander.ingest>`.  Each submission returns an
:class:`IngestTicket` whose :meth:`~IngestTicket.wait` yields that batch's
own :class:`~repro.core.IngestReport` (or re-raises its own failure), so
synchronous callers never observe another batch's outcome.

With a :class:`~repro.serving.IngestJournal` attached, every batch is
additionally written to the durable journal immediately before being
applied (write-ahead, same lock), which is what lets ``repro serve
--journal-dir`` rebuild the incremental-expansion state after a crash or
restart — see :mod:`repro.serving.journal`.
"""

from __future__ import annotations

import queue
import threading
import warnings
from collections import deque

from ..core.incremental import IncrementalExpander, IngestReport
from ..synthetic.clicklogs import ClickLog

__all__ = ["IngestTicket", "StreamingIngestor", "click_log_from_records",
           "click_log_to_records"]


def click_log_from_records(records: list,
                           provenance: dict | None = None) -> ClickLog:
    """Build a :class:`ClickLog` from wire-format records.

    Each record is ``[query, item]`` or ``[query, item, count]``; counts
    for repeated pairs accumulate.  ``provenance`` optionally maps item
    titles to their source concepts (analysis only).
    """
    log = ClickLog()
    for record in records:
        if len(record) == 2:
            (query, item), count = record, 1
        elif len(record) == 3:
            query, item, count = record
        else:
            raise ValueError(
                f"record must be [query, item(, count)]: {record!r}")
        count = int(count)
        if count < 1:
            raise ValueError(f"count must be >= 1: {record!r}")
        log.counts[(str(query), str(item))] += count
    if provenance:
        for item, concept in provenance.items():
            log.provenance.setdefault(str(item), concept)
    return log


def click_log_to_records(log: ClickLog) -> tuple[list, dict]:
    """Wire-format ``(records, provenance)`` for a :class:`ClickLog`.

    Inverse of :func:`click_log_from_records` (records are sorted so the
    encoding — and therefore the journal — is deterministic for a given
    batch).
    """
    records = [[query, item, int(count)]
               for (query, item), count in sorted(log.counts.items())]
    return records, dict(sorted(log.provenance.items()))


class IngestTicket:
    """Handle for one submitted batch: wait for *its* report or error."""

    __slots__ = ("batch", "_event", "report", "error")

    def __init__(self, batch: ClickLog):
        self.batch = batch
        self._event = threading.Event()
        self.report: IngestReport | None = None
        self.error: BaseException | None = None

    @property
    def done(self) -> bool:
        """True once the batch has been ingested (or failed)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> IngestReport:
        """Block until this batch is processed; returns its report.

        Re-raises the batch's own ingestion error, or :class:`TimeoutError`
        if the batch is not processed within ``timeout`` seconds.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("ingest batch not processed in time")
        if self.error is not None:
            raise self.error
        assert self.report is not None
        return self.report


class StreamingIngestor:
    """Queue click-log batches and expand the taxonomy from a worker.

    Parameters
    ----------
    expander:
        The incremental expander to drive (owns the evolving taxonomy).
    max_queue:
        Bound on unprocessed batches; submissions beyond it block (or are
        rejected with ``block=False``) — the backpressure signal.
    lock:
        Optional lock serialising expander access with other writers
        (the service layer shares one across ``/expand`` and ingestion).
    max_history:
        How many recent reports and errors to retain for introspection;
        counters keep exact totals regardless, so a long-running service
        stays bounded in memory.
    journal:
        Optional :class:`~repro.serving.IngestJournal`.  Each batch is
        journaled (write-ahead) under the expander lock immediately
        before it is applied, so journal order equals apply order and a
        replay from an empty expander reconstructs the same state.
    on_attach:
        Optional callback receiving each batch's attached ``(parent,
        child)`` edges, invoked under the expander lock immediately
        after the batch applies (so callback order equals apply order).
        The service layer uses this to push structural deltas into the
        compiled inference engine(s) before the batch is acknowledged.
        A raising callback is warned about, not treated as a batch
        failure — the taxonomy mutation has already committed.
    """

    def __init__(self, expander: IncrementalExpander, max_queue: int = 16,
                 lock: threading.Lock | None = None,
                 max_history: int = 256, journal=None, on_attach=None):
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_history < 1:
            raise ValueError("max_history must be >= 1")
        self.expander = expander
        self.journal = journal
        self.on_attach = on_attach
        self._queue: queue.Queue[IngestTicket | None] = \
            queue.Queue(maxsize=max_queue)
        self._expander_lock = lock or threading.Lock()
        self._state = threading.Condition()
        self._reports: deque[IngestReport] = deque(maxlen=max_history)  # guarded-by: self._state
        self._errors: deque[BaseException] = deque(maxlen=max_history)  # guarded-by: self._state
        self._submitted = 0  # guarded-by: self._state
        self._processed = 0  # guarded-by: self._state
        self._failed = 0  # guarded-by: self._state
        self._worker: threading.Thread | None = None  # guarded-by: self._state
        self._stopping = False  # guarded-by: self._state

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StreamingIngestor":
        """Launch the ingestion worker; idempotent."""
        with self._state:
            if self._worker is not None and self._worker.is_alive():
                return self
            self._stopping = False
            self._worker = threading.Thread(
                target=self._run, name="streaming-ingestor", daemon=True)
            self._worker.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Finish queued batches, then stop the worker; idempotent."""
        with self._state:
            worker = self._worker
            if worker is None:
                return
            self._stopping = True
        self._queue.put(None)  # sentinel wakes the worker
        worker.join(timeout)
        with self._state:
            self._worker = None

    @property
    def running(self) -> bool:
        """True while the ingestion worker is alive."""
        worker = self._worker
        return worker is not None and worker.is_alive()

    def __enter__(self) -> "StreamingIngestor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission / draining
    # ------------------------------------------------------------------
    def submit(self, batch: ClickLog, block: bool = True,
               timeout: float | None = None) -> IngestTicket | None:
        """Queue one batch; returns its ticket, or None when rejected
        by backpressure.

        Without a running worker the batch is processed inline
        (synchronous degradation, mirroring
        :class:`~repro.serving.BatchingScorer`); the returned ticket is
        already resolved.
        """
        if not isinstance(batch, ClickLog):
            raise TypeError("submit expects a ClickLog")
        ticket = IngestTicket(batch)
        with self._state:
            if self._stopping:
                raise RuntimeError("ingestor is stopping")
            running = self.running
            self._submitted += 1
        if not running:
            self._ingest(ticket)
            return ticket
        try:
            self._queue.put(ticket, block=block, timeout=timeout)
        except queue.Full:
            with self._state:
                self._submitted -= 1
            return None
        return ticket

    def flush(self, timeout: float | None = 10.0) -> bool:
        """Wait until every submitted batch is processed."""
        with self._state:
            return self._state.wait_for(
                lambda: self._processed + self._failed >= self._submitted,
                timeout)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def reports(self) -> list[IngestReport]:
        """The ``max_history`` most recent reports, oldest first (copy)."""
        with self._state:
            return list(self._reports)

    @property
    def errors(self) -> list[BaseException]:
        """The ``max_history`` most recent errors, oldest first (copy)."""
        with self._state:
            return list(self._errors)

    @property
    def pending(self) -> int:
        """Submitted batches not yet processed."""
        with self._state:
            return self._submitted - self._processed - self._failed

    @property
    def processed(self) -> int:
        """Batches successfully ingested (exact total)."""
        with self._state:
            return self._processed

    @property
    def failed(self) -> int:
        """Batches whose ingestion raised (exact total)."""
        with self._state:
            return self._failed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ingest(self, ticket: IngestTicket) -> None:
        try:
            with self._expander_lock:
                if self.journal is not None:
                    records, provenance = click_log_to_records(ticket.batch)
                    self.journal.append("ingest", {
                        "records": records, "provenance": provenance})
                report = self.expander.ingest(ticket.batch)
                if self.on_attach is not None and report.attached_edges:
                    try:
                        self.on_attach(report.attached_edges)
                    except Exception as error:
                        warnings.warn(
                            f"on_attach callback failed for batch "
                            f"{report.batch_index}: {error!r}; the batch "
                            f"itself applied", stacklevel=2)
        except BaseException as error:
            ticket.error = error
            with self._state:
                self._errors.append(error)
                self._failed += 1
                self._state.notify_all()
        else:
            ticket.report = report
            with self._state:
                self._reports.append(report)
                self._processed += 1
                self._state.notify_all()
        finally:
            ticket._event.set()

    def _run(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:  # stop sentinel: drain leftovers, then exit
                while True:
                    try:
                        ticket = self._queue.get_nowait()
                    except queue.Empty:
                        return
                    if ticket is not None:
                        self._ingest(ticket)
            else:
                self._ingest(ticket)
