"""Online serving layer: artifact bundles, batched scoring, sharded
multi-process workers, durable ingestion, and the HTTP taxonomy service.

Train once, serve forever: :class:`ArtifactBundle` decouples the training
process from the serving process; :class:`BatchingScorer` and
:class:`StreamingIngestor` give the online path micro-batching, caching
and backpressure; :class:`ShardedScorerPool` spreads scoring across
worker processes that attach one shared-memory weight copy zero-copy
(:class:`SharedArtifactStore` / :class:`SharedBundleView`, private-load
fallback); :class:`IngestJournal`
makes ingestion durable and replayable across restarts, and
:class:`SnapshotStore` caps the replay tail — recovery loads the latest
valid snapshot and replays only the journal records after it, with
covered segments compacted away;
:class:`TaxonomyService` plus :func:`make_server` expose it all over a
stdlib JSON API (``repro serve`` on the command line), including
zero-downtime artifact hot-reload via ``POST /admin/reload`` or SIGHUP.
Two transports serve the same contract from the shared dispatch core in
:mod:`repro.serving.routes`: the classic threaded server
(:func:`make_server`/:func:`serve`) and the asyncio front end
(:class:`AsyncTaxonomyServer`/:func:`serve_async`) with keep-alive
timeouts, admission-control load shedding, NDJSON/SSE streaming and
graceful drain — pick one with ``repro serve --transport``.

See ``docs/architecture.md`` for the subsystem map, ``docs/http_api.md``
for the endpoint reference, and ``docs/operations.md`` for the runbook.
"""

from .artifacts import (
    ArtifactBundle, SharedBundleView, pipeline_config_from_dict,
    pipeline_config_to_dict,
)
from .shm import SharedArtifactStore, SharedArrayView, attach_manifest
from .scorer import BatchingScorer, ScorerStats
from .ingest import (
    IngestTicket, StreamingIngestor, click_log_from_records,
    click_log_to_records,
)
from .journal import (
    IngestJournal, JournalCorruptionWarning, JournalRecord, JournalStats,
)
from .snapshot import (
    SnapshotCorruptionWarning, SnapshotInfo, SnapshotStats, SnapshotStore,
)
from .cluster import PoolStats, ShardedScorerPool, shared_memory_default
from .service import ServiceConfig, TaxonomyService
from .http import (
    TaxonomyHTTPServer, install_sighup_reload, install_sigterm_drain,
    make_server, serve,
)
from .async_http import (
    AsyncServerThread, AsyncTaxonomyServer, CAPABILITIES, serve_async,
)

__all__ = [
    "ArtifactBundle", "pipeline_config_to_dict", "pipeline_config_from_dict",
    "BatchingScorer", "ScorerStats",
    "IngestTicket", "StreamingIngestor", "click_log_from_records",
    "click_log_to_records",
    "IngestJournal", "JournalCorruptionWarning", "JournalRecord",
    "JournalStats",
    "SnapshotCorruptionWarning", "SnapshotInfo", "SnapshotStats",
    "SnapshotStore",
    "PoolStats", "ShardedScorerPool", "shared_memory_default",
    "SharedArtifactStore", "SharedArrayView", "SharedBundleView",
    "attach_manifest",
    "ServiceConfig", "TaxonomyService",
    "TaxonomyHTTPServer", "install_sighup_reload", "install_sigterm_drain",
    "make_server", "serve",
    "AsyncServerThread", "AsyncTaxonomyServer", "CAPABILITIES",
    "serve_async",
]
