"""Online serving layer: artifact bundles, batched scoring, streaming
ingestion, and the HTTP taxonomy service.

Train once, serve forever: :class:`ArtifactBundle` decouples the training
process from the serving process; :class:`BatchingScorer` and
:class:`StreamingIngestor` give the online path micro-batching, caching
and backpressure; :class:`TaxonomyService` plus :func:`make_server` expose
it all over a stdlib JSON API (``repro serve`` on the command line).
"""

from .artifacts import (
    ArtifactBundle, pipeline_config_from_dict, pipeline_config_to_dict,
)
from .scorer import BatchingScorer, ScorerStats
from .ingest import IngestTicket, StreamingIngestor, click_log_from_records
from .service import ServiceConfig, TaxonomyService
from .http import TaxonomyHTTPServer, make_server, serve

__all__ = [
    "ArtifactBundle", "pipeline_config_to_dict", "pipeline_config_from_dict",
    "BatchingScorer", "ScorerStats",
    "IngestTicket", "StreamingIngestor", "click_log_from_records",
    "ServiceConfig", "TaxonomyService",
    "TaxonomyHTTPServer", "make_server", "serve",
]
