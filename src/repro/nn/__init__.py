"""Neural-network substrate: numpy autograd, layers, optimizers, losses.

Every learned component in the reproduction (C-BERT, the GNN encoders, the
edge-classification MLP) is built on this package; no external deep-learning
framework is used.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .layers import (
    Module, Parameter, Linear, Embedding, LayerNorm, Dropout, Sequential,
    ReLU, GELU, Tanh, Sigmoid,
)
from .optim import Optimizer, SGD, Adam, clip_grad_norm
from .losses import bce_with_logits, binary_cross_entropy, cross_entropy, info_nce
from .attention import MultiHeadSelfAttention
from .transformer import TransformerEncoder, TransformerEncoderLayer
from .serialization import save_module, load_module
from .inference import (
    CompiledBert, CompiledClassifier, Workspace, SCORE_TOLERANCE,
)

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "Linear", "Embedding", "LayerNorm", "Dropout",
    "Sequential", "ReLU", "GELU", "Tanh", "Sigmoid",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "bce_with_logits", "binary_cross_entropy", "cross_entropy", "info_nce",
    "MultiHeadSelfAttention", "TransformerEncoder", "TransformerEncoderLayer",
    "save_module", "load_module",
    "CompiledBert", "CompiledClassifier", "Workspace", "SCORE_TOLERANCE",
]
