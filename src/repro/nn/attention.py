"""Multi-head self-attention for the MiniBert encoder."""

from __future__ import annotations

import numpy as np

from .layers import Dropout, Linear, Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` heads.

    Accepts input of shape ``(batch, seq, dim)`` and an optional padding mask
    of shape ``(batch, seq)`` where 1 marks real tokens and 0 marks padding.
    """

    def __init__(self, dim: int, num_heads: int, dropout: float = 0.0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim) \
                .transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, padding_mask: np.ndarray | None = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq)
        k = self._split_heads(self.key(x), batch, seq)
        v = self._split_heads(self.value(x), batch, seq)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        if padding_mask is not None:
            mask = np.asarray(padding_mask, dtype=np.float64)
            if mask.shape != (batch, seq):
                raise ValueError("padding_mask must be (batch, seq)")
            # Broadcast over heads and query positions; -1e9 on padding keys.
            bias = (1.0 - mask)[:, None, None, :] * -1e9
            scores = scores + Tensor(bias)
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        context = weights @ v  # (batch, heads, seq, head_dim)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out(merged)
