"""Minimal reverse-mode automatic differentiation on top of numpy.

This module is the computational substrate for every learned component in the
reproduction (the C-BERT language model, the GNN encoders, and the edge
classifier).  It implements a small but complete dynamic autograd engine:
each :class:`Tensor` records the operation that produced it, and
:meth:`Tensor.backward` walks the graph in reverse topological order
accumulating gradients.

Only the operations actually needed by the models are provided, but each is
implemented with full broadcasting support so layers can be written naturally.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=False)


class Tensor:
    """A numpy array with reverse-mode gradient tracking.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")
    __array_priority__ = 100  # make numpy defer to our __radd__/__rmul__

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: tuple = ()
        self._backward = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(data: np.ndarray, parents: tuple, backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data * other.data

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return Tensor._from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data / other.data

        def backward(grad):
            return (_unbroadcast(grad / other.data, self.shape),
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._from_op(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                ga, gb = grad * b, grad * a
            elif a.ndim == 1:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.outer(a, grad) if b.ndim == 2 else None
                if gb is None:
                    gb = np.expand_dims(a, -1) * np.expand_dims(grad, -2)
            elif b.ndim == 1:
                ga = np.expand_dims(grad, -1) * b
                gb = np.swapaxes(a, -1, -2) @ grad
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
            return (_unbroadcast(np.asarray(ga), self.shape),
                    _unbroadcast(np.asarray(gb), other.shape))

        return Tensor._from_op(data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad):
            return (grad * data,)

        return Tensor._from_op(data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            return (grad / self.data,)

        return Tensor._from_op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad):
            return (grad * 0.5 / data,)

        return Tensor._from_op(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - data ** 2),)

        return Tensor._from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._from_op(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad):
            return (grad * data * (1.0 - data),)

        return Tensor._from_op(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian Error Linear Unit (tanh approximation)."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(grad):
            dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
            dt = (1.0 - t ** 2) * dinner
            return (grad * (0.5 * (1.0 + t) + 0.5 * x * dt),)

        return Tensor._from_op(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._from_op(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(data, axis)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (mask * g,)

        return Tensor._from_op(data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad):
            return (grad.reshape(self.shape),)

        return Tensor._from_op(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._from_op(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._from_op(data, (self,), backward)

    @staticmethod
    def concatenate(tensors: list, axis: int = 0) -> "Tensor":
        tensors = [_as_tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            return tuple(
                np.take(grad, np.arange(offsets[i], offsets[i + 1]), axis=axis)
                for i in range(len(tensors)))

        return Tensor._from_op(data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: list, axis: int = 0) -> "Tensor":
        tensors = [_as_tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            return tuple(np.take(grad, i, axis=axis)
                         for i in range(len(tensors)))

        return Tensor._from_op(data, tuple(tensors), backward)

    # ------------------------------------------------------------------
    # composite ops
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - self.max(axis=axis, keepdims=True).detach()
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    # ------------------------------------------------------------------
    # backpropagation
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad tracking")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                # Leaf: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad += node_grad
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad
        # Any remaining grads are leaves reached but not yet flushed.
        for node in order:
            pending = grads.pop(id(node), None)
            if pending is not None:
                if node.grad is None:
                    node.grad = pending.copy()
                else:
                    node.grad += pending
