"""Neural-network layers built on the :mod:`repro.nn.tensor` autograd engine.

The layer set mirrors what the paper's models need: dense projections and
embeddings for the BERT-style encoder and GNNs, layer normalisation and
dropout for the transformer, and a generic :class:`Module` base with
parameter collection and train/eval mode switching.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "Module", "Parameter", "Linear", "Embedding", "LayerNorm", "Dropout",
    "Sequential", "ReLU", "GELU", "Tanh", "Sigmoid",
]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter discovery and mode switching."""

    def __init__(self):
        self.training = True

    def parameters(self) -> list[Parameter]:
        """Return all parameters in this module and its submodules."""
        found: list[Parameter] = []
        seen: set[int] = set()
        self._collect(found, seen)
        return found

    def _collect(self, found: list, seen: set) -> None:
        for value in self.__dict__.values():
            self._collect_value(value, found, seen)

    def _collect_value(self, value, found: list, seen: set) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                found.append(value)
        elif isinstance(value, Module):
            value._collect(found, seen)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect_value(item, found, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect_value(item, found, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            self._mode_value(value, training)

    def _mode_value(self, value, training: bool) -> None:
        if isinstance(value, Module):
            value._set_mode(training)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._mode_value(item, training)
        elif isinstance(value, dict):
            for item in value.values():
                self._mode_value(item, training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state dict (used by repro.nn.serialization)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flatten parameters into ``{path: array}`` for serialization."""
        state: dict[str, np.ndarray] = {}
        self._state("", state)
        return state

    def _state(self, prefix: str, state: dict) -> None:
        for name, value in self.__dict__.items():
            self._state_value(f"{prefix}{name}", value, state)

    def _state_value(self, path: str, value, state: dict) -> None:
        if isinstance(value, Parameter):
            state[path] = value.data
        elif isinstance(value, Module):
            value._state(path + ".", state)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._state_value(f"{path}.{i}", item, state)
        elif isinstance(value, dict):
            for key, item in value.items():
                self._state_value(f"{path}.{key}", item, state)

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = self.state_dict_parameters()
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(f"state mismatch: missing={sorted(missing)} "
                           f"extra={sorted(extra)}")
        for path, param in own.items():
            array = np.asarray(state[path], dtype=np.float64)
            if array.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {path}: "
                                 f"{array.shape} vs {param.data.shape}")
            param.data = array.copy()

    def state_dict_parameters(self) -> dict[str, Parameter]:
        """Like :meth:`state_dict` but mapping to Parameter objects."""
        params: dict[str, Parameter] = {}
        self._param_state("", params)
        return params

    def _param_state(self, prefix: str, params: dict) -> None:
        for name, value in self.__dict__.items():
            self._param_state_value(f"{prefix}{name}", value, params)

    def _param_state_value(self, path: str, value, params: dict) -> None:
        if isinstance(value, Parameter):
            params[path] = value
        elif isinstance(value, Module):
            value._param_state(path + ".", params)
        elif isinstance(value, (list, tuple)):
            for i, item in enumerate(value):
                self._param_state_value(f"{path}.{i}", item, params)
        elif isinstance(value, dict):
            for key, item in value.items():
                self._param_state_value(f"{path}.{key}", item, params)


def _xavier(rng: np.random.Generator, fan_in: int, fan_out: int,
            shape: tuple) -> np.ndarray:
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


class Linear(Module):
    """Affine projection ``y = x W + b`` with Xavier initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _xavier(rng, in_features, out_features,
                    (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding id out of range")
        return self.weight[ids]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        centered = x - mu
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float = 0.1, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
